//! Minimal std-only stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the subset of proptest
//! that histok's property tests use is implemented here: the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]` header and `#[test]`
//! function items), [`strategy::Strategy`] values for integer/float ranges,
//! [`prelude::any`], [`prelude::Just`], tuples, [`collection::vec`], and the
//! [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assert_ne!`] macros.
//!
//! Differences from real proptest, acceptable for this repository's tests:
//! no shrinking (a failing case panics with the raw inputs — every case is
//! reproducible because generation is seeded from the test's module path),
//! and no persistence files.

/// Test-case generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a seeded RNG.
    ///
    /// This is the flattened core of proptest's `Strategy`/`ValueTree`
    /// pair: no shrinking, so a strategy generates final values directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($t:ty) => {
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy range is empty");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        };
    }

    int_range_strategy!(u8);
    int_range_strategy!(u16);
    int_range_strategy!(u32);
    int_range_strategy!(u64);
    int_range_strategy!(usize);
    int_range_strategy!(i8);
    int_range_strategy!(i16);
    int_range_strategy!(i32);
    int_range_strategy!(i64);
    int_range_strategy!(isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))+) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Types with a canonical full-domain strategy (proptest's `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generates one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )+
        };
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Half the draws reinterpret raw bits (hits subnormals, ±inf,
            // NaN payloads); the rest are tame magnitudes.
            if rng.next_u64() & 1 == 0 {
                f64::from_bits(rng.next_u64())
            } else {
                (rng.unit_f64() - 0.5) * 2.0e12
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            if rng.next_u64() & 1 == 0 {
                f32::from_bits(rng.next_u64() as u32)
            } else {
                ((rng.unit_f64() - 0.5) * 2.0e6) as f32
            }
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for [`vec()`]: a `Range<usize>` or an exact size.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max: exact + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Test-execution plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator seeded from the test's fully-qualified name,
    /// so every run of a given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the RNG for a named test (FNV-1a hash of the name seeds
        /// a SplitMix64 expansion into xoshiro256++ state).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The next 64 random bits (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, span)`; `span` must be nonzero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything property tests normally import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Accepts an optional `#![proptest_config(ProptestConfig::with_cases(N))]`
/// header followed by `#[test] fn name(pat in strategy, ...) { body }`
/// items. Each function becomes a plain `#[test]` that loops over `N`
/// generated cases from a name-seeded RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; expands one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                // Bind strategies once per case so `$strat` side effects
                // (there are none in practice) stay per-case like upstream.
                let ($($p,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                { $body }
                let _ = __case;
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 5u64..10, (a, b) in (0i32..3, any::<bool>())) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0..3).contains(&a));
            let _ = b;
        }

        #[test]
        fn vecs_respect_size(mut v in collection::vec(any::<u8>(), 2..6), w in collection::vec(0u32..9, 4)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            prop_assert_eq!(w.len(), 4);
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|p| p[0] <= p[1]));
        }

        #[test]
        fn oneof_picks_listed_values(x in prop_oneof![Just(1u32), Just(5), Just(50)]) {
            prop_assert!(x == 1 || x == 5 || x == 50);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1_000, 0..20);
        let mut a = TestRng::for_test("some::test");
        let mut b = TestRng::for_test("some::test");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
