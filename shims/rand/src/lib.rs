//! Minimal std-only stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the subset of `rand`
//! 0.8's API that histok uses is implemented here: [`rngs::StdRng`] (a
//! deterministic xoshiro256++ seeded via SplitMix64), the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`]
//! and [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! do **not** bit-match the real `rand` crate; tests in this repository only
//! rely on seeded determinism and distribution shape, never on exact
//! sequences.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The shipped generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: histok never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

/// Types that can be drawn uniformly from the generator's full output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range (panics if empty).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random word onto `[0, span)` with a 128-bit multiply-shift
/// (Lemire); bias is < 2⁻⁶⁴·span, irrelevant at test scales.
fn index(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Element types `gen_range` can draw uniformly.
///
/// The two `SampleRange` impls below are blanket impls over this trait —
/// one impl per range *shape*, not per element type — so an unannotated
/// integer literal like `gen_range(1..=30)` infers its type from the use
/// site instead of falling back to `i32` (mirrors real rand's structure).
pub trait SampleUniform: Sized {
    /// Draws from `[low, high)` (`inclusive = false`) or `[low, high]`.
    fn sample_between<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),+) => {
        $(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(low: $t, high: $t, inclusive: bool, rng: &mut R) -> $t {
                    let span = high.wrapping_sub(low) as u64;
                    if inclusive {
                        assert!(low <= high, "gen_range: empty range");
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        low.wrapping_add(index(rng, span + 1) as $t)
                    } else {
                        assert!(low < high, "gen_range: empty range");
                        low.wrapping_add(index(rng, span) as $t)
                    }
                }
            }
        )+
    };
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        low: f64,
        high: f64,
        _inclusive: bool,
        rng: &mut R,
    ) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::sample(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        low: f32,
        high: f32,
        _inclusive: bool,
        rng: &mut R,
    ) -> f32 {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f32::sample(rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferable type uniformly at random.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A biased coin: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{index, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=50);
            assert!((1..=50).contains(&w));
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_moves_things() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..1_000).collect();
        v.shuffle(&mut rng);
        let moved = v.iter().enumerate().filter(|(i, &x)| *i as u32 != x).count();
        assert!(moved > 900, "only {moved} elements moved");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
