//! Minimal std-only stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the subset of the
//! `bytes` API that histok uses — the cheaply-clonable [`Bytes`] buffer and
//! the [`Buf`]/[`BufMut`] cursor traits — is implemented here on top of
//! `Arc<[u8]>`. Semantics match the real crate for this subset: cloning a
//! `Bytes` is a refcount bump, `Buf` consumes from the front, and all
//! integer accessors are little-endian.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer (an `Arc<[u8]>` plus a range).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view of `self` (panics if out of range), sharing the backing
    /// allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}
impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: len }
    }
}
impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v), start: 0, end: len }
    }
}
impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}
impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}
impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}
impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

/// Read cursor over a byte source, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The current contiguous front chunk.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes `n` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let mut v = vec![0u8; n];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "copy_to_bytes out of bounds");
        let out = self.slice(0..n);
        self.start += n;
        out
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_shares_and_slices() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn buf_roundtrips_le_integers() {
        let mut v = Vec::new();
        v.put_u32_le(7);
        v.put_u64_le(u64::MAX);
        v.put_i32_le(-5);
        v.put_i64_le(i64::MIN);
        v.put_f64_le(1.5);
        let mut s = &v[..];
        assert_eq!(s.get_u32_le(), 7);
        assert_eq!(s.get_u64_le(), u64::MAX);
        assert_eq!(s.get_i32_le(), -5);
        assert_eq!(s.get_i64_le(), i64::MIN);
        assert_eq!(s.get_f64_le(), 1.5);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut s: &[u8] = &[1, 2, 3, 4];
        let b = s.copy_to_bytes(3);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert_eq!(s.remaining(), 1);

        let mut owned = Bytes::from(vec![9u8, 8, 7]);
        let first = owned.copy_to_bytes(2);
        assert_eq!(first.as_slice(), &[9, 8]);
        assert_eq!(owned.as_slice(), &[7]);
    }
}
