//! Minimal std-only stand-in for `crossbeam`.
//!
//! Only the bounded-channel subset histok uses is provided, implemented on
//! `std::sync::mpsc::sync_channel`. Semantics match for that subset: `send`
//! blocks when the channel is full, dropping every [`channel::Sender`]
//! closes the channel, and the receiver is iterable until disconnect.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a bounded channel (clonable).
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full. Errors only
        /// if the receiving side has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next value; `None` once all senders are dropped
        /// and the channel is drained.
        pub fn recv(&self) -> Option<T> {
            self.0.recv().ok()
        }

        /// Iterates over received values until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_delivers_in_order() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        // Drain before joining: the sender blocks while the bounded
        // channel is full, so the join must not precede consumption.
        let got: Vec<u32> = rx.into_iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
