//! Minimal std-only stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks with the `parking_lot` calling convention:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`).
//! Poisoning is ignored — a panic while holding a lock propagates the inner
//! value to subsequent lockers, which matches `parking_lot`'s behaviour of
//! not poisoning.

use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A mutual-exclusion lock; `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock; `read()`/`write()` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        assert_eq!(l.into_inner(), 7);
    }
}
