//! Minimal std-only stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of criterion's API that histok's `harness = false` benchmarks
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both forms).
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints the mean/min per-iteration
//! time (plus derived throughput). That is enough for `cargo bench` to
//! compile, run, and report, without criterion's statistics machinery.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-per-iteration declaration, used to derive throughput rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim times each
/// routine call individually regardless, so the variants only mirror
/// criterion's API.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap; criterion would batch many per sample.
    SmallInput,
    /// Inputs are moderately expensive.
    LargeInput,
    /// One setup per routine call — inputs too expensive to batch.
    PerIteration,
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement (criterion's `iter_batched`).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level harness handle (subset of criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let sample_size = self.sample_size;
        let mut group =
            BenchmarkGroup { name: String::new(), sample_size, throughput: None, _criterion: self };
        group.bench_function(id, f);
    }
}

/// A named benchmark group with shared throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares work-per-iteration for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: warm-up to pick an iteration count, then
    /// `sample_size` timed samples.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let label = if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };

        // Warm-up: run single iterations until ~50ms elapse to choose an
        // iteration count targeting ~100ms per sample.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        let mut one = Bencher { iters: 1, elapsed: Duration::ZERO };
        while warmup_start.elapsed() < Duration::from_millis(50) {
            f(&mut one);
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / warmup_iters.max(1) as u128;
        let iters = ((100_000_000 / per_iter) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(1e-12);
                format!("  thrpt: {:.3} Melem/s", per_sec / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(1e-12);
                format!("  thrpt: {:.3} MiB/s", per_sec / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{label:<50} time: [mean {mean:?}, min {min:?}] ({} samples x {iters} iters){rate}",
            samples.len(),
        );
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.throughput(Throughput::Elements(1));
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
    }

    #[test]
    fn harness_runs_a_benchmark() {
        let mut c = Criterion::default().sample_size(2);
        trivial(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(2u64 * 2)));
    }
}
