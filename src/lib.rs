//! # histok — External Merge Sort for Top-K Queries
//!
//! A from-scratch Rust implementation of the SIGMOD 2020 paper
//! *"External Merge Sort for Top-K Queries: Eager input filtering guided by
//! histograms"* (Chronis, Do, Graefe, Peters — the top-k operator deployed
//! in Google F1 Query), together with every substrate it needs: run-file
//! storage, run generation (replacement selection and load-sort-store),
//! loser-tree merging, the baseline top-k algorithms it is evaluated
//! against, workload generators, and the paper's analytical model.
//!
//! ## Quick start
//!
//! ```
//! use histok::prelude::*;
//!
//! // top 100 smallest keys out of 10_000, with memory for only ~500 rows
//! let spec = SortSpec::ascending(100);
//! let config = TopKConfig::builder()
//!     .memory_budget(500 * 32)
//!     .build()
//!     .unwrap();
//! let storage = MemoryBackend::shared();
//! let mut op = HistogramTopK::<u64>::new(spec, config, storage).unwrap();
//! for key in (0..10_000u64).rev() {
//!     op.push(Row::key_only(key)).unwrap();
//! }
//! let out: Vec<_> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
//! assert_eq!(out, (0..100u64).collect::<Vec<_>>());
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Source crate | Contents |
//! |---|---|---|
//! | [`types`] | `histok-types` | keys, rows, sort specs, errors |
//! | [`storage`] | `histok-storage` | run files, backends, I/O stats |
//! | [`sort`] | `histok-sort` | run generation, loser-tree merge |
//! | [`core`] | `histok-core` | the histogram top-k + all baselines |
//! | [`analysis`] | `histok-analysis` | the paper's §3.2 idealized model |
//! | [`workload`] | `histok-workload` | uniform / fal / lognormal generators |
//! | [`exec`] | `histok-exec` | mini query-operator framework |

pub use histok_analysis as analysis;
pub use histok_core as core;
pub use histok_exec as exec;
pub use histok_sort as sort;
pub use histok_storage as storage;
pub use histok_types as types;
pub use histok_workload as workload;

/// The most common imports, bundled.
pub mod prelude {
    pub use histok_core::{
        ApproximateTopK, CutoffFilter, ExchangeTopK, GroupedTopK, HistogramTopK, InMemoryTopK,
        OptimizedExternalTopK, ParallelTopK, SegmentedTopK, SizingPolicy, TopKConfig, TopKOperator,
        TraditionalExternalTopK,
    };
    pub use histok_storage::{FileBackend, IoStats, MemoryBackend, StorageBackend};
    pub use histok_types::{
        BytesKey, Error, F64Key, HeapSize, Result, Row, SortKey, SortOrder, SortSpec,
    };
    pub use histok_workload::{Distribution, Workload};
}
