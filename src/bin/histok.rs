//! `histok` — command-line demo of the histogram top-k operator.
//!
//! ```text
//! histok run     [--rows N] [--k N] [--mem-rows N] [--dist D] [--algo A]
//!                [--desc] [--offset N] [--payload BYTES] [--file-backend]
//!                [--buckets B] [--seed S]
//! histok compare [same flags]      run all four algorithms side by side
//! histok tables                    print the paper's analysis tables 2-5
//! histok help
//! ```
//!
//! Distributions: `uniform`, `fal:<shape>`, `lognormal`, `adversarial`.
//! Algorithms: `histogram`, `inmemory`, `traditional`, `optimized`,
//! `parallel:<n>`.

use std::process::ExitCode;
use std::time::Instant;

use histok::core::{
    HistogramTopK, InMemoryTopK, OperatorMetrics, OptimizedExternalTopK, SizingPolicy, TopKConfig,
    TopKOperator, TraditionalExternalTopK,
};
use histok::types::Result as HResult;

/// Adapter: `ParallelTopK::new` takes an owned backend; wrap the shared
/// `Arc<dyn StorageBackend>` so it can be passed by value.
struct ArcBackend(std::sync::Arc<dyn StorageBackend>);

impl StorageBackend for ArcBackend {
    fn create(&self, name: &str) -> HResult<Box<dyn histok::storage::SpillWriter>> {
        self.0.create(name)
    }
    fn open(&self, name: &str) -> HResult<Box<dyn histok::storage::SpillReader>> {
        self.0.open(name)
    }
    fn delete(&self, name: &str) -> HResult<()> {
        self.0.delete(name)
    }
    fn size_of(&self, name: &str) -> HResult<u64> {
        self.0.size_of(name)
    }
}
use histok::storage::{FileBackend, MemoryBackend, StorageBackend};
use histok::types::{F64Key, Result, SortSpec};
use histok::workload::{Distribution, Workload};

/// Parsed command-line options.
struct Opts {
    rows: u64,
    k: u64,
    mem_rows: usize,
    dist: Distribution,
    algo: String,
    descending: bool,
    offset: u64,
    payload: usize,
    file_backend: bool,
    buckets: u32,
    seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            rows: 1_000_000,
            k: 20_000,
            mem_rows: 5_000,
            dist: Distribution::Uniform,
            algo: "histogram".into(),
            descending: false,
            offset: 0,
            payload: 0,
            file_backend: false,
            buckets: 50,
            seed: 42,
        }
    }
}

fn parse_dist(s: &str) -> Option<Distribution> {
    match s {
        "uniform" => Some(Distribution::Uniform),
        "lognormal" => Some(Distribution::lognormal_default()),
        "adversarial" => Some(Distribution::Adversarial),
        _ => s
            .strip_prefix("fal:")
            .and_then(|shape| shape.parse().ok())
            .map(|shape| Distribution::Fal { shape }),
    }
}

fn parse_opts(args: &[String]) -> std::result::Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--rows" => opts.rows = value("--rows")?.parse().map_err(|e| format!("{e}"))?,
            "--k" => opts.k = value("--k")?.parse().map_err(|e| format!("{e}"))?,
            "--mem-rows" => {
                opts.mem_rows = value("--mem-rows")?.parse().map_err(|e| format!("{e}"))?
            }
            "--dist" => {
                let s = value("--dist")?;
                opts.dist = parse_dist(&s).ok_or(format!("unknown distribution {s:?}"))?;
            }
            "--algo" => opts.algo = value("--algo")?,
            "--desc" => opts.descending = true,
            "--offset" => opts.offset = value("--offset")?.parse().map_err(|e| format!("{e}"))?,
            "--payload" => {
                opts.payload = value("--payload")?.parse().map_err(|e| format!("{e}"))?
            }
            "--file-backend" => opts.file_backend = true,
            "--buckets" => {
                opts.buckets = value("--buckets")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn spec_of(opts: &Opts) -> SortSpec {
    let spec =
        if opts.descending { SortSpec::descending(opts.k) } else { SortSpec::ascending(opts.k) };
    spec.with_offset(opts.offset)
}

fn config_of(opts: &Opts) -> Result<TopKConfig> {
    let sizing = if opts.buckets == 0 {
        SizingPolicy::Disabled
    } else {
        SizingPolicy::TargetBuckets(opts.buckets)
    };
    TopKConfig::builder().memory_budget(opts.mem_rows * (64 + opts.payload)).sizing(sizing).build()
}

fn make_operator(
    algo: &str,
    opts: &Opts,
    backend: std::sync::Arc<dyn StorageBackend>,
) -> Result<Box<dyn TopKOperator<F64Key>>> {
    let spec = spec_of(opts);
    let config = config_of(opts)?;
    Ok(match algo {
        "histogram" => Box::new(HistogramTopK::with_arc(spec, config, backend)?),
        "inmemory" => Box::new(InMemoryTopK::new(spec)?),
        "traditional" => {
            Box::new(TraditionalExternalTopK::with_arc(spec, config.memory_budget, backend)?)
        }
        "optimized" => Box::new(OptimizedExternalTopK::with_arc(spec, config, backend)?),
        other => {
            if let Some(threads) = other.strip_prefix("parallel:").and_then(|t| t.parse().ok()) {
                let be_clone = backend.clone();
                return Ok(Box::new(histok::core::ParallelTopK::new(
                    spec,
                    config,
                    ArcBackend(be_clone),
                    threads,
                )?));
            }
            return Err(histok::types::Error::InvalidConfig(format!(
                "unknown algorithm {other:?} (histogram|inmemory|traditional|optimized|parallel:<n>)"
            )));
        }
    })
}

fn backend_of(opts: &Opts) -> Result<std::sync::Arc<dyn StorageBackend>> {
    Ok(if opts.file_backend {
        std::sync::Arc::new(FileBackend::temp()?)
    } else {
        std::sync::Arc::new(MemoryBackend::new())
    })
}

fn execute(algo: &str, opts: &Opts) -> Result<(f64, u64, Option<f64>, OperatorMetrics)> {
    let mut op = make_operator(algo, opts, backend_of(opts)?)?;
    let workload = Workload::uniform(opts.rows, opts.seed)
        .with_distribution(opts.dist)
        .with_payload_bytes(opts.payload);
    let start = Instant::now();
    for row in workload.rows() {
        op.push(row)?;
    }
    let mut produced = 0u64;
    let mut last = None;
    for row in op.finish()? {
        last = Some(row?.key.get());
        produced += 1;
    }
    Ok((start.elapsed().as_secs_f64(), produced, last, op.metrics()))
}

fn cmd_run(opts: &Opts) -> Result<()> {
    let (secs, produced, last, m) = execute(&opts.algo, opts)?;
    println!("algorithm       : {}", opts.algo);
    println!("input rows      : {}", m.rows_in);
    println!("output rows     : {produced}");
    if let Some(last) = last {
        println!("last output key : {last}");
    }
    println!("wall time       : {secs:.3}s");
    println!(
        "eliminated      : {} at input, {} at spill",
        m.eliminated_at_input, m.eliminated_at_spill
    );
    println!(
        "spilled         : {} rows in {} runs ({:.2}% of input)",
        m.rows_spilled(),
        m.runs(),
        m.spill_fraction() * 100.0
    );
    println!(
        "storage traffic : {} bytes written, {} bytes read",
        m.io.bytes_written, m.io.bytes_read
    );
    Ok(())
}

fn cmd_compare(opts: &Opts) -> Result<()> {
    println!(
        "{:<12} {:>9} {:>12} {:>8} {:>14}",
        "algorithm", "time", "spilled", "runs", "eliminated"
    );
    let mut reference: Option<(u64, Option<f64>)> = None;
    for algo in ["histogram", "optimized", "traditional", "inmemory"] {
        let (secs, produced, last, m) = execute(algo, opts)?;
        match &reference {
            None => reference = Some((produced, last)),
            Some(r) => assert_eq!(
                (produced, last.map(f64::to_bits)),
                (r.0, r.1.map(f64::to_bits)),
                "{algo} disagrees with the reference answer"
            ),
        }
        println!(
            "{:<12} {:>8.3}s {:>12} {:>8} {:>14}",
            algo,
            secs,
            m.rows_spilled(),
            m.runs(),
            m.eliminated_at_input + m.eliminated_at_spill,
        );
    }
    Ok(())
}

fn cmd_tables() {
    for (name, rows) in [
        (
            "Table 2 (histogram size)",
            histok::analysis::table2()
                .into_iter()
                .map(|r| (format!("B={}", r.buckets), r.result))
                .collect::<Vec<_>>(),
        ),
        (
            "Table 4 (input size)",
            histok::analysis::table4()
                .into_iter()
                .map(|r| (format!("N={}", r.input), r.result))
                .collect::<Vec<_>>(),
        ),
        (
            "Table 5 (minimal histograms)",
            histok::analysis::table5()
                .into_iter()
                .map(|r| (format!("N={}", r.input), r.result))
                .collect::<Vec<_>>(),
        ),
    ] {
        println!("\n{name}");
        println!("{:>16} {:>7} {:>10} {:>8}", "experiment", "runs", "rows", "ratio");
        for (label, r) in rows {
            println!(
                "{:>16} {:>7} {:>10} {:>8}",
                label,
                r.runs,
                r.rows_spilled,
                r.ratio.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            );
        }
    }
    println!("\n(see `cargo run -p histok-bench --bin table1..5` for the full tables)");
}

fn usage() {
    println!("histok — histogram-guided top-k (SIGMOD'20 reproduction)");
    println!();
    println!("  histok run     [flags]   run one algorithm and report metrics");
    println!("  histok compare [flags]   run all four algorithms side by side");
    println!("  histok tables            print the paper's analysis tables");
    println!();
    println!("flags: --rows N --k N --mem-rows N --dist uniform|fal:<z>|lognormal|adversarial");
    println!(
        "       --algo histogram|inmemory|traditional|optimized|parallel:<n> --desc --offset N"
    );
    println!("       --payload BYTES --file-backend --buckets B --seed S");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            usage();
            return ExitCode::SUCCESS;
        }
    };
    let result = match cmd {
        "run" | "compare" => match parse_opts(rest) {
            Ok(opts) => {
                if cmd == "run" {
                    cmd_run(&opts)
                } else {
                    cmd_compare(&opts)
                }
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                usage();
                return ExitCode::FAILURE;
            }
        },
        "tables" => {
            cmd_tables();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
