//! Integration tests pinning the paper's quantitative claims on the *real*
//! operator (not the idealized model): spill reductions, distribution
//! insensitivity, the adversarial worst case, and agreement between the
//! analytical model and the production code path.

use histok::analysis::{simulate, ModelParams};
use histok::core::{
    HistogramTopK, OptimizedExternalTopK, RunGenKind, SizingPolicy, TopKConfig, TopKOperator,
    TraditionalExternalTopK,
};
use histok::sort::run_gen::ResiduePolicy;
use histok::storage::MemoryBackend;
use histok::types::{F64Key, SortSpec};
use histok::workload::{Distribution, Workload};

const INPUT: u64 = 300_000;
const MEM_ROWS: usize = 2_000;
const K: u64 = 10_000;

fn config(buckets: u32) -> TopKConfig {
    let sizing =
        if buckets == 0 { SizingPolicy::Disabled } else { SizingPolicy::TargetBuckets(buckets) };
    TopKConfig::builder().memory_budget(MEM_ROWS * 64).sizing(sizing).build().unwrap()
}

fn run_histogram(w: &Workload, buckets: u32) -> (u64, u64) {
    let mut op =
        HistogramTopK::new(SortSpec::ascending(K), config(buckets), MemoryBackend::new()).unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let n = op.finish().unwrap().count() as u64;
    assert_eq!(n, K);
    (op.metrics().rows_spilled(), op.metrics().runs())
}

#[test]
fn order_of_magnitude_spill_reduction_vs_traditional() {
    // §5.2/§5.3: up to 11-13x fewer rows spilled. At our scaled input/k
    // ratio (30x) we require at least 5x.
    let w = Workload::uniform(INPUT, 1);
    let (hist_spilled, _) = run_histogram(&w, 50);

    let mut trad: TraditionalExternalTopK<F64Key> =
        TraditionalExternalTopK::new(SortSpec::ascending(K), MEM_ROWS * 64, MemoryBackend::new())
            .unwrap();
    for row in w.rows() {
        trad.push(row).unwrap();
    }
    let n = trad.finish().unwrap().count() as u64;
    assert_eq!(n, K);
    let trad_spilled = trad.metrics().rows_spilled();

    assert!(trad_spilled >= INPUT, "traditional must spill everything");
    let reduction = trad_spilled as f64 / hist_spilled as f64;
    assert!(reduction >= 5.0, "only {reduction:.1}x spill reduction ({hist_spilled} rows)");
}

#[test]
fn beats_the_optimized_baseline_substantially() {
    // §3.2.1: "our algorithm will write 12x less input rows compared to the
    // optimized external merge sort". Scaled, we require ≥ 2.5x.
    let w = Workload::uniform(INPUT, 2);
    let (hist_spilled, _) = run_histogram(&w, 50);

    let mut opt =
        OptimizedExternalTopK::new(SortSpec::ascending(K), config(0), MemoryBackend::new())
            .unwrap();
    for row in w.rows() {
        opt.push(row).unwrap();
    }
    let n = opt.finish().unwrap().count() as u64;
    assert_eq!(n, K);
    let opt_spilled = opt.metrics().rows_spilled();
    let reduction = opt_spilled as f64 / hist_spilled as f64;
    assert!(
        reduction >= 2.5,
        "only {reduction:.1}x vs optimized baseline ({hist_spilled} vs {opt_spilled})"
    );
}

#[test]
fn distribution_does_not_affect_filtering() {
    // §5.2: "The distribution of the sort keys does not affect the
    // performance of our algorithm." Spill volumes across distributions
    // must agree within 25%.
    let mut volumes = Vec::new();
    for dist in [
        Distribution::Uniform,
        Distribution::Fal { shape: 0.5 },
        Distribution::Fal { shape: 1.25 },
        Distribution::Fal { shape: 1.5 },
        Distribution::lognormal_default(),
    ] {
        let w = Workload::uniform(INPUT, 3).with_distribution(dist);
        let (spilled, _) = run_histogram(&w, 50);
        volumes.push((dist.label(), spilled));
    }
    let min = volumes.iter().map(|v| v.1).min().unwrap() as f64;
    let max = volumes.iter().map(|v| v.1).max().unwrap() as f64;
    assert!(max / min < 1.25, "distribution-dependent spills: {volumes:?}");
}

#[test]
fn adversarial_input_eliminates_nothing_but_stays_correct() {
    // §5.5: strictly improving keys defeat the filter entirely.
    let w = Workload::uniform(100_000, 0).with_distribution(Distribution::Adversarial);
    let mut op =
        HistogramTopK::new(SortSpec::ascending(5_000), config(50), MemoryBackend::new()).unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let out: Vec<f64> = op.finish().unwrap().map(|r| r.unwrap().key.get()).collect();
    assert_eq!(out.len(), 5_000);
    assert_eq!(out[0], 1.0);
    let m = op.metrics();
    assert_eq!(m.eliminated_at_input, 0);
    assert_eq!(m.eliminated_at_spill, 0);
    // The filter still did its bookkeeping the whole time.
    assert!(m.filter.buckets_inserted > 0);
    assert!(m.filter.refinements > 0);
}

#[test]
fn real_operator_tracks_the_analytical_model() {
    // Drive the production operator with the model's exact setup (uniform
    // keys, load-sort-store, no tail buckets, B=10, residue spilled) and
    // compare spilled rows against the idealized prediction.
    let params =
        ModelParams { input_rows: 200_000, k: 5_000, memory_rows: 1_000, buckets_per_run: 10 };
    let predicted = simulate(params);

    let cfg = TopKConfig::builder()
        .memory_budget(params.memory_rows as usize * 56) // key-only rows
        .sizing(SizingPolicy::TargetBuckets(params.buckets_per_run))
        .tail_buckets(false)
        .run_generation(RunGenKind::LoadSortStore)
        .residue(ResiduePolicy::SpillToRuns)
        .build()
        .unwrap();
    let w = Workload::uniform(params.input_rows, 7);
    let mut op =
        HistogramTopK::new(SortSpec::ascending(params.k), cfg, MemoryBackend::new()).unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let n = op.finish().unwrap().count() as u64;
    assert_eq!(n, params.k);

    let measured = op.metrics().rows_spilled();
    let ratio = measured as f64 / predicted.rows_spilled as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "real operator spilled {measured}, model predicted {} (ratio {ratio:.2})",
        predicted.rows_spilled
    );
}

#[test]
fn replacement_selection_exploits_presorted_input() {
    // §2.5 / §3.1.3: replacement selection keeps runs open while input
    // keeps arriving in roughly ascending order; on nearly sorted data it
    // produces a handful of long runs where load-sort-store produces one
    // run per memory load.
    let w = Workload::uniform(100_000, 9)
        .with_distribution(Distribution::NearlySorted { disorder: 500 });
    let run_with = |kind| {
        let cfg = TopKConfig::builder()
            .memory_budget(2_000 * 64)
            .run_generation(kind)
            .limit_run_size(false)
            .build()
            .unwrap();
        let mut op =
            HistogramTopK::new(SortSpec::ascending(20_000), cfg, MemoryBackend::new()).unwrap();
        for row in w.rows() {
            op.push(row).unwrap();
        }
        let n = op.finish().unwrap().count();
        assert_eq!(n, 20_000);
        op.metrics().runs()
    };
    let rs_runs = run_with(RunGenKind::ReplacementSelection);
    let lss_runs = run_with(RunGenKind::LoadSortStore);
    assert!(
        rs_runs * 4 <= lss_runs,
        "replacement selection made {rs_runs} runs vs load-sort-store {lss_runs}"
    );
}

#[test]
fn more_buckets_spill_less_on_the_real_operator() {
    // Table 2's trend on the production code path.
    let w = Workload::uniform(INPUT, 4);
    let (s1, _) = run_histogram(&w, 1);
    let (s10, _) = run_histogram(&w, 10);
    let (s100, _) = run_histogram(&w, 100);
    assert!(s10 < s1, "10 buckets ({s10}) should beat 1 ({s1})");
    assert!(s100 <= s10 + s10 / 10, "100 buckets ({s100}) should not lose to 10 ({s10})");
}
