//! Integration tests for the §4 extensions through the public facade:
//! grouped top-k, parallel top-k with a shared filter, and the analysis
//! model exposed next to the production operator.

use histok::core::{ExchangeTopK, GroupedTopK, ParallelTopK, TopKConfig};
use histok::prelude::*;
use histok::types::F64Key;
use histok::workload::Distribution;

fn config(mem_rows: usize) -> TopKConfig {
    TopKConfig::builder().memory_budget(mem_rows * 64).block_bytes(1024).build().unwrap()
}

#[test]
fn grouped_topk_spills_and_answers_per_group() {
    let mut op: GroupedTopK<u32, F64Key> =
        GroupedTopK::new(SortSpec::ascending(200), config(50), MemoryBackend::new()).unwrap();
    // Interleave 5 groups with distinct key ranges.
    for round in 0..4_000u64 {
        for g in 0..5u32 {
            let key = F64Key((round * 5 + u64::from(g)) as f64 + f64::from(g) * 1e6);
            op.push(g, Row::key_only(key)).unwrap();
        }
    }
    let results = op.finish().unwrap();
    assert_eq!(results.len(), 5);
    for (g, rows) in results {
        assert_eq!(rows.len(), 200, "group {g}");
        // Each group's minimum lives in its own offset range.
        assert!(rows[0].key.get() >= f64::from(g) * 1e6);
        assert!(rows[0].key.get() < f64::from(g) * 1e6 + 10.0);
        assert!(rows.windows(2).all(|w| w[0].key <= w[1].key));
    }
}

#[test]
fn parallel_topk_matches_single_threaded_answer() {
    let w = Workload::uniform(100_000, 50);
    let expected = w.expected_top_k(2_000, true);

    for threads in [1usize, 2, 4] {
        let mut op: ParallelTopK<F64Key> = ParallelTopK::new(
            SortSpec::ascending(2_000),
            config(300),
            MemoryBackend::new(),
            threads,
        )
        .unwrap();
        for row in w.rows() {
            op.push(row).unwrap();
        }
        let got: Vec<f64> = op.finish().unwrap().map(|r| r.unwrap().key.get()).collect();
        assert_eq!(got, expected, "threads = {threads}");
    }
}

#[test]
fn parallel_shared_filter_bounds_total_spill() {
    // §4.4: threads sharing the histogram queue retain "basically the same
    // number of input rows as a single thread" — total spill must not
    // scale with the thread count.
    let w = Workload::uniform(200_000, 51);
    let spill_with = |threads: usize| {
        let mut op: ParallelTopK<F64Key> = ParallelTopK::new(
            SortSpec::ascending(4_000),
            config(400),
            MemoryBackend::new(),
            threads,
        )
        .unwrap();
        for row in w.rows() {
            op.push(row).unwrap();
        }
        let n = op.finish().unwrap().count();
        assert_eq!(n, 4_000);
        op.metrics().io.rows_written
    };
    let single = spill_with(1);
    let quad = spill_with(4);
    assert!(
        quad < single * 3,
        "4 threads spilled {quad} vs {single} single-threaded — filter not shared?"
    );
}

#[test]
fn parallel_topk_on_skewed_distributions() {
    let w = Workload::uniform(80_000, 52).with_distribution(Distribution::Fal { shape: 1.25 });
    let expected = w.expected_top_k(1_000, false);
    let mut op: ParallelTopK<F64Key> =
        ParallelTopK::new(SortSpec::descending(1_000), config(200), MemoryBackend::new(), 3)
            .unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let got: Vec<f64> = op.finish().unwrap().map(|r| r.unwrap().key.get()).collect();
    assert_eq!(got, expected);
}

#[test]
fn facade_reexports_are_coherent() {
    // The prelude's types are the same types as the per-crate paths.
    let spec: histok::types::SortSpec = SortSpec::ascending(5);
    let _config: histok::core::TopKConfig = TopKConfig::default();
    let op = HistogramTopK::<u64>::new(spec, TopKConfig::default(), MemoryBackend::new());
    assert!(op.is_ok());
    let model = histok::analysis::simulate(histok::analysis::ModelParams {
        input_rows: 10_000,
        k: 500,
        memory_rows: 100,
        buckets_per_run: 10,
    });
    assert!(model.rows_spilled < 10_000);
}

#[test]
fn exchange_design_is_correct_but_less_effective_than_shared_queue() {
    // §4.4 predicts the producer-filtering exchange "suffers from lower
    // effectiveness than sharing histogram priority queues": producers
    // always filter with a stale cutoff, so more rows cross the exchange
    // than the shared-queue design admits into run generation.
    let rows = 150_000u64;
    let k = 3_000u64;
    let threads = 3usize;
    let w = Workload::uniform(rows, 70);
    let expected = w.expected_top_k(k as usize, true);

    // Shared-queue design (ParallelTopK).
    let mut shared: ParallelTopK<F64Key> =
        ParallelTopK::new(SortSpec::ascending(k), config(500), MemoryBackend::new(), threads)
            .unwrap();
    for row in w.rows() {
        shared.push(row).unwrap();
    }
    let shared_out: Vec<f64> = shared.finish().unwrap().map(|r| r.unwrap().key.get()).collect();
    assert_eq!(shared_out, expected);
    let shared_admitted = rows - shared.metrics().eliminated_at_input;

    // Exchange design (producer-side filtering via flow control).
    let exchange =
        ExchangeTopK::new(SortSpec::ascending(k), config(500), MemoryBackend::new()).unwrap();
    std::thread::scope(|scope| {
        for p in 0..threads {
            let mut producer = exchange.producer().unwrap();
            let rows_iter = w.rows();
            scope.spawn(move || {
                for (i, row) in rows_iter.enumerate() {
                    if i % threads == p {
                        producer.push(row).unwrap();
                    }
                }
                producer.finish().unwrap();
            });
        }
    });
    let (stream, metrics) = exchange.finish().unwrap();
    let exchange_out: Vec<f64> = stream.map(|r| r.unwrap().key.get()).collect();
    assert_eq!(exchange_out, expected);

    // Both designs eliminate most of the input...
    assert!(metrics.filtered_at_producer > rows / 2);
    // ...but the exchange ships noticeably more rows than the shared
    // queue admits (stale cutoffs + packet batching).
    assert!(
        metrics.rows_shipped as f64 > shared_admitted as f64 * 1.05,
        "expected the exchange to be less effective: shipped {} vs shared-queue {}",
        metrics.rows_shipped,
        shared_admitted
    );
}
