//! Large-scale stress tests, `#[ignore]`d by default (run with
//! `cargo test --release --test stress -- --ignored`). They push the
//! operators to multi-million-row inputs — closer to the paper's regime —
//! and assert exactness and the expected asymptotic I/O behaviour.

use histok::core::{HistogramTopK, TopKConfig, TopKOperator};
use histok::storage::{FileBackend, MemoryBackend};
use histok::types::SortSpec;
use histok::workload::{Distribution, Workload};

fn config(mem_rows: usize) -> TopKConfig {
    TopKConfig::builder().memory_budget(mem_rows * 64).build().unwrap()
}

#[test]
#[ignore = "multi-million-row stress run; use --release"]
fn ten_million_rows_exact_topk() {
    let rows = 10_000_000u64;
    let k = 100_000u64;
    let w = Workload::uniform(rows, 1);
    let mut op =
        HistogramTopK::new(SortSpec::ascending(k), config(50_000), MemoryBackend::new()).unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let mut expected = 1.0;
    let mut n = 0u64;
    for row in op.finish().unwrap() {
        assert_eq!(row.unwrap().key.get(), expected);
        expected += 1.0;
        n += 1;
    }
    assert_eq!(n, k);
    let m = op.metrics();
    // At input/k = 100, filtering should keep spill under 10% of the input.
    assert!(m.spill_fraction() < 0.10, "spilled {:.1}% of 10M rows", m.spill_fraction() * 100.0);
}

#[test]
#[ignore = "multi-million-row stress run on real files; use --release"]
fn file_backed_five_million_rows() {
    let rows = 5_000_000u64;
    let k = 50_000u64;
    let w = Workload::uniform(rows, 2).with_payload_bytes(32);
    let backend = FileBackend::temp().unwrap();
    let mut op = HistogramTopK::new(
        SortSpec::ascending(k),
        TopKConfig::builder().memory_budget(30_000 * 96).build().unwrap(),
        backend,
    )
    .unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let n = op.finish().unwrap().map(|r| r.unwrap()).fold(0u64, |acc, _| acc + 1);
    assert_eq!(n, k);
}

#[test]
#[ignore = "long-tail distribution stress; use --release"]
fn lognormal_three_million_descending() {
    let rows = 3_000_000u64;
    let k = 60_000u64;
    let w = Workload::uniform(rows, 3).with_distribution(Distribution::lognormal_default());
    let mut op =
        HistogramTopK::new(SortSpec::descending(k), config(20_000), MemoryBackend::new()).unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let out: Vec<f64> = op.finish().unwrap().map(|r| r.unwrap().key.get()).collect();
    assert_eq!(out.len() as u64, k);
    assert!(out.windows(2).all(|p| p[0] >= p[1]));
    assert!(op.metrics().spill_fraction() < 0.15);
}

#[test]
#[ignore = "adversarial stress (nothing filterable); use --release"]
fn adversarial_two_million_rows() {
    let rows = 2_000_000u64;
    let k = 40_000u64;
    let w = Workload::uniform(rows, 0).with_distribution(Distribution::Adversarial);
    let mut op =
        HistogramTopK::new(SortSpec::ascending(k), config(20_000), MemoryBackend::new()).unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let out_len = op.finish().unwrap().count() as u64;
    assert_eq!(out_len, k);
    let m = op.metrics();
    assert_eq!(m.eliminated_at_input + m.eliminated_at_spill, 0);
}
