//! Cross-crate integration tests: every algorithm, every backend, payload
//! integrity, and the full query pipeline.

use histok::core::{
    HistogramTopK, InMemoryTopK, OptimizedExternalTopK, RunGenKind, TopKConfig, TopKOperator,
    TraditionalExternalTopK,
};
use histok::exec::{Algorithm, Query};
use histok::storage::{FileBackend, MemoryBackend};
use histok::types::{F64Key, Result, Row, SortSpec};
use histok::workload::{Distribution, Lineitem, Workload, LINEITEM_PAYLOAD_BYTES};

fn config(mem_rows: usize, payload: usize) -> TopKConfig {
    TopKConfig::builder().memory_budget(mem_rows * (64 + payload)).build().unwrap()
}

fn drive<O: TopKOperator<F64Key>>(op: &mut O, w: &Workload) -> Vec<f64> {
    for row in w.rows() {
        op.push(row).unwrap();
    }
    op.finish().unwrap().map(|r| r.unwrap().key.get()).collect()
}

#[test]
fn four_algorithms_agree_across_distributions() {
    for dist in [
        Distribution::Uniform,
        Distribution::Fal { shape: 1.05 },
        Distribution::lognormal_default(),
    ] {
        let w = Workload::uniform(30_000, 5).with_distribution(dist);
        let expected = w.expected_top_k(700, true);
        let spec = SortSpec::ascending(700);

        let mut hist = HistogramTopK::new(spec, config(150, 0), MemoryBackend::new()).unwrap();
        let mut opt =
            OptimizedExternalTopK::new(spec, config(150, 0), MemoryBackend::new()).unwrap();
        let mut trad = TraditionalExternalTopK::new(spec, 150 * 64, MemoryBackend::new()).unwrap();
        let mut inmem = InMemoryTopK::new(spec).unwrap();

        assert_eq!(drive(&mut hist, &w), expected, "{} histogram", dist.label());
        assert_eq!(drive(&mut opt, &w), expected, "{} optimized", dist.label());
        assert_eq!(drive(&mut trad, &w), expected, "{} traditional", dist.label());
        assert_eq!(drive(&mut inmem, &w), expected, "{} in-memory", dist.label());
    }
}

#[test]
fn file_backend_matches_memory_backend() {
    let w = Workload::uniform(25_000, 6).with_payload_bytes(24);
    let spec = SortSpec::ascending(600);
    let mut on_mem = HistogramTopK::new(spec, config(120, 24), MemoryBackend::new()).unwrap();
    let mut on_file =
        HistogramTopK::new(spec, config(120, 24), FileBackend::temp().unwrap()).unwrap();
    let a = drive(&mut on_mem, &w);
    let b = drive(&mut on_file, &w);
    assert_eq!(a, b);
    assert!(on_file.metrics().spilled, "must actually have used the files");
}

#[test]
fn lineitem_payloads_survive_spilling_intact() {
    // The paper's query projects all columns: payload bytes must round-trip
    // through runs and merges untouched.
    let w = Workload::uniform(20_000, 7).with_payload_bytes(LINEITEM_PAYLOAD_BYTES);
    let spec = SortSpec::ascending(500);
    let mut op =
        HistogramTopK::new(spec, config(100, LINEITEM_PAYLOAD_BYTES), FileBackend::temp().unwrap())
            .unwrap();
    for row in w.rows() {
        op.push(row).unwrap();
    }
    let rows: Vec<Row<F64Key>> = op.finish().unwrap().collect::<Result<_>>().unwrap();
    assert_eq!(rows.len(), 500);
    assert!(op.metrics().spilled);
    for row in &rows {
        let item = Lineitem::decode(&row.payload).expect("decodable payload");
        assert!((1..=7).contains(&item.linenumber));
        assert!(matches!(item.returnflag, b'R' | b'A' | b'N'));
    }
}

#[test]
fn run_generation_strategies_agree() {
    let w = Workload::uniform(40_000, 8);
    let expected = w.expected_top_k(900, true);
    let spec = SortSpec::ascending(900);
    for kind in [RunGenKind::ReplacementSelection, RunGenKind::LoadSortStore] {
        let cfg =
            TopKConfig::builder().memory_budget(150 * 64).run_generation(kind).build().unwrap();
        let mut op = HistogramTopK::new(spec, cfg, MemoryBackend::new()).unwrap();
        assert_eq!(drive(&mut op, &w), expected, "{kind:?}");
    }
}

#[test]
fn query_pipeline_with_filter_and_offset() {
    let w = Workload::uniform(10_000, 9);
    let result = Query::scan(w.rows(), SortSpec::ascending(10).with_offset(5))
        .filter(|row| row.key.get() % 3.0 == 0.0)
        .algorithm(Algorithm::Histogram)
        .execute(MemoryBackend::new())
        .unwrap();
    let keys: Vec<f64> = result.rows.iter().map(|r| r.key.get()).collect();
    // Multiples of 3, skipping the first five (3,6,9,12,15).
    assert_eq!(keys, vec![18.0, 21.0, 24.0, 27.0, 30.0, 33.0, 36.0, 39.0, 42.0, 45.0]);
}

#[test]
fn huge_k_relative_to_input_degrades_gracefully() {
    // k = 90% of the input: nearly nothing can be eliminated, but the
    // answer must stay exact (the paper: "not very effective for input
    // sizes only slightly larger than the desired output").
    let w = Workload::uniform(10_000, 10);
    let expected = w.expected_top_k(9_000, true);
    let spec = SortSpec::ascending(9_000);
    let mut op = HistogramTopK::new(spec, config(200, 0), MemoryBackend::new()).unwrap();
    assert_eq!(drive(&mut op, &w), expected);
}

#[test]
fn single_row_and_tiny_inputs() {
    for n in [1u64, 2, 5] {
        let w = Workload::uniform(n, 11);
        let spec = SortSpec::ascending(10);
        let mut op = HistogramTopK::new(spec, config(1, 0), MemoryBackend::new()).unwrap();
        let got = drive(&mut op, &w);
        assert_eq!(got.len() as u64, n);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn descending_with_ties_across_the_cutoff() {
    // Heavy duplication around the boundary exercises the "ties survive"
    // rule end to end.
    let keys: Vec<f64> = (0..5_000).map(|i| f64::from(i % 50)).collect();
    let spec = SortSpec::descending(250);
    let cfg = config(80, 0);
    let mut op: HistogramTopK<F64Key> =
        HistogramTopK::new(spec, cfg, MemoryBackend::new()).unwrap();
    for &k in &keys {
        op.push(Row::key_only(F64Key(k))).unwrap();
    }
    let got: Vec<f64> = op.finish().unwrap().map(|r| r.unwrap().key.get()).collect();
    let mut expected = keys;
    expected.sort_unstable_by(|a, b| b.total_cmp(a));
    expected.truncate(250);
    assert_eq!(got, expected);
}

#[test]
fn typed_records_flow_through_the_operator() {
    // The paper's full-projection query over typed records (§5.1.1): sort
    // key from one column, all 16 columns as payload, decoded after the
    // merge.
    use histok::exec::{Record, Schema, Value};
    let schema = Schema::lineitem();
    let mut op: HistogramTopK<i64> =
        HistogramTopK::new(SortSpec::ascending(50), config(40, 128), MemoryBackend::new()).unwrap();
    for orderkey in (1..=2_000i64).rev() {
        let record = Record::new(
            &schema,
            vec![
                Value::Int64(orderkey),
                Value::Int64(orderkey % 100),
                Value::Int64(orderkey % 10),
                Value::Int64(1),
                Value::Float64(2.0),
                Value::Float64(199.0),
                Value::Float64(0.04),
                Value::Float64(0.02),
                Value::Utf8("N".into()),
                Value::Utf8("O".into()),
                Value::Date(9_000),
                Value::Date(9_030),
                Value::Date(9_015),
                Value::Utf8("NONE".into()),
                Value::Utf8("TRUCK".into()),
                Value::Utf8(format!("comment {orderkey}")),
            ],
        )
        .unwrap();
        op.push(Row::new(orderkey, record.encode())).unwrap();
    }
    let rows: Vec<Row<i64>> = op.finish().unwrap().collect::<Result<_>>().unwrap();
    assert_eq!(rows.len(), 50);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.key, i as i64 + 1);
        let record = Record::decode(&schema, &row.payload).unwrap();
        assert_eq!(record.get(&schema, "l_orderkey").unwrap().as_i64(), Some(row.key));
        assert_eq!(
            record.get(&schema, "l_comment").unwrap().as_str(),
            Some(format!("comment {}", row.key).as_str())
        );
    }
}
