//! Failure injection: storage faults must surface as clean errors — never
//! panics, hangs, or silently wrong results.

use histok::core::{
    HistogramTopK, ParallelTopK, TopKConfig, TopKOperator, TraditionalExternalTopK,
};
use histok::storage::{FaultBackend, FaultPlan, MemoryBackend};
use histok::types::{Error, SortSpec};
use histok::workload::Workload;

fn spilling_config() -> TopKConfig {
    TopKConfig::builder().memory_budget(50 * 64).block_bytes(512).build().unwrap()
}

/// Pushes the workload, tolerating an error; returns the first error seen
/// during push or finish/drain.
fn run_to_first_error(backend: FaultBackend<MemoryBackend>) -> Option<Error> {
    let w = Workload::uniform(20_000, 1);
    let mut op = match HistogramTopK::new(SortSpec::ascending(400), spilling_config(), backend) {
        Ok(op) => op,
        Err(e) => return Some(e),
    };
    for row in w.rows() {
        if let Err(e) = op.push(row) {
            return Some(e);
        }
    }
    match op.finish() {
        Err(e) => Some(e),
        Ok(stream) => {
            for row in stream {
                if let Err(e) = row {
                    return Some(e);
                }
            }
            None
        }
    }
}

#[test]
fn create_failure_surfaces_at_first_spill() {
    let be = FaultBackend::new(
        MemoryBackend::new(),
        FaultPlan { fail_create: true, ..FaultPlan::none() },
    );
    let err = run_to_first_error(be.clone()).expect("must fail");
    assert!(matches!(err, Error::Injected(_)), "got {err}");
    assert!(be.fault_fired());
}

#[test]
fn write_budget_exhaustion_fails_cleanly() {
    let be = FaultBackend::new(
        MemoryBackend::new(),
        FaultPlan { fail_write_after_bytes: Some(20_000), ..FaultPlan::none() },
    );
    let err = run_to_first_error(be).expect("must fail");
    assert!(matches!(err, Error::Injected(_)), "got {err}");
}

#[test]
fn read_failure_during_merge_fails_cleanly() {
    // Writes succeed; reads run out of budget during the final merge.
    let be = FaultBackend::new(
        MemoryBackend::new(),
        FaultPlan { fail_read_after_bytes: Some(4_096), ..FaultPlan::none() },
    );
    let err = run_to_first_error(be).expect("must fail");
    assert!(matches!(err, Error::Injected(_)), "got {err}");
}

#[test]
fn silent_corruption_is_caught_by_checksums() {
    // Corrupt one byte inside the first run's first block — a block the
    // final merge is guaranteed to read when it initializes its loser
    // tree. The CRC check must turn it into an explicit error rather than
    // a wrong answer. (Blocks the early-stopping merge never reads are
    // legitimately never verified.)
    let be = FaultBackend::new(
        MemoryBackend::new(),
        FaultPlan { corrupt_write_byte_at: Some(100), ..FaultPlan::none() },
    );
    let err = run_to_first_error(be.clone());
    match err {
        Some(Error::Corrupt(_)) => {} // detected at merge time
        Some(other) => panic!("expected Corrupt, got {other}"),
        None => panic!("corruption went unnoticed"),
    }
}

#[test]
fn traditional_baseline_propagates_faults_too() {
    let be = FaultBackend::new(
        MemoryBackend::new(),
        FaultPlan { fail_write_after_bytes: Some(10_000), ..FaultPlan::none() },
    );
    let mut op: TraditionalExternalTopK<histok::types::F64Key> =
        TraditionalExternalTopK::new(SortSpec::ascending(100), 50 * 64, be).unwrap();
    let mut failed = false;
    for row in Workload::uniform(20_000, 2).rows() {
        if op.push(row).is_err() {
            failed = true;
            break;
        }
    }
    if !failed {
        failed = op.finish().is_err();
    }
    assert!(failed, "fault never surfaced");
}

#[test]
fn operator_unusable_after_storage_error_but_does_not_panic() {
    let be = FaultBackend::new(
        MemoryBackend::new(),
        FaultPlan { fail_create: true, ..FaultPlan::none() },
    );
    let mut op = HistogramTopK::new(SortSpec::ascending(400), spilling_config(), be).unwrap();
    let mut first_error = None;
    for row in Workload::uniform(10_000, 3).rows() {
        match op.push(row) {
            Ok(()) => {}
            Err(e) => {
                first_error = Some(e);
                break;
            }
        }
    }
    assert!(first_error.is_some());
    // Subsequent metric reads must still work (for error reporting paths).
    let _ = op.metrics();
}

#[test]
fn no_faults_means_no_errors() {
    let be = FaultBackend::new(MemoryBackend::new(), FaultPlan::none());
    assert!(run_to_first_error(be).is_none());
}

#[test]
fn in_memory_only_queries_never_touch_faulty_storage() {
    // If k fits in memory, even a backend that always fails is never used.
    let be = FaultBackend::new(
        MemoryBackend::new(),
        FaultPlan { fail_create: true, ..FaultPlan::none() },
    );
    let config = TopKConfig::builder().memory_budget(1 << 20).build().unwrap();
    let mut op = HistogramTopK::new(SortSpec::ascending(10), config, be.clone()).unwrap();
    for row in Workload::uniform(1_000, 4).rows() {
        op.push(row).unwrap();
    }
    let out: Vec<_> = op.finish().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(out.len(), 10);
    assert!(!be.fault_fired());
}

#[test]
fn parallel_workers_surface_storage_faults() {
    let be = FaultBackend::new(
        MemoryBackend::new(),
        FaultPlan { fail_write_after_bytes: Some(8_192), ..FaultPlan::none() },
    );
    let mut op: ParallelTopK<histok::types::F64Key> =
        ParallelTopK::new(SortSpec::ascending(400), spilling_config(), be, 3).unwrap();
    let mut failed = false;
    for row in Workload::uniform(50_000, 5).rows() {
        if op.push(row).is_err() {
            failed = true;
            break;
        }
    }
    if !failed {
        failed = op.finish().is_err();
    }
    assert!(failed, "worker fault never reached the caller");
    drop(op); // drop must join the dead workers without hanging
}

#[test]
fn parallel_without_faults_still_clean() {
    let be = FaultBackend::new(MemoryBackend::new(), FaultPlan::none());
    let mut op: ParallelTopK<histok::types::F64Key> =
        ParallelTopK::new(SortSpec::ascending(200), spilling_config(), be, 2).unwrap();
    for row in Workload::uniform(10_000, 6).rows() {
        op.push(row).unwrap();
    }
    let n = op.finish().unwrap().map(|r| r.unwrap()).fold(0usize, |acc, _| acc + 1);
    assert_eq!(n, 200);
}
