//! Variable-length and composite sort keys through the full stack: byte
//! strings and `(primary, secondary)` pairs must flow through run files,
//! histograms, consolidation and merging exactly like fixed-width keys.

use histok::core::{HistogramTopK, TopKConfig, TopKOperator};
use histok::storage::MemoryBackend;
use histok::types::{BytesKey, F64Key, KeyPair, Row, SortSpec};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

fn config(mem_rows: usize, row_bytes: usize) -> TopKConfig {
    TopKConfig::builder().memory_budget(mem_rows * row_bytes).block_bytes(2048).build().unwrap()
}

#[test]
fn bytes_keys_spill_and_filter() {
    // 30,000 random words; top 500 lexicographically smallest.
    let mut rng = StdRng::seed_from_u64(1);
    let mut words: Vec<String> = (0..30_000u32)
        .map(|_| {
            let len = rng.gen_range(3..20);
            (0..len).map(|_| (b'a' + rng.gen_range(0..26)) as char).collect()
        })
        .collect();
    let mut expected = words.clone();
    expected.sort();
    expected.truncate(500);

    words.shuffle(&mut rng);
    let mut op: HistogramTopK<BytesKey> =
        HistogramTopK::new(SortSpec::ascending(500), config(200, 96), MemoryBackend::new())
            .unwrap();
    for w in &words {
        op.push(Row::key_only(BytesKey::from(w.as_str()))).unwrap();
    }
    let got: Vec<String> =
        op.finish().unwrap().map(|r| String::from_utf8(r.unwrap().key.0).unwrap()).collect();
    assert_eq!(got, expected);
    let m = op.metrics();
    assert!(m.spilled);
    assert!(
        m.rows_spilled() < 15_000,
        "variable-length keys should filter too: spilled {}",
        m.rows_spilled()
    );
}

#[test]
fn bytes_keys_survive_consolidation() {
    // A tiny histogram queue forces consolidation with heap-allocated
    // boundary keys; correctness must hold.
    let mut rng = StdRng::seed_from_u64(2);
    let mut words: Vec<String> =
        (0..20_000u32).map(|i| format!("{:08}-{}", rng.gen_range(0..1_000_000u32), i)).collect();
    let mut expected = words.clone();
    expected.sort();
    expected.truncate(300);
    words.shuffle(&mut rng);

    let cfg = TopKConfig::builder()
        .memory_budget(150 * 96)
        .histogram_memory(512) // a handful of buckets, then consolidate
        .block_bytes(2048)
        .build()
        .unwrap();
    let mut op: HistogramTopK<BytesKey> =
        HistogramTopK::new(SortSpec::ascending(300), cfg, MemoryBackend::new()).unwrap();
    for w in &words {
        op.push(Row::key_only(BytesKey::from(w.as_str()))).unwrap();
    }
    let got: Vec<String> =
        op.finish().unwrap().map(|r| String::from_utf8(r.unwrap().key.0).unwrap()).collect();
    assert_eq!(got, expected);
    assert!(op.metrics().filter.consolidations > 0, "consolidation never triggered");
}

#[test]
fn composite_keys_order_lexicographically_end_to_end() {
    // ORDER BY category ASC, score ASC — KeyPair<u32, F64Key>.
    let mut rng = StdRng::seed_from_u64(3);
    let mut rows: Vec<(u32, f64)> =
        (0..25_000).map(|_| (rng.gen_range(0..8u32), rng.gen_range(0.0..1.0))).collect();
    let mut expected = rows.clone();
    expected.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    expected.truncate(400);
    rows.shuffle(&mut rng);

    let mut op: HistogramTopK<KeyPair<u32, F64Key>> =
        HistogramTopK::new(SortSpec::ascending(400), config(150, 80), MemoryBackend::new())
            .unwrap();
    for &(cat, score) in &rows {
        op.push(Row::key_only(KeyPair(cat, F64Key(score)))).unwrap();
    }
    let got: Vec<(u32, f64)> = op
        .finish()
        .unwrap()
        .map(|r| {
            let KeyPair(cat, score) = r.unwrap().key;
            (cat, score.get())
        })
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn descending_bytes_keys() {
    let words = ["pear", "apple", "quince", "fig", "mango", "banana", "kiwi"];
    let mut op: HistogramTopK<BytesKey> =
        HistogramTopK::new(SortSpec::descending(3), config(100, 64), MemoryBackend::new()).unwrap();
    for w in words {
        op.push(Row::key_only(BytesKey::from(w))).unwrap();
    }
    let got: Vec<String> =
        op.finish().unwrap().map(|r| String::from_utf8(r.unwrap().key.0).unwrap()).collect();
    assert_eq!(got, vec!["quince", "pear", "mango"]);
}
