//! Property-based integration tests: for arbitrary inputs, budgets and
//! policies, the operators must return exactly the true top-k, never lose
//! duplicates, and never spill more than the traditional baseline.

use proptest::prelude::*;

use histok::core::{HistogramTopK, OptimizedExternalTopK, SizingPolicy, TopKConfig, TopKOperator};
use histok::sort::run_gen::ResiduePolicy;
use histok::storage::MemoryBackend;
use histok::types::{Row, SortOrder, SortSpec};

fn exact_top_k(keys: &[u64], k: usize, order: SortOrder) -> Vec<u64> {
    let mut sorted = keys.to_vec();
    match order {
        SortOrder::Ascending => sorted.sort_unstable(),
        SortOrder::Descending => sorted.sort_unstable_by(|a, b| b.cmp(a)),
    }
    sorted.truncate(k);
    sorted
}

fn run_histogram(
    keys: &[u64],
    spec: SortSpec,
    mem_rows: usize,
    sizing: SizingPolicy,
    residue: ResiduePolicy,
) -> (Vec<u64>, u64) {
    let config = TopKConfig::builder()
        .memory_budget(mem_rows * 60)
        .sizing(sizing)
        .residue(residue)
        .block_bytes(512)
        .build()
        .unwrap();
    let mut op = HistogramTopK::new(spec, config, MemoryBackend::new()).unwrap();
    for &k in keys {
        op.push(Row::key_only(k)).unwrap();
    }
    let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
    (out, op.metrics().rows_spilled())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline invariant: for ANY input, k, memory size, sizing
    /// policy and residue policy, the histogram operator returns exactly
    /// the true top-k (as a multiset, in order).
    #[test]
    fn histogram_topk_is_always_exact(
        keys in proptest::collection::vec(0u64..10_000, 1..3_000),
        k in 1usize..500,
        mem_rows in 4usize..200,
        buckets in prop_oneof![Just(0u32), Just(1), Just(5), Just(50)],
        ascending in any::<bool>(),
        keep_residue in any::<bool>(),
    ) {
        let order = if ascending { SortOrder::Ascending } else { SortOrder::Descending };
        let spec = SortSpec { order, limit: k as u64, offset: 0 };
        let sizing = if buckets == 0 {
            SizingPolicy::Disabled
        } else {
            SizingPolicy::TargetBuckets(buckets)
        };
        let residue = if keep_residue {
            ResiduePolicy::KeepInMemory
        } else {
            ResiduePolicy::SpillToRuns
        };
        let (got, _) = run_histogram(&keys, spec, mem_rows, sizing, residue);
        let expected = exact_top_k(&keys, k, order);
        prop_assert_eq!(got, expected);
    }

    /// Offsets never lose or duplicate rows: page p starts where page p-1
    /// ended.
    #[test]
    fn offset_pages_partition_the_prefix(
        keys in proptest::collection::vec(0u64..100_000, 50..1_000),
        page_size in 1u64..50,
        pages in 1u64..5,
        mem_rows in 4usize..64,
    ) {
        let mut all_pages = Vec::new();
        for p in 0..pages {
            let spec = SortSpec::ascending(page_size).with_offset(p * page_size);
            let (page, _) = run_histogram(
                &keys, spec, mem_rows, SizingPolicy::default(), ResiduePolicy::KeepInMemory,
            );
            all_pages.extend(page);
        }
        let expected = exact_top_k(&keys, (pages * page_size) as usize, SortOrder::Ascending);
        prop_assert_eq!(all_pages, expected);
    }

    /// The filter only ever helps: rows spilled by the histogram operator
    /// never exceed the rows the input itself would force out (input size),
    /// and with the filter disabled the spill volume can only grow.
    #[test]
    fn filtering_never_increases_spill(
        keys in proptest::collection::vec(0u64..50_000, 200..2_000),
        k in 1u64..200,
        mem_rows in 8usize..64,
    ) {
        let spec = SortSpec::ascending(k);
        let (out_on, spilled_on) = run_histogram(
            &keys, spec, mem_rows, SizingPolicy::default(), ResiduePolicy::SpillToRuns,
        );
        let (out_off, spilled_off) = run_histogram(
            &keys, spec, mem_rows, SizingPolicy::Disabled, ResiduePolicy::SpillToRuns,
        );
        prop_assert_eq!(out_on, out_off);
        prop_assert!(spilled_on <= spilled_off,
            "filter made spilling worse: {} vs {}", spilled_on, spilled_off);
    }

    /// The optimized baseline is exact too (it shares almost no code path
    /// with the histogram operator beyond run storage).
    #[test]
    fn optimized_baseline_is_always_exact(
        keys in proptest::collection::vec(0u64..10_000, 1..2_000),
        k in 1usize..300,
        mem_rows in 4usize..100,
    ) {
        let spec = SortSpec::ascending(k as u64);
        let config = TopKConfig::builder()
            .memory_budget(mem_rows * 60)
            .block_bytes(512)
            .build()
            .unwrap();
        let mut op = OptimizedExternalTopK::new(spec, config, MemoryBackend::new()).unwrap();
        for &key in &keys {
            op.push(Row::key_only(key)).unwrap();
        }
        let got: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        prop_assert_eq!(got, exact_top_k(&keys, k, SortOrder::Ascending));
    }

    /// Duplicate-heavy inputs: the count of each key in the output matches
    /// the true top-k multiset exactly (no tie is dropped or double-kept).
    #[test]
    fn duplicates_are_counted_exactly(
        n_distinct in 1u64..20,
        copies in 1usize..200,
        k in 1usize..300,
        mem_rows in 4usize..32,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let mut keys: Vec<u64> =
            (0..n_distinct).flat_map(|d| std::iter::repeat_n(d, copies)).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(seed));
        let spec = SortSpec::ascending(k as u64);
        let (got, _) = run_histogram(
            &keys, spec, mem_rows, SizingPolicy::TargetBuckets(10), ResiduePolicy::KeepInMemory,
        );
        prop_assert_eq!(got, exact_top_k(&keys, k, SortOrder::Ascending));
    }
}
