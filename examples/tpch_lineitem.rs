//! The paper's evaluation query, end to end over typed records (§5.1.1):
//!
//! ```sql
//! SELECT L_ORDERKEY, ..., L_COMMENT   -- full projection
//! FROM LINEITEM
//! ORDER BY L_ORDERKEY
//! LIMIT K;
//! ```
//!
//! Rows are full 16-column `lineitem` records; the sort key is extracted
//! from `l_orderkey` and the remaining columns travel as the encoded
//! payload through runs and merges, then decode back into records.
//!
//! ```sh
//! cargo run --release --example tpch_lineitem
//! ```

use histok::exec::{Record, Schema, Value};
use histok::prelude::*;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

const ROWS: u64 = 300_000;
const K: u64 = 10_000;
const MEM_ROWS: usize = 3_000;

fn generate_lineitem(schema: &Schema, rng: &mut StdRng, orderkey: i64) -> Record {
    const FLAGS: [&str; 3] = ["R", "A", "N"];
    const MODES: [&str; 4] = ["AIR", "RAIL", "SHIP", "TRUCK"];
    const INSTRUCT: [&str; 3] = ["DELIVER IN PERSON", "COLLECT COD", "NONE"];
    let quantity = f64::from(rng.gen_range(1u32..=50));
    let shipdate = rng.gen_range(8_766u32..=10_957);
    Record::new(
        schema,
        vec![
            Value::Int64(orderkey),
            Value::Int64(rng.gen_range(1..=200_000)),
            Value::Int64(rng.gen_range(1..=10_000)),
            Value::Int64(rng.gen_range(1..=7)),
            Value::Float64(quantity),
            Value::Float64(quantity * f64::from(rng.gen_range(900..=2_000))),
            Value::Float64(f64::from(rng.gen_range(0u32..=10)) / 100.0),
            Value::Float64(f64::from(rng.gen_range(0u32..=8)) / 100.0),
            Value::Utf8(FLAGS[rng.gen_range(0..3)].into()),
            Value::Utf8(if rng.gen_bool(0.5) { "O" } else { "F" }.into()),
            Value::Date(shipdate),
            Value::Date(shipdate + rng.gen_range(1..=60)),
            Value::Date(shipdate + rng.gen_range(1..=30)),
            Value::Utf8(INSTRUCT[rng.gen_range(0..3)].into()),
            Value::Utf8(MODES[rng.gen_range(0..4)].into()),
            Value::Utf8(format!("carefully final deposits #{}", orderkey % 997)),
        ],
    )
    .expect("record matches schema")
}

fn main() -> Result<()> {
    let schema = Schema::lineitem();
    let mut rng = StdRng::seed_from_u64(19);

    // An unsorted lineitem table: orderkeys 1..=ROWS in shuffled order.
    let mut orderkeys: Vec<i64> = (1..=ROWS as i64).collect();
    orderkeys.shuffle(&mut rng);

    let spec = SortSpec::ascending(K);
    let config = TopKConfig::builder().memory_budget(MEM_ROWS * 256).build()?;
    let mut op: HistogramTopK<i64> = HistogramTopK::new(spec, config, MemoryBackend::new())?;

    println!("SELECT * FROM lineitem ORDER BY l_orderkey LIMIT {K};  -- {ROWS} rows\n");
    for &orderkey in &orderkeys {
        let record = generate_lineitem(&schema, &mut rng, orderkey);
        // Sort key from l_orderkey; the full record rides as the payload.
        op.push(Row::new(orderkey, record.encode()))?;
    }

    let mut produced = 0u64;
    let mut sample = None;
    for row in op.finish()? {
        let row = row?;
        let record = Record::decode(&schema, &row.payload)?;
        // The projection really is the whole table: key column matches the
        // decoded record's first column.
        assert_eq!(record.get(&schema, "l_orderkey")?.as_i64(), Some(row.key));
        produced += 1;
        if produced == K {
            sample = Some(record);
        }
    }
    assert_eq!(produced, K);

    let m = op.metrics();
    println!("produced {produced} fully-projected rows");
    if let Some(rec) = sample {
        println!(
            "row #{K}: orderkey {} qty {} price {:.2} ship via {}",
            rec.get(&schema, "l_orderkey")?.as_i64().expect("int"),
            rec.get(&schema, "l_quantity")?.as_f64().expect("float"),
            rec.get(&schema, "l_extendedprice")?.as_f64().expect("float"),
            rec.get(&schema, "l_shipmode")?.as_str().expect("string"),
        );
    }
    println!(
        "\nspilled {} of {} rows ({:.1}%) in {} runs; eliminated {} at input",
        m.rows_spilled(),
        m.rows_in,
        m.spill_fraction() * 100.0,
        m.runs(),
        m.eliminated_at_input
    );
    Ok(())
}
