//! Parallel top-k with a shared histogram filter (§4.4): several worker
//! threads generate runs concurrently while sharing one histogram priority
//! queue, so the group "retains basically the same number of input rows as
//! a single thread".
//!
//! ```sh
//! cargo run --release --example parallel_ranking
//! ```

use std::time::Instant;

use histok::core::ParallelTopK;
use histok::prelude::*;
use histok::types::F64Key;

const ROWS: u64 = 2_000_000;
const K: u64 = 20_000;
const MEM_ROWS_PER_WORKER: usize = 4_000;

fn run(threads: usize) -> Result<(f64, u64, u64)> {
    let spec = SortSpec::ascending(K);
    let config = TopKConfig::builder().memory_budget(MEM_ROWS_PER_WORKER * 64).build()?;
    let mut op: ParallelTopK<F64Key> =
        ParallelTopK::new(spec, config, MemoryBackend::new(), threads)?;
    let start = Instant::now();
    for row in Workload::uniform(ROWS, 55).rows() {
        op.push(row)?;
    }
    let out: Vec<f64> = op.finish()?.map(|r| r.map(|row| row.key.get())).collect::<Result<_>>()?;
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(out.len() as u64, K);
    assert_eq!(*out.first().expect("nonempty"), 1.0);
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
    let m = op.metrics();
    Ok((elapsed, m.io.rows_written, m.eliminated_at_input))
}

fn main() -> Result<()> {
    println!("top {K} of {ROWS} rows, {MEM_ROWS_PER_WORKER}-row budget per worker\n");
    println!("{:>8} | {:>9} {:>12} {:>14}", "threads", "time", "spilled", "eliminated");
    for threads in [1usize, 2, 4] {
        let (t, spilled, eliminated) = run(threads)?;
        println!("{:>8} | {:>8.2}s {:>12} {:>14}", threads, t, spilled, eliminated);
    }
    println!("\nworkers share one histogram priority queue: total spill stays close to");
    println!("the single-threaded volume instead of multiplying by the thread count.");
    Ok(())
}
