//! Web-log analytics: the paper's motivating scenario — "an engineer at
//! Twitter might want to perform trend analysis on the 10% most important
//! tweets" (§1). We rank 2,000,000 log records by an engagement score
//! (lognormal, like real dwell-time data, §5.1.4) and keep the top 5%,
//! far more than the operator's memory can hold — comparing the histogram
//! algorithm against the traditional full external sort.
//!
//! ```sh
//! cargo run --release --example weblog_top_pages
//! ```

use std::time::Instant;

use histok::core::TraditionalExternalTopK;
use histok::prelude::*;
use histok::types::F64Key;
use histok::workload::Distribution;

const RECORDS: u64 = 2_000_000;
const TOP: u64 = RECORDS / 20; // the "most important" 5%
const MEM_ROWS: usize = 10_000;

fn workload() -> Workload {
    Workload::uniform(RECORDS, 2024)
        .with_distribution(Distribution::lognormal_default())
        .with_payload_bytes(32) // request id, url hash, timestamp...
}

fn drive(op: &mut dyn TopKOperator<F64Key>) -> Result<(f64, u64)> {
    for row in workload().rows() {
        op.push(row)?;
    }
    let mut n = 0u64;
    let mut worst = f64::INFINITY;
    for row in op.finish()? {
        worst = row?.key.get();
        n += 1;
    }
    Ok((worst, n))
}

fn main() -> Result<()> {
    // Top 5% by engagement => descending order.
    let spec = SortSpec::descending(TOP);
    let row_bytes = 64 + 32;
    let config = TopKConfig::builder().memory_budget(MEM_ROWS * row_bytes).build()?;

    println!("ranking {RECORDS} log records, keeping the top {TOP} (memory: ~{MEM_ROWS} rows)\n");

    let start = Instant::now();
    let mut hist = HistogramTopK::new(spec, config.clone(), MemoryBackend::new())?;
    let (worst_h, n_h) = drive(&mut hist)?;
    let t_hist = start.elapsed();

    let start = Instant::now();
    let mut trad = TraditionalExternalTopK::new(spec, config.memory_budget, MemoryBackend::new())?;
    let (worst_t, n_t) = drive(&mut trad)?;
    let t_trad = start.elapsed();

    assert_eq!((n_h, worst_h.to_bits()), (n_t, worst_t.to_bits()), "answers must agree");

    let (mh, mt) = (hist.metrics(), trad.metrics());
    println!("engagement cutoff of the top {TOP}: {worst_h:.4}");
    println!();
    println!("{:<22} {:>12} {:>12}", "", "histogram", "traditional");
    println!("{:<22} {:>12} {:>12}", "rows spilled", mh.rows_spilled(), mt.rows_spilled());
    println!("{:<22} {:>12} {:>12}", "runs written", mh.runs(), mt.runs());
    println!("{:<22} {:>11.2}s {:>11.2}s", "wall time", t_hist.as_secs_f64(), t_trad.as_secs_f64());
    println!(
        "\nthe histogram filter kept {:.1}% of the log out of secondary storage",
        (1.0 - mh.spill_fraction()) * 100.0
    );
    Ok(())
}
