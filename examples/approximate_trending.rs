//! Approximate top-k (§4.5): a trending dashboard does not care whether it
//! shows the 1,000th or the 1,050th "most important" item — it cares about
//! latency and cost. With 5% slack the operator filters earlier and
//! spills less, while the head of the list stays exact.
//!
//! ```sh
//! cargo run --release --example approximate_trending
//! ```

use histok::prelude::*;
use histok::workload::Distribution;

const EVENTS: u64 = 1_500_000;
const K: u64 = 30_000;
const MEM_ROWS: usize = 6_000;

fn run(epsilon: f64) -> Result<(usize, u64, Vec<f64>)> {
    let spec = SortSpec::descending(K); // most-engaged first
    let config = TopKConfig::builder().memory_budget(MEM_ROWS * 64).build()?;
    let mut op = ApproximateTopK::new(spec, config, MemoryBackend::new(), epsilon)?;
    for row in
        Workload::uniform(EVENTS, 8).with_distribution(Distribution::lognormal_default()).rows()
    {
        op.push(row)?;
    }
    let out: Vec<f64> = op.finish()?.map(|r| r.map(|row| row.key.get())).collect::<Result<_>>()?;
    let spilled = op.metrics().rows_spilled();
    Ok((out.len(), spilled, out))
}

fn main() -> Result<()> {
    println!("top {K} of {EVENTS} engagement events, memory ~{MEM_ROWS} rows\n");
    println!("{:>7} | {:>9} {:>12} {:>14}", "slack", "returned", "spilled", "head intact?");
    let (_, _, exact) = run(0.0)?;
    for epsilon in [0.0, 0.02, 0.05, 0.10] {
        let (returned, spilled, out) = run(epsilon)?;
        let guaranteed = ((K as f64) * (1.0 - epsilon)).ceil() as usize;
        let head_ok = out[..guaranteed.min(out.len())] == exact[..guaranteed.min(out.len())];
        assert!(head_ok, "guaranteed prefix diverged at ε={epsilon}");
        assert!(returned >= guaranteed);
        println!(
            "{:>6.0}% | {:>9} {:>12} {:>14}",
            epsilon * 100.0,
            returned,
            spilled,
            if head_ok { "yes" } else { "NO" },
        );
    }
    println!("\nslack lets the cutoff establish sooner: fewer rows reach secondary");
    println!("storage, the guaranteed head of the ranking stays exact.");
    Ok(())
}
