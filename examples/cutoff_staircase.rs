//! Visualizing the cutoff staircase: the geometric descent of the cutoff
//! key as input is consumed (the mechanism behind Table 1 and the paper's
//! scale-free behaviour). Prints an ASCII log-scale chart sampled from the
//! live operator.
//!
//! ```sh
//! cargo run --release --example cutoff_staircase
//! ```

use histok::prelude::*;

const ROWS: u64 = 1_000_000;
const K: u64 = 5_000;
const MEM_ROWS: usize = 1_000;
const SAMPLES: usize = 24;

fn main() -> Result<()> {
    let spec = SortSpec::ascending(K);
    let config = TopKConfig::builder()
        .memory_budget(MEM_ROWS * 64)
        .sizing(SizingPolicy::TargetBuckets(9)) // the paper's decile setup
        .build()?;
    let mut op = HistogramTopK::new(spec, config, MemoryBackend::new())?;

    let mut samples: Vec<(u64, Option<f64>)> = Vec::new();
    let step = ROWS / SAMPLES as u64;
    for (i, row) in Workload::uniform(ROWS, 17).rows().enumerate() {
        op.push(row)?;
        if (i as u64 + 1).is_multiple_of(step) {
            samples.push((i as u64 + 1, op.cutoff().map(|c| c.get())));
        }
    }
    let n = op.finish()?.count() as u64;
    assert_eq!(n, K);

    // Keys are the shuffled integers 1..=ROWS, so the ideal cutoff is K
    // itself and the largest possible cutoff is ROWS.
    let ideal = K as f64;
    let ceiling = ROWS as f64;
    println!("cutoff key vs input consumed (top {K} of {ROWS}, memory {MEM_ROWS} rows)");
    println!("log scale from ideal cutoff {ideal:.0} (left) to {ceiling:.0} (right)\n");
    const WIDTH: f64 = 60.0;
    for (consumed, cutoff) in &samples {
        let bar = match cutoff {
            None => "(no cutoff yet)".to_string(),
            Some(c) => {
                // Position on a log scale between the ideal cutoff and the
                // key-space ceiling.
                let frac = (c / ideal).ln() / (ceiling / ideal).ln();
                let cells = (frac.clamp(0.0, 1.0) * WIDTH) as usize;
                format!("{}o  {c:.0}", "-".repeat(cells))
            }
        };
        println!("{:>9} rows |{bar}", consumed);
    }
    println!("\neach run divides the cutoff by a near-constant factor: a geometric");
    println!("staircase — which is why doubling the input adds only ~5 runs (Table 4).");
    let m = op.metrics();
    println!("\nfinal: {} runs, {} rows spilled of {ROWS}", m.runs(), m.rows_spilled());
    Ok(())
}
