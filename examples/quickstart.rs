//! Quickstart: the histogram top-k operator on a shuffled input whose
//! requested output is larger than the operator's memory budget.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use histok::prelude::*;

fn main() -> Result<()> {
    // Top 10,000 smallest keys out of 1,000,000 shuffled keys...
    let spec = SortSpec::ascending(10_000);
    // ...with memory for only ~2,000 rows: the output cannot fit, so the
    // operator must use secondary storage.
    let config = TopKConfig::builder().memory_budget(2_000 * 64).build()?;

    let workload = Workload::uniform(1_000_000, 7);
    let mut op = HistogramTopK::new(spec, config, MemoryBackend::new())?;
    for row in workload.rows() {
        op.push(row)?;
    }

    let output: Vec<f64> =
        op.finish()?.map(|row| row.map(|r| r.key.get())).collect::<Result<_>>()?;
    assert_eq!(output.len(), 10_000);
    assert_eq!(output.first(), Some(&1.0));
    assert_eq!(output.last(), Some(&10_000.0));

    let m = op.metrics();
    println!("top {} of {} rows with memory for ~2,000:", output.len(), m.rows_in);
    println!("  eliminated at input : {:>9} rows", m.eliminated_at_input);
    println!("  eliminated at spill : {:>9} rows", m.eliminated_at_spill);
    println!("  written to storage  : {:>9} rows in {} runs", m.rows_spilled(), m.runs());
    println!("  cutoff refinements  : {:>9}", m.filter.refinements);
    println!(
        "  spilled {:.1}% of the input — a traditional external sort spills 100%",
        m.spill_fraction() * 100.0
    );
    Ok(())
}
