//! Segmented execution (§4.2): the events table is clustered by day, the
//! query orders by `(day, latency)` and wants the 5,000 fastest requests
//! overall. Because the input is already sorted on the `day` prefix, the
//! operator works one day at a time and ignores every later day once the
//! output is full — "subsequent segments can be ignored".
//!
//! ```sh
//! cargo run --release --example daily_ranking
//! ```

use histok::prelude::*;
use histok::types::F64Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DAYS: u32 = 30;
const EVENTS_PER_DAY: u64 = 100_000;
const K: u64 = 5_000;

fn main() -> Result<()> {
    let spec = SortSpec::ascending(K);
    let config = TopKConfig::builder().memory_budget(2_000 * 64).build()?;
    let mut op: SegmentedTopK<u32, F64Key> =
        SegmentedTopK::new(spec, config, MemoryBackend::new())?;

    let mut rng = StdRng::seed_from_u64(30);
    for day in 0..DAYS {
        for _ in 0..EVENTS_PER_DAY {
            let latency_ms: f64 = rng.gen_range(0.2..500.0);
            op.push(day, Row::key_only(F64Key(latency_ms)))?;
        }
    }

    let rows = op.finish()?;
    assert_eq!(rows.len() as u64, K);
    println!("top {K} fastest requests over {DAYS} days × {} events:", EVENTS_PER_DAY);
    println!("  fastest        : {:.3} ms", rows.first().expect("nonempty").key.get());
    println!("  {K}th fastest  : {:.3} ms", rows.last().expect("nonempty").key.get());
    println!("  segments seen  : {} (day 0 filled the whole output)", op.segments_seen());
    println!("  segments skipped: {} of {DAYS}", op.segments_ignored());
    println!("  rows skipped    : {} without any processing", op.rows_ignored());
    assert!(op.segments_ignored() >= u64::from(DAYS) - 2);
    Ok(())
}
