//! The performance cliff (§1, §5.2): with the pre-existing strategy,
//! execution cost jumps by an order of magnitude the moment `k` stops
//! fitting in memory — the engine switches from an in-memory priority
//! queue to externally sorting the *whole* input ("we observed an order of
//! magnitude increase in execution time when the use of secondary storage
//! is required", §5.2 on PostgreSQL). The histogram algorithm degrades
//! smoothly instead: "the drop in performance ... is proportional to the
//! size of the filtered input".
//!
//! ```sh
//! cargo run --release --example performance_cliff
//! ```

use std::time::Instant;

use histok::core::TraditionalExternalTopK;
use histok::prelude::*;
use histok::types::F64Key;

const ROWS: u64 = 1_000_000;
const MEM_ROWS: usize = 8_000;
const ROW_BYTES: usize = 64;

/// The pre-existing strategy: in-memory priority queue while `k` fits the
/// budget, full external sort otherwise (§2.3 + §2.4).
fn run_legacy(k: u64) -> Result<(f64, u64)> {
    let spec = SortSpec::ascending(k);
    let rows = Workload::uniform(ROWS, 3).rows();
    let start = Instant::now();
    let (n, spilled) = if (k as usize) * ROW_BYTES <= MEM_ROWS * ROW_BYTES {
        let mut op = InMemoryTopK::<F64Key>::new(spec)?;
        for row in rows {
            op.push(row)?;
        }
        let n = op.finish()?.count() as u64;
        (n, op.metrics().rows_spilled())
    } else {
        let mut op = TraditionalExternalTopK::<F64Key>::new(
            spec,
            MEM_ROWS * ROW_BYTES,
            MemoryBackend::new(),
        )?;
        for row in rows {
            op.push(row)?;
        }
        let n = op.finish()?.count() as u64;
        (n, op.metrics().rows_spilled())
    };
    assert_eq!(n, k);
    Ok((start.elapsed().as_secs_f64(), spilled))
}

/// The paper's adaptive operator: same code path on both sides of the
/// boundary.
fn run_histogram(k: u64) -> Result<(f64, u64)> {
    let spec = SortSpec::ascending(k);
    let config = TopKConfig::builder().memory_budget(MEM_ROWS * ROW_BYTES).build()?;
    let start = Instant::now();
    let mut op = HistogramTopK::<F64Key>::new(spec, config, MemoryBackend::new())?;
    for row in Workload::uniform(ROWS, 3).rows() {
        op.push(row)?;
    }
    let n = op.finish()?.count() as u64;
    assert_eq!(n, k);
    Ok((start.elapsed().as_secs_f64(), op.metrics().rows_spilled()))
}

fn main() -> Result<()> {
    println!(
        "sweeping k across the memory boundary (memory ~{} rows, {} input rows)\n",
        MEM_ROWS, ROWS
    );
    println!(
        "{:>9} {:>8} | {:>11} {:>12} | {:>11} {:>12}",
        "k", "fits?", "legacy time", "legacy spill", "histo time", "histo spill"
    );
    for k in [1_000u64, 4_000, 7_000, 9_000, 12_000, 24_000, 48_000] {
        let (t_legacy, s_legacy) = run_legacy(k)?;
        let (t_hist, s_hist) = run_histogram(k)?;
        println!(
            "{:>9} {:>8} | {:>10.3}s {:>12} | {:>10.3}s {:>12}",
            k,
            if (k as usize) < MEM_ROWS { "yes" } else { "NO" },
            t_legacy,
            s_legacy,
            t_hist,
            s_hist,
        );
    }
    println!("\nthe legacy strategy falls off a cliff at k ≈ memory: it suddenly spills");
    println!("all {ROWS} rows. The histogram operator's cost grows smoothly with k.");
    Ok(())
}
