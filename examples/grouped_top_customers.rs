//! Grouped top-k (§4.3): "finding the 10 million most active customers
//! from each country ... each country has its own histogram priority
//! queue, cutoff key, etc." Scaled down: the top 1,000 spenders in each of
//! 8 regions, with per-group memory far below the per-group output.
//!
//! ```sh
//! cargo run --release --example grouped_top_customers
//! ```

use histok::core::GroupedTopK;
use histok::prelude::*;
use histok::types::F64Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const REGIONS: [&str; 8] = ["amer", "emea", "apac", "latam", "nordics", "anz", "mena", "ssa"];
const CUSTOMERS_PER_REGION: u64 = 200_000;
const TOP_PER_REGION: u64 = 1_000;

fn main() -> Result<()> {
    // Rank by spend, descending; each group gets its own small budget.
    let spec = SortSpec::descending(TOP_PER_REGION);
    let config = TopKConfig::builder().memory_budget(500 * 64).build()?;
    let mut op: GroupedTopK<&'static str, F64Key> =
        GroupedTopK::new(spec, config, MemoryBackend::new())?;

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..CUSTOMERS_PER_REGION {
        for region in REGIONS {
            let spend: f64 = rng.gen_range(1.0..100_000.0);
            op.push(region, Row::key_only(F64Key(spend)))?;
        }
    }

    let metrics = op.metrics();
    let results = op.finish()?;
    println!(
        "top {TOP_PER_REGION} spenders per region, {} customers per region:\n",
        CUSTOMERS_PER_REGION
    );
    println!("{:<10} {:>12} {:>14}", "region", "#results", "spend cutoff");
    for (region, rows) in &results {
        assert_eq!(rows.len() as u64, TOP_PER_REGION);
        let cutoff = rows.last().expect("non-empty").key.get();
        // Output is sorted descending within the group.
        assert!(rows.windows(2).all(|w| w[0].key >= w[1].key));
        println!("{:<10} {:>12} {:>14.2}", region, rows.len(), cutoff);
    }
    println!(
        "\nacross all {} groups: {} input rows, {} spilled ({:.2}%), {} runs",
        results.len(),
        metrics.rows_in,
        metrics.io.rows_written,
        metrics.io.rows_written as f64 / metrics.rows_in as f64 * 100.0,
        metrics.io.runs_created,
    );
    Ok(())
}
