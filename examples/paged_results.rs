//! Result paging with `LIMIT`/`OFFSET` (§2.7, "pause-and-resume"): a UI
//! fetches a large result one page at a time; each page is a top-k query
//! with a growing offset. The histogram technique keeps every page cheap
//! even when `offset + limit` exceeds the operator's memory.
//!
//! ```sh
//! cargo run --release --example paged_results
//! ```

use histok::prelude::*;

const ROWS: u64 = 500_000;
const PAGE: u64 = 2_000;
const MEM_ROWS: usize = 3_000;

fn fetch_page(page: u64) -> Result<(Vec<f64>, u64)> {
    let spec = SortSpec::ascending(PAGE).with_offset(page * PAGE);
    let config = TopKConfig::builder().memory_budget(MEM_ROWS * 64).build()?;
    let mut op = HistogramTopK::new(spec, config, MemoryBackend::new())?;
    for row in Workload::uniform(ROWS, 99).rows() {
        op.push(row)?;
    }
    let keys: Vec<f64> = op.finish()?.map(|r| r.map(|row| row.key.get())).collect::<Result<_>>()?;
    Ok((keys, op.metrics().rows_spilled()))
}

fn main() -> Result<()> {
    println!("paging through the sorted view of {ROWS} rows, {PAGE} rows per page\n");
    let mut expected_first = 1.0;
    for page in [0u64, 1, 2, 7] {
        let (keys, spilled) = fetch_page(page)?;
        assert_eq!(keys.len() as u64, PAGE);
        // Pages are contiguous, gap-free slices of the sorted order.
        assert_eq!(keys[0], (page * PAGE + 1) as f64);
        assert!(keys.windows(2).all(|w| w[1] == w[0] + 1.0));
        println!(
            "page {page:>2}: keys {:>9.0} ..= {:>9.0}  (operator retained {} rows, spilled {spilled})",
            keys[0],
            keys[keys.len() - 1],
            (page + 1) * PAGE,
        );
        expected_first += PAGE as f64;
    }
    let _ = expected_first;
    println!("\neach page retains offset+limit rows internally and skips the offset at");
    println!("output time; the cutoff filter works on the combined count (§2.7, §4.1).");
    Ok(())
}
