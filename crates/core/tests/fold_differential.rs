//! Differential testing of in-sort duplicate folding (DESIGN.md §14):
//! dedup and SUM-aggregate queries across the full configuration grid
//! {u64, F64Key, BytesKey, KeyPair} × {asc, desc} × {filter on/off} ×
//! {batch_rows 1, 1024} × {cascade fan-in 2, 64}, against a post-hoc
//! oracle (plain full sort through the same machinery, folded
//! afterwards in test code). Outputs must be byte-identical — keys AND
//! accumulator payloads.

use histok_core::{HistogramTopK, TopKConfig, TopKOperator};
use histok_storage::MemoryBackend;
use histok_types::{encode_f64, AggregateOp, BytesKey, F64Key, KeyPair, Row, SortKey, SortSpec};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

const DISTINCT: u64 = 150;
const REPS: u64 = 6;
const K: u64 = 60;
const BUDGET: usize = 2048;

/// Shuffled (group, occurrence) pairs: every group 0..DISTINCT appears
/// REPS times, arrival order random but seeded.
fn arrivals(seed: u64) -> Vec<(u64, u64)> {
    let mut pairs: Vec<(u64, u64)> =
        (0..DISTINCT).flat_map(|v| (0..REPS).map(move |j| (v, j))).collect();
    pairs.shuffle(&mut StdRng::seed_from_u64(seed));
    pairs
}

/// Dedup inputs: all duplicates of a group share one payload, so FIRST
/// is deterministic and byte-comparison meaningful.
fn dedup_payload(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// SUM inputs: per-occurrence integer values — exact in f64 under any
/// fold order, so the accumulator bytes are deterministic.
fn sum_term(v: u64, j: u64) -> f64 {
    (v % 11 + j) as f64
}

fn group_sum(v: u64) -> f64 {
    (0..REPS).map(|j| sum_term(v, j)).sum()
}

/// Groups in output order for (ascending?) truncated to k.
fn expected_groups(ascending: bool) -> Vec<u64> {
    let mut vs: Vec<u64> = (0..DISTINCT).collect();
    if !ascending {
        vs.reverse();
    }
    vs.truncate(K as usize);
    vs
}

fn config(filter: bool, batch_rows: usize, fan_in: usize) -> TopKConfig {
    TopKConfig::builder()
        .memory_budget(BUDGET)
        .block_bytes(1024)
        .filter_enabled(filter)
        .batch_rows(batch_rows)
        .fan_in(fan_in)
        .build()
        .expect("valid grid config")
}

fn run<K2: SortKey + std::fmt::Debug>(
    spec: SortSpec,
    cfg: TopKConfig,
    rows: Vec<Row<K2>>,
) -> (Vec<(K2, Vec<u8>)>, bool) {
    let mut op = HistogramTopK::new(spec, cfg, MemoryBackend::new()).expect("operator");
    for r in rows {
        op.push(r).expect("push");
    }
    let out = op
        .finish()
        .expect("finish")
        .map(|r| {
            let r = r.expect("row");
            let payload = r.payload.to_vec();
            (r.key, payload)
        })
        .collect();
    (out, op.metrics().spilled)
}

fn grid_for_key<K2, F>(type_label: &str, make_key: F)
where
    K2: SortKey + std::fmt::Debug,
    F: Fn(u64) -> K2 + Copy,
{
    let pairs = arrivals(41);
    for ascending in [true, false] {
        let spec = if ascending { SortSpec::ascending(K) } else { SortSpec::descending(K) };
        let full = if ascending {
            SortSpec::ascending(DISTINCT * REPS)
        } else {
            SortSpec::descending(DISTINCT * REPS)
        };
        let groups = expected_groups(ascending);

        // Post-hoc oracle: plain (fold-free) full sort through the same
        // operator, deduped/summed afterwards in test code.
        let (plain, _) = run(
            full,
            config(true, 1024, 64),
            pairs.iter().map(|&(v, _)| Row::new(make_key(v), dedup_payload(v))).collect(),
        );
        assert_eq!(plain.len(), (DISTINCT * REPS) as usize, "{type_label}: oracle lost rows");
        let mut posthoc: Vec<(K2, Vec<u8>)> = Vec::new();
        for (key, payload) in plain {
            if posthoc.last().map(|(k, _)| *k == key) != Some(true) {
                posthoc.push((key, payload));
            }
        }
        posthoc.truncate(K as usize);

        let want_dedup: Vec<(K2, Vec<u8>)> =
            groups.iter().map(|&v| (make_key(v), dedup_payload(v))).collect();
        assert_eq!(posthoc, want_dedup, "{type_label} asc={ascending}: oracle disagrees");
        let want_sum: Vec<(K2, Vec<u8>)> =
            groups.iter().map(|&v| (make_key(v), encode_f64(group_sum(v)).to_vec())).collect();

        for filter in [true, false] {
            for batch_rows in [1usize, 1024] {
                for fan_in in [2usize, 64] {
                    let label = format!(
                        "{type_label} asc={ascending} filter={filter} \
                         batch={batch_rows} fan_in={fan_in}"
                    );
                    let mut cfg = config(filter, batch_rows, fan_in);
                    cfg.dedup = true;
                    let (got, spilled) = run(
                        spec,
                        cfg,
                        pairs
                            .iter()
                            .map(|&(v, _)| Row::new(make_key(v), dedup_payload(v)))
                            .collect(),
                    );
                    assert_eq!(got, want_dedup, "{label}: dedup diverged from post-hoc oracle");
                    assert!(spilled, "{label}: dedup run must exercise the external path");

                    let mut cfg = config(filter, batch_rows, fan_in);
                    cfg.aggregate = Some(AggregateOp::Sum);
                    let (got, spilled) = run(
                        spec,
                        cfg,
                        pairs
                            .iter()
                            .map(|&(v, j)| Row::new(make_key(v), encode_f64(sum_term(v, j))))
                            .collect(),
                    );
                    assert_eq!(got, want_sum, "{label}: SUM diverged from post-hoc oracle");
                    assert!(spilled, "{label}: SUM run must exercise the external path");
                }
            }
        }
    }
}

#[test]
fn fold_grid_u64() {
    grid_for_key("u64", |v| v);
}

#[test]
fn fold_grid_f64() {
    grid_for_key("F64Key", |v| F64Key(v as f64));
}

#[test]
fn fold_grid_bytes() {
    grid_for_key("BytesKey", |v| BytesKey::new(format!("{v:05}").into_bytes()));
}

#[test]
fn fold_grid_key_pair() {
    grid_for_key("KeyPair", |v| KeyPair(v / 10, v % 10));
}
