//! Differential grid: offset-value coding must be invisible in the output.
//!
//! Every {key type} × {sort order} × duplicate-heavy-workload cell runs the
//! same input twice — OVC on and OVC off — at two levels:
//!
//! 1. the bare multi-source merge ([`merge_sources_tuned`]), and
//! 2. the full [`HistogramTopK`] operator (run generation through the
//!    selection heap, cutoff prefix filtering, intermediate + final merges),
//!
//! and asserts the outputs are identical row-for-row, payloads included.
//! Payloads are unique per input row, so any difference in tie-breaking
//! among equal keys (the duplicate-heavy edge case where codes collide on
//! `Ovc::EQUAL`) shows up as a payload mismatch, not just a key mismatch.

use histok_core::{HistogramTopK, TopKConfig, TopKOperator};
use histok_sort::{merge_sources_tuned, MergeSource, MergeTuning};
use histok_storage::MemoryBackend;
use histok_types::{BytesKey, F64Key, KeyPair, Row, SortKey, SortOrder, SortSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};

const INPUT: usize = 9_000;
const K: u64 = 500;

/// Draw a duplicate-heavy key: a small domain (~40 distinct values) so ties
/// are everywhere — within runs, across runs, and at the cutoff.
trait KeyGen: SortKey {
    fn draw(rng: &mut StdRng) -> Self;
}

impl KeyGen for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.gen_range(0..40)
    }
}

impl KeyGen for F64Key {
    fn draw(rng: &mut StdRng) -> Self {
        // Mixed-sign values on a small grid.
        F64Key((rng.gen_range(0..40) as f64 - 20.0) / 4.0)
    }
}

impl KeyGen for BytesKey {
    fn draw(rng: &mut StdRng) -> Self {
        // Shared >8-byte prefixes defeat the norm-prefix fast path;
        // embedded NULs exercise the escaping in the normalized form.
        let v: u32 = rng.gen_range(0..40);
        if v.is_multiple_of(7) {
            BytesKey::new(format!("shared-prefix-bytes\0{v:02}"))
        } else {
            BytesKey::new(format!("shared-prefix-bytes-{v:02}"))
        }
    }
}

impl KeyGen for KeyPair<u64, BytesKey> {
    fn draw(rng: &mut StdRng) -> Self {
        // A tiny major key makes the minor key decide most comparisons.
        KeyPair(rng.gen_range(0..4), BytesKey::draw(rng))
    }
}

fn workload<K: KeyGen>(seed: u64) -> Vec<Row<K>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..INPUT).map(|i| Row::new(K::draw(&mut rng), format!("row-{i:05}").into_bytes())).collect()
}

fn spec_for(order: SortOrder) -> SortSpec {
    match order {
        SortOrder::Ascending => SortSpec::ascending(K),
        SortOrder::Descending => SortSpec::descending(K),
    }
}

/// Level 1: the bare merge. The input is split into many pre-sorted
/// sources; OVC-on and OVC-off merges of the same sources must agree.
fn merge_differential<K: KeyGen>(label: &str, order: SortOrder) {
    let rows = workload::<K>(0xA5A5);
    let sources = |n: usize| -> Vec<MergeSource<K>> {
        let mut parts: Vec<Vec<Row<K>>> = vec![Vec::new(); n];
        for (i, row) in rows.iter().enumerate() {
            parts[i % n].push(row.clone());
        }
        parts
            .into_iter()
            .map(|mut p| {
                p.sort_by(|a, b| order.cmp_keys(&a.key, &b.key));
                MergeSource::Memory(p.into_iter())
            })
            .collect()
    };
    for n in [2usize, 5, 16] {
        let with_ovc: Vec<Row<K>> = merge_sources_tuned(sources(n), order, &MergeTuning::default())
            .expect("ovc merge")
            .map(|r| r.expect("row"))
            .collect();
        let without: Vec<Row<K>> =
            merge_sources_tuned(sources(n), order, &MergeTuning::without_ovc())
                .expect("plain merge")
                .map(|r| r.expect("row"))
                .collect();
        assert_eq!(with_ovc.len(), without.len(), "{label} n={n}: row counts diverged");
        for (i, (a, b)) in with_ovc.iter().zip(&without).enumerate() {
            assert_eq!(a.key, b.key, "{label} n={n}: key diverged at row {i}");
            assert_eq!(a.payload, b.payload, "{label} n={n}: tie-break diverged at row {i}");
        }
    }
}

/// Level 2: the full operator, spilling through tiny memory so the sort
/// path (selection heap, cutoff filter, merges) actually runs.
fn operator_differential<K: KeyGen>(label: &str, order: SortOrder) {
    let rows = workload::<K>(0x5A5A);
    let run = |ovc: bool| -> Vec<Row<K>> {
        let cfg = TopKConfig::builder()
            .memory_budget(16 * 1024)
            .block_bytes(1024)
            .fan_in(4)
            .ovc_enabled(ovc)
            .build()
            .expect("grid config");
        let mut op =
            HistogramTopK::new(spec_for(order), cfg, MemoryBackend::new()).expect("operator");
        for row in &rows {
            op.push(row.clone()).expect("push");
        }
        op.finish().expect("finish").map(|r| r.expect("row")).collect()
    };
    let with_ovc = run(true);
    let without = run(false);
    let m = spec_for(order);
    assert_eq!(with_ovc.len(), m.retained().min(INPUT as u64) as usize, "{label}: short output");
    assert_eq!(with_ovc.len(), without.len(), "{label}: row counts diverged");
    for (i, (a, b)) in with_ovc.iter().zip(&without).enumerate() {
        assert_eq!(a.key, b.key, "{label}: key diverged at row {i}");
        assert_eq!(a.payload, b.payload, "{label}: tie-break diverged at row {i}");
    }
}

macro_rules! grid_cell {
    ($name:ident, $key:ty, $order:expr) => {
        #[test]
        fn $name() {
            let label = concat!(stringify!($key), " / ", stringify!($order));
            merge_differential::<$key>(label, $order);
            operator_differential::<$key>(label, $order);
        }
    };
}

grid_cell!(u64_ascending, u64, SortOrder::Ascending);
grid_cell!(u64_descending, u64, SortOrder::Descending);
grid_cell!(f64_ascending, F64Key, SortOrder::Ascending);
grid_cell!(f64_descending, F64Key, SortOrder::Descending);
grid_cell!(bytes_ascending, BytesKey, SortOrder::Ascending);
grid_cell!(bytes_descending, BytesKey, SortOrder::Descending);
grid_cell!(pair_ascending, KeyPair<u64, BytesKey>, SortOrder::Ascending);
grid_cell!(pair_descending, KeyPair<u64, BytesKey>, SortOrder::Descending);
