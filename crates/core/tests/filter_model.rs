//! Model-checking the cutoff filter: a deliberately naive reference
//! implementation of §3.1.2 (a sorted `Vec` of buckets, linear scans, no
//! consolidation) must agree with the production heap-based filter on
//! every observable — cutoff value, represented rows, elimination
//! decisions — for arbitrary bucket sequences.

use proptest::prelude::*;

use histok_core::{Bucket, CutoffFilter};
use histok_types::SortOrder;

/// The executable specification: keep all buckets sorted descending (for
/// an ascending query), pop the largest boundary while the rest still
/// cover k.
struct ReferenceFilter {
    k: u64,
    order: SortOrder,
    /// Buckets sorted so the *worst* boundary (output-order-last) is at
    /// the end.
    buckets: Vec<(u64, u64)>, // (boundary, count)
    sum: u64,
    cutoff: Option<u64>,
}

impl ReferenceFilter {
    fn new(k: u64, order: SortOrder) -> Self {
        ReferenceFilter { k: k.max(1), order, buckets: Vec::new(), sum: 0, cutoff: None }
    }

    fn insert(&mut self, boundary: u64, count: u64) {
        let pos = self.buckets.partition_point(|(b, _)| {
            self.order.cmp_keys(b, &boundary) != std::cmp::Ordering::Greater
        });
        self.buckets.insert(pos, (boundary, count));
        self.sum += count;
        // Pop from the worst end while the remainder still covers k.
        while let Some(&(_, worst_count)) = self.buckets.last() {
            if self.sum - worst_count >= self.k {
                self.buckets.pop();
                self.sum -= worst_count;
            } else {
                break;
            }
        }
        if self.sum >= self.k {
            self.cutoff = Some(self.buckets.last().expect("nonempty").0);
        }
    }

    fn eliminate(&self, key: u64) -> bool {
        match self.cutoff {
            Some(cut) => self.order.follows(&key, &cut),
            None => false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_filter_matches_reference_spec(
        k in 1u64..500,
        inserts in proptest::collection::vec((0u64..10_000, 1u64..50), 1..200),
        probes in proptest::collection::vec(0u64..10_000, 10),
        descending in any::<bool>(),
    ) {
        let order = if descending { SortOrder::Descending } else { SortOrder::Ascending };
        // Huge queue budget: consolidation off, so the reference applies.
        let mut real: CutoffFilter<u64> =
            CutoffFilter::new(k, order).with_memory_budget(usize::MAX / 2);
        let mut reference = ReferenceFilter::new(k, order);

        for (i, &(b, count)) in inserts.iter().enumerate() {
            // Unique boundaries: the §3.1.2 pop rule is deterministic only
            // up to ties (equal boundaries may pop in any order), so the
            // model check pins a tie-free state space.
            let boundary = b * 200 + i as u64;
            // The real filter requires input filtering upstream: skip
            // boundaries that would already be eliminated, as the operator
            // does, keeping both models in the reachable state space.
            if real.eliminate(&boundary) {
                prop_assert!(reference.eliminate(boundary), "elimination disagreement");
                continue;
            }
            prop_assert!(!reference.eliminate(boundary));
            real.insert_bucket(Bucket::new(boundary, count));
            reference.insert(boundary, count);

            prop_assert_eq!(real.cutoff().copied(), reference.cutoff,
                "cutoff diverged after inserting ({}, {})", boundary, count);
            prop_assert_eq!(real.represented_rows(), reference.sum);
        }
        let probes: Vec<u64> = probes.iter().map(|&p| p * 200).collect();

        for &probe in probes.iter() {
            prop_assert_eq!(real.eliminate(&probe), reference.eliminate(probe),
                "probe {} disagreed", probe);
        }
    }

    #[test]
    fn consolidation_never_loosens_the_reference_cutoff(
        k in 1u64..200,
        inserts in proptest::collection::vec((0u64..10_000, 1u64..20), 1..150),
    ) {
        // With a tiny queue budget the real filter consolidates; its cutoff
        // may lag the reference (less resolution) but must never be
        // *sharper* than correct: every key the consolidated filter
        // eliminates must also be eliminated by the exact reference.
        let mut tight: CutoffFilter<u64> =
            CutoffFilter::new(k, SortOrder::Ascending).with_memory_budget(128);
        let mut reference = ReferenceFilter::new(k, SortOrder::Ascending);
        for &(boundary, count) in &inserts {
            if tight.eliminate(&boundary) {
                continue;
            }
            tight.insert_bucket(Bucket::new(boundary, count));
            if !reference.eliminate(boundary) {
                reference.insert(boundary, count);
            }
            if let Some(cut) = tight.cutoff() {
                // Consolidated cutoff must be ≥ the exact cutoff (ascending):
                // eliminating anything the exact filter would keep is a bug.
                let exact = reference.cutoff.expect("real established ⇒ reference established");
                prop_assert!(*cut >= exact, "consolidated cutoff {} sharper than exact {}", cut, exact);
            }
        }
    }
}
