//! Differential grid: the overlapped-I/O layer must be invisible in the
//! output.
//!
//! Every {key type} × {sort order} × {filter on/off} cell runs the same
//! input through [`HistogramTopK`] twice — once with the spill pipeline and
//! merge read-ahead enabled (the default), once fully synchronous — and
//! asserts byte-identical output. Payloads are unique per input row, so a
//! divergence in tie-breaking, block framing, or prefetch ordering shows up
//! as a payload mismatch, not just a key mismatch. Tiny memory and block
//! sizes force spilling, multi-block runs and real merge fan-in, so the
//! pipeline and prefetch threads genuinely run in every cell.

use histok_core::{HistogramTopK, TopKConfig, TopKOperator};
use histok_storage::MemoryBackend;
use histok_types::{BytesKey, Row, SortKey, SortOrder, SortSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};

const INPUT: usize = 9_000;
const K: u64 = 500;

/// Duplicate-heavy keys (~40 distinct values): ties at block boundaries
/// and at the cutoff are exactly where ordering bugs would hide.
trait KeyGen: SortKey {
    fn draw(rng: &mut StdRng) -> Self;
}

impl KeyGen for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.gen_range(0..40)
    }
}

impl KeyGen for BytesKey {
    fn draw(rng: &mut StdRng) -> Self {
        let v: u32 = rng.gen_range(0..40);
        BytesKey::new(format!("shared-prefix-bytes-{v:02}"))
    }
}

fn workload<K: KeyGen>(seed: u64) -> Vec<Row<K>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..INPUT).map(|i| Row::new(K::draw(&mut rng), format!("row-{i:05}").into_bytes())).collect()
}

fn spec_for(order: SortOrder) -> SortSpec {
    match order {
        SortOrder::Ascending => SortSpec::ascending(K),
        SortOrder::Descending => SortSpec::descending(K),
    }
}

fn overlap_differential<K: KeyGen>(label: &str, order: SortOrder, filter: bool) {
    let rows = workload::<K>(0xC3C3);
    let run = |overlap: bool| -> Vec<Row<K>> {
        let cfg = TopKConfig::builder()
            .memory_budget(16 * 1024)
            .block_bytes(512)
            .fan_in(4)
            .filter_enabled(filter)
            .spill_pipeline(overlap)
            .readahead_blocks(if overlap { 3 } else { 0 })
            .build()
            .expect("grid config");
        let mut op =
            HistogramTopK::new(spec_for(order), cfg, MemoryBackend::new()).expect("operator");
        for row in &rows {
            op.push(row.clone()).expect("push");
        }
        op.finish().expect("finish").map(|r| r.expect("row")).collect()
    };
    let overlapped = run(true);
    let synchronous = run(false);
    assert_eq!(overlapped.len(), K as usize, "{label}: short output");
    assert_eq!(overlapped.len(), synchronous.len(), "{label}: row counts diverged");
    for (i, (a, b)) in overlapped.iter().zip(&synchronous).enumerate() {
        assert_eq!(a.key, b.key, "{label}: key diverged at row {i}");
        assert_eq!(a.payload, b.payload, "{label}: tie-break diverged at row {i}");
    }
}

macro_rules! grid_cell {
    ($name:ident, $key:ty, $order:expr, $filter:expr) => {
        #[test]
        fn $name() {
            let label = concat!(
                stringify!($key),
                " / ",
                stringify!($order),
                " / filter=",
                stringify!($filter)
            );
            overlap_differential::<$key>(label, $order, $filter);
        }
    };
}

grid_cell!(u64_ascending_filtered, u64, SortOrder::Ascending, true);
grid_cell!(u64_ascending_unfiltered, u64, SortOrder::Ascending, false);
grid_cell!(u64_descending_filtered, u64, SortOrder::Descending, true);
grid_cell!(u64_descending_unfiltered, u64, SortOrder::Descending, false);
grid_cell!(bytes_ascending_filtered, BytesKey, SortOrder::Ascending, true);
grid_cell!(bytes_ascending_unfiltered, BytesKey, SortOrder::Ascending, false);
grid_cell!(bytes_descending_filtered, BytesKey, SortOrder::Descending, true);
grid_cell!(bytes_descending_unfiltered, BytesKey, SortOrder::Descending, false);
