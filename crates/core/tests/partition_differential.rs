//! Differential grid: the range-partitioned parallel merge must be
//! invisible in the output.
//!
//! Every {key type} × {sort order} × {filter on/off} cell runs the same
//! input through [`HistogramTopK`] three times — serially
//! (`merge_threads = 1`) and partitioned with P ∈ {2, 4} — and asserts
//! byte-identical output. Payloads are unique per input row, so a
//! divergence in splitter placement, per-partition tie-breaking, or
//! output re-sequencing shows up as a payload mismatch, not just a key
//! mismatch. Keys are duplicate-heavy (~40 distinct values over 9 000
//! rows), so runs of equal keys straddle the partition splitters — the
//! exact case where a closed/closed range overlap would double-count or
//! drop rows.

use histok_core::{HistogramTopK, TopKConfig, TopKOperator};
use histok_storage::MemoryBackend;
use histok_types::{BytesKey, F64Key, Row, SortKey, SortOrder, SortSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};

const INPUT: usize = 9_000;
const K: u64 = 500;

/// Duplicate-heavy keys (~40 distinct values): ties at block boundaries,
/// at the cutoff and across partition splitters are exactly where
/// ordering bugs would hide.
trait KeyGen: SortKey {
    fn draw(rng: &mut StdRng) -> Self;
}

impl KeyGen for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.gen_range(0..40)
    }
}

impl KeyGen for F64Key {
    fn draw(rng: &mut StdRng) -> Self {
        let v: u32 = rng.gen_range(0..40);
        F64Key(f64::from(v) * 2.5 - 37.5)
    }
}

impl KeyGen for BytesKey {
    fn draw(rng: &mut StdRng) -> Self {
        let v: u32 = rng.gen_range(0..40);
        BytesKey::new(format!("shared-prefix-bytes-{v:02}"))
    }
}

fn workload<K: KeyGen>(seed: u64) -> Vec<Row<K>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..INPUT).map(|i| Row::new(K::draw(&mut rng), format!("row-{i:05}").into_bytes())).collect()
}

fn spec_for(order: SortOrder) -> SortSpec {
    match order {
        SortOrder::Ascending => SortSpec::ascending(K),
        SortOrder::Descending => SortSpec::descending(K),
    }
}

fn run_cell<K: KeyGen>(
    rows: &[Row<K>],
    order: SortOrder,
    filter: bool,
    threads: usize,
) -> (Vec<Row<K>>, u64) {
    let cfg = TopKConfig::builder()
        .memory_budget(16 * 1024)
        .block_bytes(512)
        .fan_in(4)
        .filter_enabled(filter)
        .merge_threads(threads)
        .partition_min_rows(1)
        .build()
        .expect("grid config");
    let mut op = HistogramTopK::new(spec_for(order), cfg, MemoryBackend::new()).expect("operator");
    for row in rows {
        op.push(row.clone()).expect("push");
    }
    let out: Vec<Row<K>> = op.finish().expect("finish").map(|r| r.expect("row")).collect();
    let partitions = op.metrics().merge_partitions;
    (out, partitions)
}

fn partition_differential<K: KeyGen>(label: &str, order: SortOrder, filter: bool) {
    let rows = workload::<K>(0xD4D4);
    let (serial, p1) = run_cell(&rows, order, filter, 1);
    assert_eq!(serial.len(), K as usize, "{label}: short output");
    assert_eq!(p1, 1, "{label}: serial run reported partitions");
    for threads in [2usize, 4] {
        let (parallel, partitions) = run_cell(&rows, order, filter, threads);
        if !filter {
            // Without the cutoff clip the whole duplicate-heavy key space
            // is merged; the planner must find at least two ranges.
            assert!(
                partitions >= 2,
                "{label}: P={threads} never went parallel ({partitions} partitions)"
            );
        }
        assert_eq!(serial.len(), parallel.len(), "{label}: P={threads} row counts diverged");
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.key, b.key, "{label}: P={threads} key diverged at row {i}");
            assert_eq!(a.payload, b.payload, "{label}: P={threads} tie-break diverged at row {i}");
        }
    }
}

macro_rules! grid_cell {
    ($name:ident, $key:ty, $order:expr, $filter:expr) => {
        #[test]
        fn $name() {
            let label = concat!(
                stringify!($key),
                " / ",
                stringify!($order),
                " / filter=",
                stringify!($filter)
            );
            partition_differential::<$key>(label, $order, $filter);
        }
    };
}

grid_cell!(u64_ascending_filtered, u64, SortOrder::Ascending, true);
grid_cell!(u64_ascending_unfiltered, u64, SortOrder::Ascending, false);
grid_cell!(u64_descending_filtered, u64, SortOrder::Descending, true);
grid_cell!(u64_descending_unfiltered, u64, SortOrder::Descending, false);
grid_cell!(f64_ascending_filtered, F64Key, SortOrder::Ascending, true);
grid_cell!(f64_ascending_unfiltered, F64Key, SortOrder::Ascending, false);
grid_cell!(f64_descending_filtered, F64Key, SortOrder::Descending, true);
grid_cell!(f64_descending_unfiltered, F64Key, SortOrder::Descending, false);
grid_cell!(bytes_ascending_filtered, BytesKey, SortOrder::Ascending, true);
grid_cell!(bytes_ascending_unfiltered, BytesKey, SortOrder::Ascending, false);
grid_cell!(bytes_descending_filtered, BytesKey, SortOrder::Descending, true);
grid_cell!(bytes_descending_unfiltered, BytesKey, SortOrder::Descending, false);
