//! Differential testing: `HistogramTopK` vs `ParallelTopK` vs a sorted
//! in-memory oracle, across the full configuration grid
//! {asc, desc} × {filter on/off} × {approx_slack 0, 0.1} × both residue
//! policies, over seeded (deterministic) shuffled inputs with duplicate
//! keys.
//!
//! Exact configurations must match the oracle row-for-row. Approximate
//! configurations (ε > 0) must still produce the exact best ⌈k·(1−ε)⌉
//! rows as a prefix (§4.5), in order, with at most `k` rows total.

use histok_core::{HistogramTopK, ParallelTopK, TopKConfig, TopKOperator};
use histok_sort::run_gen::ResiduePolicy;
use histok_storage::MemoryBackend;
use histok_types::{Row, SortOrder, SortSpec};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

const INPUT: u64 = 12_000;
const K: u64 = 600;
const MEM_ROWS: usize = 120;
const THREADS: usize = 3;
const SLACK: f64 = 0.1;

/// Shuffled keys with duplicates (each value appears ~3 times), so ties
/// cross run and worker boundaries.
fn workload(seed: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..INPUT).map(|i| i / 3).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    keys
}

fn oracle(keys: &[u64], order: SortOrder, k: usize) -> Vec<u64> {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    if order == SortOrder::Descending {
        sorted.reverse();
    }
    sorted.truncate(k);
    sorted
}

fn config(filter: bool, slack: f64, residue: ResiduePolicy) -> TopKConfig {
    TopKConfig::builder()
        .memory_budget(MEM_ROWS * 60)
        .block_bytes(1024)
        .filter_enabled(filter)
        .approx_slack(slack)
        .residue(residue)
        .build()
        .expect("valid grid config")
}

fn drain(mut op: impl TopKOperator<u64>, keys: &[u64]) -> Vec<u64> {
    for &k in keys {
        op.push(Row::key_only(k)).expect("push");
    }
    op.finish().expect("finish").map(|r| r.expect("row").key).collect()
}

/// Exact runs must equal the oracle; approximate runs must produce the
/// guaranteed prefix exactly and never exceed `k` rows.
fn check(label: &str, got: &[u64], expected: &[u64], order: SortOrder, slack: f64) {
    if slack == 0.0 {
        assert_eq!(got, expected, "{label}: exact output diverged from the oracle");
        return;
    }
    let guaranteed = ((K as f64) * (1.0 - slack)).ceil() as usize;
    assert!(
        got.len() >= guaranteed && got.len() <= K as usize,
        "{label}: {} rows outside [{guaranteed}, {K}]",
        got.len()
    );
    assert_eq!(
        &got[..guaranteed],
        &expected[..guaranteed],
        "{label}: guaranteed ⌈k(1−ε)⌉-prefix diverged from the oracle"
    );
    // Best-effort tail: still in output order.
    for w in got.windows(2) {
        let ordered = match order {
            SortOrder::Ascending => w[0] <= w[1],
            SortOrder::Descending => w[0] >= w[1],
        };
        assert!(ordered, "{label}: output out of order");
    }
}

#[test]
fn histogram_and_parallel_match_the_oracle_across_the_grid() {
    for seed in [11u64, 23] {
        let keys = workload(seed);
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let spec = match order {
                SortOrder::Ascending => SortSpec::ascending(K),
                SortOrder::Descending => SortSpec::descending(K),
            };
            let expected = oracle(&keys, order, K as usize);
            for filter in [true, false] {
                for slack in [0.0, SLACK] {
                    for residue in [ResiduePolicy::SpillToRuns, ResiduePolicy::KeepInMemory] {
                        let label = format!(
                            "seed={seed} order={order:?} filter={filter} \
                             slack={slack} residue={residue:?}"
                        );
                        let cfg = config(filter, slack, residue);
                        let hist = drain(
                            HistogramTopK::new(spec, cfg.clone(), MemoryBackend::new())
                                .expect("histogram operator"),
                            &keys,
                        );
                        check(&format!("histogram {label}"), &hist, &expected, order, slack);
                        let par = drain(
                            ParallelTopK::new(spec, cfg, MemoryBackend::new(), THREADS)
                                .expect("parallel operator"),
                            &keys,
                        );
                        check(&format!("parallel {label}"), &par, &expected, order, slack);
                        if slack == 0.0 {
                            assert_eq!(hist, par, "histogram vs parallel diverged ({label})");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn filter_disabled_still_exact_with_duplicate_heavy_input() {
    // All-duplicates input: every key equal, cutoff can never sharpen.
    let keys = vec![7u64; 3_000];
    let spec = SortSpec::ascending(100);
    for residue in [ResiduePolicy::SpillToRuns, ResiduePolicy::KeepInMemory] {
        let cfg = config(true, 0.0, residue);
        let hist =
            drain(HistogramTopK::new(spec, cfg.clone(), MemoryBackend::new()).unwrap(), &keys);
        let par =
            drain(ParallelTopK::new(spec, cfg, MemoryBackend::new(), THREADS).unwrap(), &keys);
        assert_eq!(hist, vec![7u64; 100]);
        assert_eq!(par, vec![7u64; 100]);
    }
}
