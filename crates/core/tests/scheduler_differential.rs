//! Differential grid: the shared I/O worker pool must be invisible in the
//! output.
//!
//! Every {key type} × {sort order} × {filter on/off} cell runs the same
//! input through [`HistogramTopK`] three times — `io_threads = 0` (legacy
//! one thread per open run / merge source), `1` (maximum contention: every
//! spill and read-ahead job serialized through one worker) and `4` (the
//! default pool) — and asserts byte-identical output. Payloads are unique
//! per input row, so a divergence in tie-breaking, block framing, or job
//! scheduling shows up as a payload mismatch, not just a key mismatch.
//! Tiny memory and block sizes force spilling, multi-block runs and real
//! merge fan-in, so the pool genuinely carries jobs in every cell.

use histok_core::{HistogramTopK, TopKConfig, TopKOperator};
use histok_storage::MemoryBackend;
use histok_types::{BytesKey, Row, SortKey, SortOrder, SortSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};

const INPUT: usize = 9_000;
const K: u64 = 500;

/// Duplicate-heavy keys (~40 distinct values): ties at block boundaries
/// and at the cutoff are exactly where ordering bugs would hide.
trait KeyGen: SortKey {
    fn draw(rng: &mut StdRng) -> Self;
}

impl KeyGen for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.gen_range(0..40)
    }
}

impl KeyGen for BytesKey {
    fn draw(rng: &mut StdRng) -> Self {
        let v: u32 = rng.gen_range(0..40);
        BytesKey::new(format!("shared-prefix-bytes-{v:02}"))
    }
}

fn workload<K: KeyGen>(seed: u64) -> Vec<Row<K>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..INPUT).map(|i| Row::new(K::draw(&mut rng), format!("row-{i:05}").into_bytes())).collect()
}

fn spec_for(order: SortOrder) -> SortSpec {
    match order {
        SortOrder::Ascending => SortSpec::ascending(K),
        SortOrder::Descending => SortSpec::descending(K),
    }
}

fn scheduler_differential<K: KeyGen>(label: &str, order: SortOrder, filter: bool) {
    let rows = workload::<K>(0x10DD);
    let run = |io_threads: usize| -> Vec<Row<K>> {
        let cfg = TopKConfig::builder()
            .memory_budget(16 * 1024)
            .block_bytes(512)
            .fan_in(4)
            .filter_enabled(filter)
            .readahead_blocks(3)
            .io_threads(io_threads)
            .build()
            .expect("grid config");
        let mut op =
            HistogramTopK::new(spec_for(order), cfg, MemoryBackend::new()).expect("operator");
        for row in &rows {
            op.push(row.clone()).expect("push");
        }
        op.finish().expect("finish").map(|r| r.expect("row")).collect()
    };
    let legacy = run(0);
    assert_eq!(legacy.len(), K as usize, "{label}: short output");
    for threads in [1usize, 4] {
        let pooled = run(threads);
        assert_eq!(
            legacy.len(),
            pooled.len(),
            "{label}: row counts diverged at io_threads={threads}"
        );
        for (i, (a, b)) in legacy.iter().zip(&pooled).enumerate() {
            assert_eq!(a.key, b.key, "{label}: key diverged at row {i} (io_threads={threads})");
            assert_eq!(
                a.payload, b.payload,
                "{label}: tie-break diverged at row {i} (io_threads={threads})"
            );
        }
    }
}

macro_rules! grid_cell {
    ($name:ident, $key:ty, $order:expr, $filter:expr) => {
        #[test]
        fn $name() {
            let label = concat!(
                stringify!($key),
                " / ",
                stringify!($order),
                " / filter=",
                stringify!($filter)
            );
            scheduler_differential::<$key>(label, $order, $filter);
        }
    };
}

grid_cell!(u64_ascending_filtered, u64, SortOrder::Ascending, true);
grid_cell!(u64_ascending_unfiltered, u64, SortOrder::Ascending, false);
grid_cell!(u64_descending_filtered, u64, SortOrder::Descending, true);
grid_cell!(u64_descending_unfiltered, u64, SortOrder::Descending, false);
grid_cell!(bytes_ascending_filtered, BytesKey, SortOrder::Ascending, true);
grid_cell!(bytes_ascending_unfiltered, BytesKey, SortOrder::Ascending, false);
grid_cell!(bytes_descending_filtered, BytesKey, SortOrder::Descending, true);
grid_cell!(bytes_descending_unfiltered, BytesKey, SortOrder::Descending, false);
