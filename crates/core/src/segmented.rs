//! Segmented execution for partially sorted inputs (§4.2).
//!
//! When the input is already sorted on a *prefix* of the `ORDER BY` clause
//! (e.g. the table is clustered by day and the query orders by
//! `day, score`), "we can perform a top-k operation once for each distinct
//! value of the prefix ... the sort proceeds segment by segment and
//! ignores subsequent segments once it has produced k rows." Early
//! segments are needed in their entirety; the histogram optimizations
//! apply to the last relevant segment.

use std::sync::Arc;

use histok_storage::StorageBackend;
use histok_types::{Error, Result, Row, SortKey, SortSpec};

use crate::config::TopKConfig;
use crate::metrics::OperatorMetrics;
use crate::topk::{HistogramTopK, TopKOperator};

/// Top-k over an input sorted by a segment prefix, unsorted within each
/// segment. Rows arrive as `(segment, row)` with non-decreasing segments.
pub struct SegmentedTopK<S, K: SortKey> {
    spec: SortSpec,
    config: TopKConfig,
    backend: Arc<dyn StorageBackend>,
    /// Output rows from completed segments (already in final order).
    produced: Vec<Row<K>>,
    current: Option<(S, HistogramTopK<K>)>,
    /// Set once `offset + limit` rows exist: all later segments are
    /// ignored without any processing.
    satisfied: bool,
    rows_in: u64,
    rows_ignored: u64,
    segments_seen: u64,
    segments_ignored: u64,
    /// Last segment counted as ignored (avoids double counting).
    last_ignored: Option<S>,
    /// Aggregate of every sealed segment's operator metrics.
    completed: OperatorMetrics,
    finished: bool,
}

impl<S, K> SegmentedTopK<S, K>
where
    S: Ord + Clone + Send,
    K: SortKey,
{
    /// Creates the operator. `config` budgets apply to one segment at a
    /// time (segments run sequentially).
    pub fn new(
        spec: SortSpec,
        config: TopKConfig,
        backend: impl StorageBackend + 'static,
    ) -> Result<Self> {
        spec.validate()?;
        config.validate()?;
        // One shared I/O pool across all segments' sub-operators instead
        // of a fresh pool per segment.
        let config = config.with_shared_io_scheduler();
        Ok(SegmentedTopK {
            spec,
            config,
            backend: Arc::new(backend),
            produced: Vec::new(),
            current: None,
            satisfied: false,
            rows_in: 0,
            rows_ignored: 0,
            segments_seen: 0,
            segments_ignored: 0,
            last_ignored: None,
            completed: OperatorMetrics::default(),
            finished: false,
        })
    }

    /// Rows still needed after the completed segments.
    fn remaining(&self) -> u64 {
        self.spec.retained().saturating_sub(self.produced.len() as u64)
    }

    /// Seals the active segment and collects its output.
    fn close_current(&mut self) -> Result<()> {
        if let Some((_, mut op)) = self.current.take() {
            for row in op.finish()? {
                self.produced.push(row?);
            }
            // The loop dropped the stream, so the segment's final-merge
            // phase is fully booked before this snapshot.
            self.completed = self.completed.merged(&op.metrics());
            if self.remaining() == 0 {
                self.satisfied = true;
            }
        }
        Ok(())
    }

    fn open_segment(&mut self, segment: S) -> Result<&mut HistogramTopK<K>> {
        // Each segment only needs to contribute what is still missing.
        let mut spec = self.spec;
        spec.offset = 0;
        spec.limit = self.remaining();
        let op = HistogramTopK::with_arc(spec, self.config.clone(), self.backend.clone())?;
        self.current = Some((segment, op));
        self.segments_seen += 1;
        Ok(&mut self.current.as_mut().expect("just set").1)
    }

    /// Offers one row. `segment` values must be non-decreasing (the input
    /// is sorted on the prefix).
    pub fn push(&mut self, segment: S, row: Row<K>) -> Result<()> {
        if self.finished {
            return Err(Error::InvalidConfig("push after finish".into()));
        }
        self.rows_in += 1;
        if self.satisfied {
            // §4.2: "subsequent segments can be ignored". Count each new
            // segment the first time one of its rows arrives.
            if self.last_ignored.as_ref() != Some(&segment) {
                self.segments_ignored += 1;
                self.last_ignored = Some(segment);
            }
            self.rows_ignored += 1;
            return Ok(());
        }
        let needs_new = match &self.current {
            Some((s, _)) => match s.cmp(&segment) {
                std::cmp::Ordering::Equal => false,
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => {
                    return Err(Error::InvalidConfig(
                        "segment values must be non-decreasing (input not prefix-sorted)".into(),
                    ))
                }
            },
            None => true,
        };
        if needs_new {
            self.close_current()?;
            if self.satisfied {
                self.segments_ignored += 1;
                self.last_ignored = Some(segment);
                self.rows_ignored += 1;
                return Ok(());
            }
            self.open_segment(segment)?;
        }
        self.current.as_mut().expect("segment open").1.push(row)
    }

    /// Ends the input and returns the top rows across segments, in
    /// `(segment, key)` order, with the offset applied.
    pub fn finish(&mut self) -> Result<Vec<Row<K>>> {
        if self.finished {
            return Err(Error::InvalidConfig("finish called twice".into()));
        }
        self.finished = true;
        self.close_current()?;
        let mut rows = std::mem::take(&mut self.produced);
        let offset = self.spec.offset as usize;
        if offset > 0 {
            rows.drain(..offset.min(rows.len()));
        }
        rows.truncate(self.spec.limit as usize);
        Ok(rows)
    }

    /// Segments actually processed.
    pub fn segments_seen(&self) -> u64 {
        self.segments_seen
    }

    /// Segments that were skipped entirely once the output was satisfied.
    pub fn segments_ignored(&self) -> u64 {
        self.segments_ignored
    }

    /// Rows that were ignored without any processing.
    pub fn rows_ignored(&self) -> u64 {
        self.rows_ignored
    }

    /// Aggregate over every sealed segment plus the active one. Segments
    /// run one at a time, so peak memory is the max across segments; rows
    /// ignored after satisfaction count as input-time eliminations.
    pub fn metrics(&self) -> OperatorMetrics {
        let mut total = self.completed.clone();
        if let Some((_, op)) = &self.current {
            total = total.merged(&op.metrics());
        }
        total.rows_in = self.rows_in;
        total.eliminated_at_input = total.eliminated_at_input.saturating_add(self.rows_ignored);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    fn config() -> TopKConfig {
        TopKConfig::builder().memory_budget(64 * 60).block_bytes(512).build().unwrap()
    }

    /// Input: segments 0..s, each with `n` shuffled keys; global order is
    /// (segment, key).
    fn segmented_input(segments: u64, n: u64, seed: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for s in 0..segments {
            let mut keys: Vec<u64> = (0..n).collect();
            keys.shuffle(&mut rng);
            out.extend(keys.into_iter().map(|k| (s, k)));
        }
        out
    }

    fn oracle(input: &[(u64, u64)], k: usize) -> Vec<(u64, u64)> {
        let mut all = input.to_vec();
        all.sort_unstable();
        all.truncate(k);
        all
    }

    #[test]
    fn matches_lexicographic_oracle() {
        let input = segmented_input(5, 300, 1);
        let mut op: SegmentedTopK<u64, u64> =
            SegmentedTopK::new(SortSpec::ascending(700), config(), MemoryBackend::new()).unwrap();
        for &(s, k) in &input {
            op.push(s, Row::key_only(k)).unwrap();
        }
        let got: Vec<u64> = op.finish().unwrap().into_iter().map(|r| r.key).collect();
        let expected: Vec<u64> = oracle(&input, 700).into_iter().map(|(_, k)| k).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn metrics_aggregate_across_sealed_segments() {
        // Budget of 60 rows vs 300-row segments: every processed segment
        // spills, and the aggregate must carry the per-segment I/O,
        // latency, and phase time that used to be discarded.
        let input = segmented_input(3, 300, 4);
        let mut op: SegmentedTopK<u64, u64> =
            SegmentedTopK::new(SortSpec::ascending(700), config(), MemoryBackend::new()).unwrap();
        for &(s, k) in &input {
            op.push(s, Row::key_only(k)).unwrap();
        }
        let _ = op.finish().unwrap();
        let m = op.metrics();
        assert_eq!(m.rows_in, 900);
        assert!(m.spilled);
        assert!(m.io.rows_written > 0, "spill writes missing from aggregate");
        assert!(m.io.rows_read > 0, "merge reads missing from aggregate");
        assert_eq!(m.io.write_latency.count, m.io.write_ops);
        assert!(m.phases.run_generation_ns > 0);
        assert!(m.phases.final_merge_ns > 0, "final merge time missing from aggregate");
        assert!(m.peak_memory_bytes > 0);
    }

    #[test]
    fn later_segments_are_ignored_without_processing() {
        let input = segmented_input(10, 500, 2);
        let mut op: SegmentedTopK<u64, u64> =
            SegmentedTopK::new(SortSpec::ascending(800), config(), MemoryBackend::new()).unwrap();
        for &(s, k) in &input {
            op.push(s, Row::key_only(k)).unwrap();
        }
        let got = op.finish().unwrap();
        assert_eq!(got.len(), 800);
        // 800 rows are satisfied by segments 0 and 1; segments 2..10 are
        // ignored outright.
        assert!(op.segments_ignored() >= 7, "ignored {}", op.segments_ignored());
        assert!(op.rows_ignored() >= 7 * 500, "ignored {} rows", op.rows_ignored());
    }

    #[test]
    fn single_segment_behaves_like_plain_topk() {
        let input = segmented_input(1, 1_000, 3);
        let mut op: SegmentedTopK<u64, u64> =
            SegmentedTopK::new(SortSpec::ascending(50), config(), MemoryBackend::new()).unwrap();
        for &(s, k) in &input {
            op.push(s, Row::key_only(k)).unwrap();
        }
        let got: Vec<u64> = op.finish().unwrap().into_iter().map(|r| r.key).collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn decreasing_segments_rejected() {
        let mut op: SegmentedTopK<u64, u64> =
            SegmentedTopK::new(SortSpec::ascending(5), config(), MemoryBackend::new()).unwrap();
        op.push(3, Row::key_only(1)).unwrap();
        assert!(op.push(2, Row::key_only(1)).is_err());
    }

    #[test]
    fn offset_spans_segment_boundaries() {
        let input = segmented_input(3, 100, 4);
        let spec = SortSpec::ascending(50).with_offset(150);
        let mut op: SegmentedTopK<u64, u64> =
            SegmentedTopK::new(spec, config(), MemoryBackend::new()).unwrap();
        for &(s, k) in &input {
            op.push(s, Row::key_only(k)).unwrap();
        }
        let got: Vec<u64> = op.finish().unwrap().into_iter().map(|r| r.key).collect();
        // Global ranks 150..200: segment 1 keys 50..100.
        assert_eq!(got, (50..100).collect::<Vec<_>>());
    }

    #[test]
    fn partial_last_segment() {
        // k exceeds the whole input.
        let input = segmented_input(2, 30, 5);
        let mut op: SegmentedTopK<u64, u64> =
            SegmentedTopK::new(SortSpec::ascending(500), config(), MemoryBackend::new()).unwrap();
        for &(s, k) in &input {
            op.push(s, Row::key_only(k)).unwrap();
        }
        let got = op.finish().unwrap();
        assert_eq!(got.len(), 60);
    }
}
