//! Offset fast-skipping (§4.1).
//!
//! "Histograms can also speed up run generation and merging in the
//! presence of an offset clause ... The combined histogram from all runs
//! can determine the highest key value with a rank lower than the offset;
//! this is the key value where the merge logic should start."
//!
//! Our runs are not b-trees, but every [`RunMeta`] carries a per-block
//! index (row count + last key per block), which supports the same idea at
//! block granularity:
//!
//! 1. pick the largest threshold key `T` such that the rows *provably* at
//!    or before `T` across all merge inputs number at most `offset`
//!    (counting, per run, every block whose last key sorts at or before
//!    `T` — all of those rows are `≤ T`);
//! 2. per run, skip those whole blocks without decoding them, then pop
//!    individual rows `≤ T` from the straddling block;
//! 3. let the merge skip the remaining `offset − skipped` rows normally.
//!
//! Every skipped row has rank ≤ (total rows ≤ T) ≤ offset, so correctness
//! is unconditional; the win is that whole blocks are skipped without
//! being read, decoded or CRC-checked.

use histok_sort::MergeSource;
use histok_storage::{RunCatalog, RunMeta};
use histok_types::{Result, Row, SortKey, SortOrder};

/// Outcome of the fast-skip planning: merge sources positioned after the
/// skipped prefix, and how many rows were skipped.
pub struct SkippedSources<K: SortKey> {
    /// The positioned merge inputs.
    pub sources: Vec<MergeSource<K>>,
    /// Rows already skipped (to be deducted from the offset).
    pub skipped: u64,
}

/// Chooses the threshold key `T` (see module docs): the largest block
/// boundary such that an **upper bound** on the rows sorting at or before
/// `T` across all inputs stays within `offset`. The upper bound charges,
/// per run, every block whose last key is ≤ `T` in full **plus** the whole
/// straddling block (its rows may or may not be ≤ `T` — they must be
/// assumed to be), and counts residue rows exactly. The bound is monotone
/// in `T`, so a single sweep over the sorted boundaries finds the best
/// threshold.
fn choose_threshold<K: SortKey>(
    runs: &[RunMeta<K>],
    residues: &[Vec<Row<K>>],
    offset: u64,
    order: SortOrder,
) -> Option<K> {
    // Per-run block cursor: blocks already fully below T, and the current
    // straddle block.
    struct RunState {
        rows: Vec<u64>,
        next: usize, // index of the current straddle block
        full: u64,
    }
    let mut states: Vec<RunState> = runs
        .iter()
        .map(|run| RunState {
            rows: run.blocks.iter().map(|b| u64::from(b.rows)).collect(),
            next: 0,
            full: 0,
        })
        .collect();

    // Candidates: every block boundary, tagged with its run and position.
    let mut candidates: Vec<(&K, usize)> = Vec::new();
    for (r, run) in runs.iter().enumerate() {
        for block in &run.blocks {
            candidates.push((&block.last_key, r));
        }
    }
    candidates.sort_by(|a, b| order.cmp_keys(a.0, b.0));

    // Residue rows, merged and sorted, consumed by a pointer as T grows.
    let mut residue_keys: Vec<&K> = residues.iter().flatten().map(|row| &row.key).collect();
    residue_keys.sort_by(|a, b| order.cmp_keys(a, b));
    let mut residue_seen = 0usize;

    // upper(T) = Σ_r (full_r + straddle_r) + residue_rows ≤ T.
    let straddle = |st: &RunState| st.rows.get(st.next).copied().unwrap_or(0);
    let mut upper_blocks: u64 = states.iter().map(&straddle).sum();

    let mut best: Option<K> = None;
    let mut i = 0;
    while i < candidates.len() {
        let key = candidates[i].0;
        // Advance every candidate (across runs) whose boundary equals `key`
        // before evaluating, so ties are handled atomically.
        while i < candidates.len()
            && order.cmp_keys(candidates[i].0, key) == std::cmp::Ordering::Equal
        {
            let st = &mut states[candidates[i].1];
            let promoted = straddle(st);
            st.full += promoted;
            st.next += 1;
            // Promoted block stays counted (now in `full`); the new
            // straddle block joins the bound.
            upper_blocks += straddle(st);
            i += 1;
        }
        while residue_seen < residue_keys.len() && !order.follows(residue_keys[residue_seen], key) {
            residue_seen += 1;
        }
        let upper = upper_blocks + residue_seen as u64;
        if upper <= offset {
            best = Some(key.clone());
        } else {
            break; // the bound is monotone: later candidates only grow it
        }
    }
    best
}

/// Builds merge sources over `runs` and the in-memory `residues`,
/// skipping as much of the first `offset` rows as the block indexes allow.
/// `readahead_blocks` wraps each positioned reader in background prefetch
/// (0 = synchronous reads).
pub fn fast_skip_sources<K: SortKey>(
    catalog: &RunCatalog<K>,
    runs: &[RunMeta<K>],
    residues: Vec<Vec<Row<K>>>,
    offset: u64,
    readahead_blocks: usize,
) -> Result<SkippedSources<K>> {
    let order = catalog.order();
    // Read-ahead goes through the catalog's shared I/O pool when one is
    // configured; otherwise each prefetching source gets its own thread.
    let scheduler = catalog.io_scheduler();
    let Some(threshold) = choose_threshold(runs, &residues, offset, order) else {
        // Nothing skippable: open everything plainly.
        let mut sources = Vec::with_capacity(runs.len() + residues.len());
        for meta in runs {
            sources.push(MergeSource::from_reader_scheduled(
                catalog.open(meta)?,
                readahead_blocks,
                scheduler.clone(),
            ));
        }
        for seq in residues {
            sources.push(MergeSource::Memory(seq.into_iter()));
        }
        return Ok(SkippedSources { sources, skipped: 0 });
    };

    let mut sources = Vec::with_capacity(runs.len() + residues.len());
    let mut skipped = 0u64;
    for meta in runs {
        // Whole leading blocks at or before the threshold.
        let mut whole_rows = 0u64;
        for block in &meta.blocks {
            if order.cmp_keys(&block.last_key, &threshold) == std::cmp::Ordering::Greater {
                break;
            }
            whole_rows += u64::from(block.rows);
        }
        let mut reader = catalog.open(meta)?;
        if whole_rows > 0 {
            reader.skip_rows(whole_rows)?;
            skipped += whole_rows;
        }
        // Pop individual rows ≤ T from the straddling block.
        let mut head: Vec<Row<K>> = Vec::new();
        for row in reader.by_ref() {
            let row = row?;
            if order.follows(&row.key, &threshold) {
                head.push(row); // first survivor: put it back in front
                break;
            }
            skipped += 1;
        }
        // Prefetch starts here, after positioning — the skipped prefix is
        // never read ahead.
        let tail = Box::new(MergeSource::from_reader_scheduled(
            reader,
            readahead_blocks,
            scheduler.clone(),
        ));
        sources.push(MergeSource::Chained { head: head.into_iter(), tail });
    }
    for mut seq in residues {
        // Residues are sorted in output order: drop the prefix ≤ T.
        let cut = seq.partition_point(|row| !order.follows(&row.key, &threshold));
        skipped += cut as u64;
        seq.drain(..cut);
        sources.push(MergeSource::Memory(seq.into_iter()));
    }
    debug_assert!(skipped <= offset, "fast skip overshot: {skipped} > {offset}");
    Ok(SkippedSources { sources, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_sort::merge_sources;
    use histok_storage::{IoStats, MemoryBackend};
    use std::sync::Arc;

    /// Catalog with `runs` of interleaved keys and tiny blocks.
    fn build_runs(n_runs: u64, rows_per_run: u64) -> Arc<RunCatalog<u64>> {
        let cat = Arc::new(
            RunCatalog::new(
                Arc::new(MemoryBackend::new()),
                "skip",
                SortOrder::Ascending,
                IoStats::new(),
            )
            .with_block_bytes(64), // a handful of rows per block
        );
        for r in 0..n_runs {
            let mut w = cat.start_run().unwrap();
            for j in 0..rows_per_run {
                w.append(&Row::key_only(j * n_runs + r)).unwrap();
            }
            cat.register(w.finish().unwrap()).unwrap();
        }
        cat
    }

    fn merged_after_skip(cat: &RunCatalog<u64>, offset: u64) -> Vec<u64> {
        let runs = cat.runs();
        let skipped = fast_skip_sources(cat, &runs, Vec::new(), offset, 2).unwrap();
        let tree = merge_sources(skipped.sources, SortOrder::Ascending).unwrap();
        let mut remaining = offset - skipped.skipped;
        let mut out = Vec::new();
        for row in tree {
            let row = row.unwrap();
            if remaining > 0 {
                remaining -= 1;
                continue;
            }
            out.push(row.key);
        }
        out
    }

    #[test]
    fn skipping_preserves_exact_semantics() {
        let cat = build_runs(4, 250); // keys 0..1000 interleaved
        for offset in [0u64, 1, 7, 99, 100, 500, 999] {
            let got = merged_after_skip(&cat, offset);
            let expected: Vec<u64> = (offset..1000).collect();
            assert_eq!(got, expected, "offset {offset}");
        }
    }

    #[test]
    fn whole_blocks_are_not_read() {
        let cat = build_runs(4, 2_000);
        let runs = cat.runs();
        let before = cat.stats().snapshot();
        let skipped = fast_skip_sources(&cat, &runs, Vec::new(), 4_000, 0).unwrap();
        assert!(skipped.skipped > 3_000, "only skipped {}", skipped.skipped);
        let read = cat.stats().snapshot().since(&before);
        // Reading all 4,000 skipped rows would cost ≥ 4,000 row-reads; the
        // block index must have avoided most of that.
        assert!(
            read.rows_read < 1_000,
            "fast skip decoded {} rows for a 4,000-row offset",
            read.rows_read
        );
        drop(skipped);
    }

    #[test]
    fn zero_offset_is_a_plain_open() {
        let cat = build_runs(2, 50);
        let runs = cat.runs();
        let s = fast_skip_sources(&cat, &runs, Vec::new(), 0, 2).unwrap();
        assert_eq!(s.skipped, 0);
        let keys: Vec<u64> = merge_sources(s.sources, SortOrder::Ascending)
            .unwrap()
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn offset_beyond_all_rows() {
        let cat = build_runs(2, 50);
        let runs = cat.runs();
        let s = fast_skip_sources(&cat, &runs, Vec::new(), 1_000_000, 2).unwrap();
        assert!(s.skipped <= 100);
        let rest = merge_sources(s.sources, SortOrder::Ascending).unwrap().count() as u64;
        assert_eq!(s.skipped + rest, 100);
    }

    #[test]
    fn residues_participate_in_the_threshold() {
        // The residue holds the SMALLEST keys; ignoring it would let the
        // planner skip run rows that rank beyond the offset.
        let cat = Arc::new(
            RunCatalog::new(
                Arc::new(MemoryBackend::new()),
                "resid",
                SortOrder::Ascending,
                IoStats::new(),
            )
            .with_block_bytes(64),
        );
        let mut w = cat.start_run().unwrap();
        for j in 100..300u64 {
            w.append(&Row::key_only(j)).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
        let residue: Vec<Row<u64>> = (0..100).map(Row::key_only).collect();

        let offset = 50u64;
        let runs = cat.runs();
        let s = fast_skip_sources(&cat, &runs, vec![residue], offset, 2).unwrap();
        let tree = merge_sources(s.sources, SortOrder::Ascending).unwrap();
        let mut remaining = offset - s.skipped;
        let mut out = Vec::new();
        for row in tree {
            let row = row.unwrap();
            if remaining > 0 {
                remaining -= 1;
                continue;
            }
            out.push(row.key);
        }
        assert_eq!(out, (50..300).collect::<Vec<_>>());
    }

    #[test]
    fn descending_runs_skip_correctly() {
        let cat = Arc::new(
            RunCatalog::new(
                Arc::new(MemoryBackend::new()),
                "d",
                SortOrder::Descending,
                IoStats::new(),
            )
            .with_block_bytes(64),
        );
        for r in 0..3u64 {
            let mut w = cat.start_run().unwrap();
            for j in (0..300u64).rev() {
                w.append(&Row::key_only(j * 3 + r)).unwrap();
            }
            cat.register(w.finish().unwrap()).unwrap();
        }
        let runs = cat.runs();
        let s = fast_skip_sources(&cat, &runs, Vec::new(), 123, 2).unwrap();
        let tree = merge_sources(s.sources, SortOrder::Descending).unwrap();
        let mut remaining = 123 - s.skipped;
        let mut out = Vec::new();
        for row in tree {
            let row = row.unwrap();
            if remaining > 0 {
                remaining -= 1;
                continue;
            }
            out.push(row.key);
        }
        let expected: Vec<u64> = (0..900u64).rev().skip(123).collect();
        assert_eq!(out, expected);
    }
}
