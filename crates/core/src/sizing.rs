//! Histogram sizing policies.
//!
//! "As new runs are created a sizing policy determines the new buckets"
//! (§3.1.2). The policy picks the bucket *width* (rows per bucket) for each
//! run from an estimate of the run's length. The paper's semantics, which
//! all of §3.2's arithmetic depends on, is: *B buckets per run put
//! boundaries at the quantiles i/(B+1)* — e.g. 9 buckets are the deciles
//! 10%…90% of a run (Table 1), 1 bucket is the run's median (Table 5),
//! 19 buckets are the 5% quantiles ("the cutoff key after 6 runs can be
//! 0.85 rather than 0.9").

use histok_types::{Error, Result};

/// How many buckets to collect from each run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizingPolicy {
    /// No histogram at all: the filter never establishes a cutoff in
    /// external mode (Table 2's first row — degenerates to the optimized
    /// baseline's behaviour without early merges).
    Disabled,
    /// Target `B` buckets per run: bucket width `max(1, ⌊est/(B+1)⌋)` rows.
    /// The paper's default is 50 (§5.1.2).
    TargetBuckets(u32),
    /// A fixed bucket width in rows, independent of run length.
    FixedWidth(u64),
}

impl Default for SizingPolicy {
    /// The production default: 50 buckets per run (§5.1.2).
    fn default() -> Self {
        SizingPolicy::TargetBuckets(50)
    }
}

impl SizingPolicy {
    /// Bucket width for a run estimated at `estimated_rows` rows;
    /// `0` disables buckets for the run.
    pub fn width_for_run(&self, estimated_rows: u64) -> u64 {
        match *self {
            SizingPolicy::Disabled => 0,
            SizingPolicy::TargetBuckets(b) => {
                if b == 0 {
                    0
                } else {
                    (estimated_rows / (u64::from(b) + 1)).max(1)
                }
            }
            SizingPolicy::FixedWidth(w) => w,
        }
    }

    /// The per-run bucket-count cap handed to the histogram builder
    /// (0 = unlimited). Only `TargetBuckets` caps: fixed-width policies
    /// keep emitting for as long as the run lasts.
    pub fn max_buckets_per_run(&self) -> u32 {
        match *self {
            SizingPolicy::TargetBuckets(b) => b,
            _ => 0,
        }
    }

    /// Validates the policy.
    pub fn validate(&self) -> Result<()> {
        if let SizingPolicy::FixedWidth(0) = self {
            return Err(Error::InvalidConfig(
                "fixed bucket width must be positive (use Disabled for no histogram)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_decile_example() {
        // 9 buckets over a 1000-row run → width 100 (boundaries at the
        // deciles 10%..90%), exactly Table 1's setup.
        assert_eq!(SizingPolicy::TargetBuckets(9).width_for_run(1000), 100);
    }

    #[test]
    fn paper_median_example() {
        // 1 bucket over 1000 rows → width 500: the median (§3.2.1's
        // "opposite extreme", Table 5).
        assert_eq!(SizingPolicy::TargetBuckets(1).width_for_run(1000), 500);
    }

    #[test]
    fn paper_nineteen_bucket_example() {
        // 19 buckets over 1000 rows → width 50: the 5% quantiles.
        assert_eq!(SizingPolicy::TargetBuckets(19).width_for_run(1000), 50);
    }

    #[test]
    fn per_key_tracking_extreme() {
        // 1000 buckets over 1000 rows: width clamps to 1 — "each key is
        // retained as a histogram bucket of size 1".
        assert_eq!(SizingPolicy::TargetBuckets(1000).width_for_run(1000), 1);
    }

    #[test]
    fn disabled_and_zero_buckets_yield_zero_width() {
        assert_eq!(SizingPolicy::Disabled.width_for_run(1000), 0);
        assert_eq!(SizingPolicy::TargetBuckets(0).width_for_run(1000), 0);
    }

    #[test]
    fn fixed_width_ignores_estimate() {
        assert_eq!(SizingPolicy::FixedWidth(7).width_for_run(10), 7);
        assert_eq!(SizingPolicy::FixedWidth(7).width_for_run(1_000_000), 7);
    }

    #[test]
    fn tiny_runs_still_get_buckets() {
        // Even a 3-row run produces size-1 buckets rather than none.
        assert_eq!(SizingPolicy::TargetBuckets(50).width_for_run(3), 1);
    }

    #[test]
    fn validation() {
        assert!(SizingPolicy::FixedWidth(0).validate().is_err());
        assert!(SizingPolicy::FixedWidth(1).validate().is_ok());
        assert!(SizingPolicy::Disabled.validate().is_ok());
        assert!(SizingPolicy::default().validate().is_ok());
        assert_eq!(SizingPolicy::default(), SizingPolicy::TargetBuckets(50));
    }
}
