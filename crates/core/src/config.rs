//! Configuration of the top-k operators.

use histok_sort::run_gen::ResiduePolicy;
use histok_sort::{BudgetHandle, MemoryBudget, MergeConfig, MergePolicy};
use histok_types::{AggregateOp, Error, Result};

use crate::sizing::SizingPolicy;

/// Which run-generation strategy the operator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunGenKind {
    /// Replacement selection (production default, §5.1.2).
    #[default]
    ReplacementSelection,
    /// Quicksort load-sort-store runs (PostgreSQL-style; also what the
    /// §3.2 analysis assumes).
    LoadSortStore,
}

/// How run generation executes: row-at-a-time comparison sorting, or the
/// batched radix sort over normalized key prefixes
/// ([`histok_sort::BatchSort`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunGenMode {
    /// Decide by key width: when the configured strategy is
    /// [`RunGenKind::LoadSortStore`] and the key's 8-byte normalized
    /// prefix is exact (integers, `F64Key`), use the radix batch sort —
    /// same flush points, same run contents, no comparator on the hot
    /// path. Replacement selection keeps its pipelined heap (its run
    /// shape — ~2× memory, run-size caps — is the strategy).
    #[default]
    Adaptive,
    /// Always the comparison-based strategy named by
    /// [`TopKConfig::run_generation`].
    Comparison,
    /// Always the radix batch sort, regardless of strategy or key width.
    /// Overrides [`RunGenKind`]; run-size caps do not apply.
    Batch,
}

/// Tunables for [`crate::HistogramTopK`] (and, where applicable, the
/// baselines). Build with [`TopKConfig::builder`].
#[derive(Debug, Clone)]
pub struct TopKConfig {
    /// Workspace bytes for buffered rows (§5.1.2 default is 1 GB; ours is
    /// 16 MiB, suitable for scaled experiments).
    pub memory_budget: usize,
    /// Histogram sizing policy (default: 50 buckets per run).
    pub sizing: SizingPolicy,
    /// Memory allowed for the histogram priority queue before a
    /// consolidation step (§5.1.2 default: 1 MiB).
    pub histogram_memory: usize,
    /// Emit tail buckets at run end (strictly more information than the
    /// paper's idealized model; ablation switch).
    pub tail_buckets: bool,
    /// Run-generation strategy.
    pub run_generation: RunGenKind,
    /// Run-generation execution mode (comparison vs. batched radix); see
    /// [`RunGenMode`].
    pub run_gen_mode: RunGenMode,
    /// Cap runs at `offset + limit` rows (the [Graefe'08] optimization).
    pub limit_run_size: bool,
    /// Merge fan-in and intermediate-run selection policy.
    pub merge: MergeConfig,
    /// What to do with rows still in memory when input ends.
    pub residue: ResiduePolicy,
    /// Master switch for the cutoff filter (off = measure the bare
    /// operator, §5.5).
    pub filter_enabled: bool,
    /// Apply the filter at operator input (Algorithm 1 line 4); ablation.
    pub input_filter: bool,
    /// Apply the filter again at spill time (Algorithm 1 line 11);
    /// ablation.
    pub spill_filter: bool,
    /// Run-file block payload bytes.
    pub block_bytes: usize,
    /// Approximation slack ε ∈ [0, 1) (§4.5): the cutoff filter targets
    /// ⌈k·(1−ε)⌉ rows instead of `k`, filtering earlier and harder. The
    /// exact top ⌈k·(1−ε)⌉ rows are still guaranteed; the remaining output
    /// positions are best-effort and the row count may fall short of `k`.
    /// 0.0 (the default) = exact.
    pub approx_slack: f64,
    /// Offset-value coding on the sort hot path (loser-tree duels,
    /// selection-heap sifts, cutoff prefix checks). On by default; off
    /// forces full key comparisons everywhere (differential baseline).
    pub ovc_enabled: bool,
    /// Spill runs through a background writer thread that overlaps block
    /// encoding/writing with row production (on by default; off spills
    /// synchronously on the operator thread).
    pub spill_pipeline: bool,
    /// Blocks of background read-ahead per merge input; the effective
    /// prefetch window is `readahead_blocks × block_bytes`. `0` reads
    /// synchronously on the merge thread. Default 2.
    pub readahead_blocks: usize,
    /// Worker threads for the final merge. With 2 or more, the final
    /// merge is range-partitioned across histogram-guided splitter keys
    /// when the estimated row count clears
    /// [`partition_min_rows`](TopKConfig::partition_min_rows). Default:
    /// `available_parallelism` capped at 4; 1 = always serial.
    pub merge_threads: usize,
    /// Minimum estimated rows in the final merge before it goes parallel;
    /// below this, partitioning overhead (thread spawn, channel hops)
    /// outweighs the win. Default 8192.
    pub partition_min_rows: u64,
    /// Worker threads for the intermediate cascade merge passes (the
    /// independent merges of one pass run concurrently, sharing the I/O
    /// pool and one cutoff cell — DESIGN.md §11). `1` (the default)
    /// keeps the cascade serial: concurrent merges publish cutoff
    /// refinements in completion order, so intermediate run shapes — and
    /// with them tie-break order among duplicate keys — become
    /// timing-dependent, which the differential suites (and any caller
    /// needing run-to-run byte stability) must not see. `0` reuses
    /// [`merge_threads`](TopKConfig::merge_threads).
    pub cascade_threads: usize,
    /// Background-I/O worker threads. Spill writes and merge read-ahead
    /// submit block-sized jobs to one shared pool of this size, bounding
    /// the operator's background thread count no matter how many runs and
    /// merge sources are open. `0` = legacy mode: one dedicated thread per
    /// open run / merge source (for differential testing). Default 4.
    pub io_threads: usize,
    /// Rows per batch on the batched merge path (loser-tree drain loops,
    /// partition-worker channel hops). Must be at least 1. Default 1024.
    pub batch_rows: usize,
    /// An injected, shared background-I/O pool. When set,
    /// [`io_scheduler`](TopKConfig::io_scheduler) returns a clone of this
    /// pool instead of constructing a fresh one, so every operator built
    /// from this config — including the per-group sub-operators of
    /// `GroupedTopK`/`SegmentedTopK`/`ExchangeTopK` and every query a
    /// `TopKServer` admits — shares `io_threads` workers fleet-wide
    /// instead of spawning a private pool each. `None` (the default)
    /// keeps the standalone one-pool-per-operator behaviour.
    pub io_scheduler_handle: Option<histok_storage::IoScheduler>,
    /// A revocable memory-lease handle. When set, operators read their
    /// workspace limit through this shared cell instead of the fixed
    /// [`memory_budget`](TopKConfig::memory_budget), so a server's
    /// admission controller can grow or shrink a *running* query's
    /// workspace at phase boundaries without restarting it. `None` (the
    /// default) keeps the fixed budget.
    pub budget_lease: Option<BudgetHandle>,
    /// Remove duplicate keys in-sort (`SELECT DISTINCT ... ORDER BY ...
    /// LIMIT k`): equal keys fold to one deterministic representative row
    /// at every pipeline stage — run generation, each merge duel, and the
    /// in-memory store — so `limit` counts *distinct* keys. Mutually
    /// exclusive with [`aggregate`](TopKConfig::aggregate).
    pub dedup: bool,
    /// Grouped aggregation in-sort (`GROUP BY key` with the top `limit`
    /// groups in key order): equal keys fold by combining payloads with
    /// this aggregate at every pipeline stage. The histogram cutoff can
    /// only prune on the *group key* order — never on unmerged partial
    /// aggregates — so pre-aggregation input/spill filtering is disabled
    /// in this mode; cutoffs still tighten post-merge (DESIGN.md §14).
    /// Mutually exclusive with [`dedup`](TopKConfig::dedup).
    pub aggregate: Option<AggregateOp>,
}

/// Default for [`TopKConfig::merge_threads`]: the machine's available
/// parallelism, capped at 4 (the paper's storage model saturates around
/// there; more threads only shred the read pattern).
pub fn default_merge_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(4)
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            memory_budget: 16 * 1024 * 1024,
            sizing: SizingPolicy::default(),
            histogram_memory: crate::cutoff::DEFAULT_FILTER_MEMORY,
            tail_buckets: true,
            run_generation: RunGenKind::default(),
            run_gen_mode: RunGenMode::default(),
            limit_run_size: true,
            // The paper's algorithm performs "one pass over the input to
            // generate sorted runs and then merges the runs until the top k
            // rows are produced" (§1) — intermediate merge steps only happen
            // when the run count exceeds this generous fan-in.
            merge: MergeConfig { fan_in: 512, policy: MergePolicy::LowestKeyFirst },
            residue: ResiduePolicy::KeepInMemory,
            filter_enabled: true,
            input_filter: true,
            spill_filter: true,
            block_bytes: histok_storage::DEFAULT_BLOCK_BYTES,
            approx_slack: 0.0,
            ovc_enabled: true,
            spill_pipeline: true,
            readahead_blocks: 2,
            merge_threads: default_merge_threads(),
            partition_min_rows: 8192,
            cascade_threads: 1,
            io_threads: 4,
            batch_rows: histok_sort::DEFAULT_BATCH_ROWS,
            io_scheduler_handle: None,
            budget_lease: None,
            dedup: false,
            aggregate: None,
        }
    }
}

impl TopKConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> TopKConfigBuilder {
        TopKConfigBuilder { config: TopKConfig::default() }
    }

    /// The background-I/O worker pool this configuration asks for: the
    /// injected shared pool when
    /// [`io_scheduler_handle`](TopKConfig::io_scheduler_handle) is set,
    /// otherwise a fresh pool of [`io_threads`](TopKConfig::io_threads)
    /// workers, or `None` in legacy thread-per-source mode
    /// (`io_threads == 0`). Operators call this once and thread the pool
    /// through their run catalog and merge tuning.
    pub fn io_scheduler(&self) -> Option<histok_storage::IoScheduler> {
        if self.io_threads == 0 {
            return None;
        }
        self.io_scheduler_handle
            .clone()
            .or_else(|| Some(histok_storage::IoScheduler::new(self.io_threads)))
    }

    /// Returns a clone of this config with one materialized shared I/O
    /// pool injected, so composite operators (grouped, segmented,
    /// exchange) hand every sub-operator the *same* `io_threads` workers
    /// instead of letting each construct a private pool. A no-op in
    /// legacy mode or when a shared pool was already injected.
    pub fn with_shared_io_scheduler(&self) -> TopKConfig {
        let mut config = self.clone();
        if config.io_scheduler_handle.is_none() {
            config.io_scheduler_handle = config.io_scheduler();
        }
        config
    }

    /// Builds the workspace budget for an operator: lease-backed (shared,
    /// resizable limit) when [`budget_lease`](TopKConfig::budget_lease) is
    /// set, otherwise a private fixed budget of
    /// [`memory_budget`](TopKConfig::memory_budget) bytes.
    pub fn make_budget(&self) -> MemoryBudget {
        match &self.budget_lease {
            Some(handle) => MemoryBudget::with_handle(handle.clone()),
            None => MemoryBudget::new(self.memory_budget),
        }
    }

    /// The workspace limit in effect right now: the lease's current grant
    /// when one is attached, else the fixed
    /// [`memory_budget`](TopKConfig::memory_budget). In-memory/spill
    /// switch decisions must read this (not the fixed field) so a lease
    /// resize reaches operators that track usage outside a
    /// [`MemoryBudget`].
    pub fn effective_memory_budget(&self) -> usize {
        match &self.budget_lease {
            Some(handle) => handle.limit(),
            None => self.memory_budget,
        }
    }

    /// Worker threads the intermediate cascade merges actually run on:
    /// [`cascade_threads`](TopKConfig::cascade_threads), falling back to
    /// [`merge_threads`](TopKConfig::merge_threads) when 0.
    pub fn cascade_workers(&self) -> usize {
        if self.cascade_threads == 0 {
            self.merge_threads
        } else {
            self.cascade_threads
        }
    }

    /// The payload-folding operation this configuration asks for: the
    /// configured [`aggregate`](TopKConfig::aggregate), or
    /// [`AggregateOp::First`] (pure duplicate removal) when
    /// [`dedup`](TopKConfig::dedup) is set, else `None`.
    pub fn fold_op(&self) -> Option<AggregateOp> {
        if self.dedup {
            Some(AggregateOp::First)
        } else {
            self.aggregate
        }
    }

    /// Checks the configuration for consistency.
    pub fn validate(&self) -> Result<()> {
        if self.memory_budget == 0 {
            return Err(Error::InvalidConfig("memory budget must be positive".into()));
        }
        if self.block_bytes == 0 {
            return Err(Error::InvalidConfig("block bytes must be positive".into()));
        }
        if !(0.0..1.0).contains(&self.approx_slack) {
            return Err(Error::InvalidConfig("approx_slack must be in [0, 1)".into()));
        }
        if self.merge_threads == 0 {
            return Err(Error::InvalidConfig("merge_threads must be at least 1".into()));
        }
        if self.batch_rows == 0 {
            return Err(Error::InvalidConfig("batch_rows must be at least 1".into()));
        }
        if self.dedup && self.aggregate.is_some() {
            return Err(Error::InvalidConfig(
                "dedup and aggregate are mutually exclusive (dedup IS aggregate FIRST)".into(),
            ));
        }
        self.sizing.validate()?;
        self.merge.validate()?;
        Ok(())
    }
}

/// Fluent builder for [`TopKConfig`].
#[derive(Debug, Clone)]
pub struct TopKConfigBuilder {
    config: TopKConfig,
}

impl TopKConfigBuilder {
    /// Sets the workspace byte budget.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.config.memory_budget = bytes;
        self
    }

    /// Sets the histogram sizing policy.
    pub fn sizing(mut self, policy: SizingPolicy) -> Self {
        self.config.sizing = policy;
        self
    }

    /// Sets the histogram priority-queue memory budget.
    pub fn histogram_memory(mut self, bytes: usize) -> Self {
        self.config.histogram_memory = bytes;
        self
    }

    /// Enables or disables tail buckets.
    pub fn tail_buckets(mut self, emit: bool) -> Self {
        self.config.tail_buckets = emit;
        self
    }

    /// Chooses the run-generation strategy.
    pub fn run_generation(mut self, kind: RunGenKind) -> Self {
        self.config.run_generation = kind;
        self
    }

    /// Chooses the run-generation execution mode; see [`RunGenMode`].
    pub fn run_gen_mode(mut self, mode: RunGenMode) -> Self {
        self.config.run_gen_mode = mode;
        self
    }

    /// Enables or disables the run-size cap at `k`.
    pub fn limit_run_size(mut self, on: bool) -> Self {
        self.config.limit_run_size = on;
        self
    }

    /// Sets merge fan-in.
    pub fn fan_in(mut self, fan_in: usize) -> Self {
        self.config.merge.fan_in = fan_in;
        self
    }

    /// Sets the intermediate-merge run-selection policy.
    pub fn merge_policy(mut self, policy: MergePolicy) -> Self {
        self.config.merge.policy = policy;
        self
    }

    /// Sets the end-of-input residue policy.
    pub fn residue(mut self, residue: ResiduePolicy) -> Self {
        self.config.residue = residue;
        self
    }

    /// Master filter switch (§5.5 overhead experiments).
    pub fn filter_enabled(mut self, on: bool) -> Self {
        self.config.filter_enabled = on;
        self
    }

    /// Input-side filtering switch (ablation).
    pub fn input_filter(mut self, on: bool) -> Self {
        self.config.input_filter = on;
        self
    }

    /// Spill-time filtering switch (ablation).
    pub fn spill_filter(mut self, on: bool) -> Self {
        self.config.spill_filter = on;
        self
    }

    /// Run-file block payload size.
    pub fn block_bytes(mut self, bytes: usize) -> Self {
        self.config.block_bytes = bytes;
        self
    }

    /// Approximation slack (§4.5); see [`TopKConfig::approx_slack`].
    pub fn approx_slack(mut self, slack: f64) -> Self {
        self.config.approx_slack = slack;
        self
    }

    /// Offset-value coding switch; see [`TopKConfig::ovc_enabled`].
    pub fn ovc_enabled(mut self, on: bool) -> Self {
        self.config.ovc_enabled = on;
        self
    }

    /// Background spill pipeline switch; see [`TopKConfig::spill_pipeline`].
    pub fn spill_pipeline(mut self, on: bool) -> Self {
        self.config.spill_pipeline = on;
        self
    }

    /// Merge read-ahead depth; see [`TopKConfig::readahead_blocks`].
    pub fn readahead_blocks(mut self, blocks: usize) -> Self {
        self.config.readahead_blocks = blocks;
        self
    }

    /// Final-merge worker threads; see [`TopKConfig::merge_threads`].
    pub fn merge_threads(mut self, threads: usize) -> Self {
        self.config.merge_threads = threads;
        self
    }

    /// Parallel-merge row threshold; see
    /// [`TopKConfig::partition_min_rows`].
    pub fn partition_min_rows(mut self, rows: u64) -> Self {
        self.config.partition_min_rows = rows;
        self
    }

    /// Cascade-pass worker threads; see [`TopKConfig::cascade_threads`].
    pub fn cascade_threads(mut self, threads: usize) -> Self {
        self.config.cascade_threads = threads;
        self
    }

    /// Background-I/O pool size; see [`TopKConfig::io_threads`].
    pub fn io_threads(mut self, threads: usize) -> Self {
        self.config.io_threads = threads;
        self
    }

    /// Batched-merge batch size; see [`TopKConfig::batch_rows`].
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.config.batch_rows = rows;
        self
    }

    /// Injects a shared background-I/O pool; see
    /// [`TopKConfig::io_scheduler_handle`].
    pub fn io_scheduler_handle(mut self, scheduler: histok_storage::IoScheduler) -> Self {
        self.config.io_scheduler_handle = Some(scheduler);
        self
    }

    /// Attaches a revocable memory-lease handle; see
    /// [`TopKConfig::budget_lease`].
    pub fn budget_lease(mut self, lease: BudgetHandle) -> Self {
        self.config.budget_lease = Some(lease);
        self
    }

    /// In-sort duplicate removal; see [`TopKConfig::dedup`].
    pub fn dedup(mut self, on: bool) -> Self {
        self.config.dedup = on;
        self
    }

    /// In-sort grouped aggregation; see [`TopKConfig::aggregate`].
    pub fn aggregate(mut self, op: AggregateOp) -> Self {
        self.config.aggregate = Some(op);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<TopKConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = TopKConfig::default();
        assert_eq!(c.sizing, SizingPolicy::TargetBuckets(50)); // §5.1.2
        assert_eq!(c.histogram_memory, 1024 * 1024); // §5.1.2: 1 MB
        assert_eq!(c.run_generation, RunGenKind::ReplacementSelection);
        assert!(c.limit_run_size);
        assert!(c.filter_enabled && c.input_filter && c.spill_filter);
        assert!(c.spill_pipeline);
        assert_eq!(c.readahead_blocks, 2);
        assert!((1..=4).contains(&c.merge_threads));
        assert_eq!(c.partition_min_rows, 8192);
        assert_eq!(c.cascade_threads, 1);
        assert_eq!(c.cascade_workers(), 1);
        assert_eq!(c.io_threads, 4);
        assert_eq!(c.run_gen_mode, RunGenMode::Adaptive);
        assert_eq!(c.batch_rows, 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_roundtrip() {
        let c = TopKConfig::builder()
            .memory_budget(1 << 20)
            .sizing(SizingPolicy::TargetBuckets(9))
            .histogram_memory(4096)
            .tail_buckets(false)
            .run_generation(RunGenKind::LoadSortStore)
            .run_gen_mode(RunGenMode::Batch)
            .limit_run_size(false)
            .fan_in(8)
            .merge_policy(MergePolicy::SmallestFirst)
            .residue(ResiduePolicy::SpillToRuns)
            .filter_enabled(true)
            .input_filter(false)
            .spill_filter(true)
            .block_bytes(1024)
            .spill_pipeline(false)
            .readahead_blocks(4)
            .merge_threads(2)
            .partition_min_rows(100)
            .cascade_threads(3)
            .io_threads(2)
            .batch_rows(64)
            .build()
            .unwrap();
        assert_eq!(c.memory_budget, 1 << 20);
        assert_eq!(c.sizing, SizingPolicy::TargetBuckets(9));
        assert!(!c.tail_buckets);
        assert_eq!(c.run_generation, RunGenKind::LoadSortStore);
        assert_eq!(c.run_gen_mode, RunGenMode::Batch);
        assert!(!c.limit_run_size);
        assert_eq!(c.merge.fan_in, 8);
        assert!(!c.input_filter);
        assert_eq!(c.block_bytes, 1024);
        assert!(!c.spill_pipeline);
        assert_eq!(c.readahead_blocks, 4);
        assert_eq!(c.merge_threads, 2);
        assert_eq!(c.partition_min_rows, 100);
        assert_eq!(c.cascade_threads, 3);
        assert_eq!(c.cascade_workers(), 3);
        assert_eq!(c.io_threads, 2);
        assert_eq!(c.batch_rows, 64);
    }

    #[test]
    fn injected_scheduler_is_returned_instead_of_a_fresh_pool() {
        let shared = histok_storage::IoScheduler::new(2);
        let c = TopKConfig::builder().io_scheduler_handle(shared.clone()).build().unwrap();
        let got = c.io_scheduler().expect("scheduler expected");
        assert!(got.same_pool(&shared), "injected pool must be returned, not a fresh one");
        let again = c.io_scheduler().unwrap();
        assert!(again.same_pool(&shared), "every call must return the same shared pool");
        // Legacy mode wins: io_threads == 0 means no background pool at all.
        let legacy =
            TopKConfig::builder().io_threads(0).io_scheduler_handle(shared).build().unwrap();
        assert!(legacy.io_scheduler().is_none());
    }

    #[test]
    fn with_shared_io_scheduler_materializes_one_pool() {
        let c = TopKConfig::default().with_shared_io_scheduler();
        let a = c.io_scheduler().unwrap();
        let b = c.io_scheduler().unwrap();
        assert!(a.same_pool(&b), "sub-operators cloned from this config must share the pool");
        // Idempotent: a second call keeps the already-injected pool.
        let again = c.with_shared_io_scheduler();
        assert!(again.io_scheduler().unwrap().same_pool(&a));
    }

    #[test]
    fn budget_lease_governs_make_budget_and_effective_limit() {
        let fixed = TopKConfig::builder().memory_budget(4096).build().unwrap();
        assert_eq!(fixed.effective_memory_budget(), 4096);
        assert_eq!(fixed.make_budget().limit(), 4096);

        let lease = BudgetHandle::new(1024);
        let leased =
            TopKConfig::builder().memory_budget(4096).budget_lease(lease.clone()).build().unwrap();
        assert_eq!(leased.effective_memory_budget(), 1024, "lease overrides the fixed budget");
        let budget = leased.make_budget();
        assert!(budget.handle().same_as(&lease));
        lease.set_limit(8192);
        assert_eq!(leased.effective_memory_budget(), 8192);
        assert_eq!(budget.limit(), 8192, "a resize reaches budgets already handed out");
    }

    #[test]
    fn cascade_threads_zero_reuses_merge_threads() {
        let c = TopKConfig::builder().merge_threads(3).cascade_threads(0).build().unwrap();
        assert_eq!(c.cascade_workers(), 3);
    }

    #[test]
    fn io_threads_zero_is_the_legacy_mode_and_valid() {
        let c = TopKConfig::builder().io_threads(0).build().unwrap();
        assert_eq!(c.io_threads, 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(TopKConfig::builder().memory_budget(0).build().is_err());
        assert!(TopKConfig::builder().block_bytes(0).build().is_err());
        assert!(TopKConfig::builder().fan_in(1).build().is_err());
        assert!(TopKConfig::builder().sizing(SizingPolicy::FixedWidth(0)).build().is_err());
        assert!(TopKConfig::builder().approx_slack(1.0).build().is_err());
        assert!(TopKConfig::builder().approx_slack(-0.1).build().is_err());
        assert!(TopKConfig::builder().approx_slack(0.25).build().is_ok());
        assert!(TopKConfig::builder().merge_threads(0).build().is_err());
        assert!(TopKConfig::builder().merge_threads(1).build().is_ok());
        assert!(TopKConfig::builder().batch_rows(0).build().is_err());
        assert!(TopKConfig::builder().batch_rows(1).build().is_ok());
        assert!(TopKConfig::builder().dedup(true).aggregate(AggregateOp::Sum).build().is_err());
        assert!(TopKConfig::builder().dedup(true).build().is_ok());
        assert!(TopKConfig::builder().aggregate(AggregateOp::Count).build().is_ok());
    }

    #[test]
    fn fold_op_maps_dedup_to_first() {
        assert_eq!(TopKConfig::default().fold_op(), None);
        assert_eq!(
            TopKConfig::builder().dedup(true).build().unwrap().fold_op(),
            Some(AggregateOp::First)
        );
        assert_eq!(
            TopKConfig::builder().aggregate(AggregateOp::Sum).build().unwrap().fold_op(),
            Some(AggregateOp::Sum)
        );
    }
}
