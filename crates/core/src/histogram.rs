//! Histogram buckets — the input model's building blocks.
//!
//! As a run is written, every `width`-th spilled row closes a bucket: the
//! row's key becomes the bucket's *boundary key* and the number of rows
//! spilled since the previous boundary is the *bucket size* (§3.1.2:
//! "Each histogram bucket is defined by its maximum (boundary) key and by
//! the number of rows it represents").

use histok_types::SortKey;

/// One histogram bucket: `count` rows whose keys all sort at or before
/// `boundary` (in output order) relative to the rest of their run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket<K> {
    /// The maximum (in output order) key the bucket represents.
    pub boundary: K,
    /// Number of rows the bucket represents.
    pub count: u64,
}

impl<K: SortKey> Bucket<K> {
    /// Creates a bucket.
    pub fn new(boundary: K, count: u64) -> Self {
        Bucket { boundary, count }
    }

    /// Approximate heap bytes one bucket occupies in the priority queue
    /// (used for the consolidation budget).
    pub fn footprint(&self) -> usize {
        std::mem::size_of::<Self>() + self.boundary.heap_size()
    }
}

/// Builds the buckets of one run as its rows are spilled.
#[derive(Debug)]
pub struct HistogramBuilder<K> {
    /// Rows per bucket for the current run (0 = histogram disabled).
    width: u64,
    /// Maximum buckets to emit for the current run (0 = unlimited). The
    /// paper's sizing policy targets `B` buckets per run; rows beyond the
    /// `B`th boundary belong to the (optional) tail bucket.
    max_buckets: u32,
    /// Buckets emitted so far in the current run.
    emitted: u32,
    /// Rows spilled since the last boundary.
    pending: u64,
    /// Last spilled key (tail-bucket boundary candidate).
    last_key: Option<K>,
}

impl<K: SortKey> HistogramBuilder<K> {
    /// Creates a builder; call [`HistogramBuilder::start_run`] before the
    /// first row.
    pub fn new() -> Self {
        HistogramBuilder { width: 0, max_buckets: 0, emitted: 0, pending: 0, last_key: None }
    }

    /// Begins a run whose buckets will close every `width` rows, up to
    /// `max_buckets` of them (0 = unlimited). `width == 0` disables bucket
    /// creation for this run.
    pub fn start_run(&mut self, width: u64, max_buckets: u32) {
        debug_assert_eq!(self.pending, 0, "previous run not finished");
        self.width = width;
        self.max_buckets = max_buckets;
        self.emitted = 0;
        self.pending = 0;
        self.last_key = None;
    }

    /// Records one spilled row; returns a completed bucket when the row
    /// closes one.
    pub fn offer(&mut self, key: &K) -> Option<Bucket<K>> {
        if self.width == 0 {
            return None;
        }
        self.pending += 1;
        self.last_key = Some(key.clone());
        let capped = self.max_buckets != 0 && self.emitted >= self.max_buckets;
        if !capped && self.pending >= self.width {
            self.pending = 0;
            self.last_key = None;
            self.emitted += 1;
            Some(Bucket::new(key.clone(), self.width))
        } else {
            None
        }
    }

    /// Ends the run. When `emit_tail` is set, the rows after the last full
    /// bucket form a final bucket bounded by the run's last key — strictly
    /// more information than the paper's idealized model, which leaves the
    /// tail untracked (§3.2.1 tracks only 9 deciles of each 1000-row run).
    pub fn finish_run(&mut self, emit_tail: bool) -> Option<Bucket<K>> {
        let pending = std::mem::take(&mut self.pending);
        let last = self.last_key.take();
        self.width = 0;
        if emit_tail && pending > 0 {
            last.map(|key| Bucket::new(key, pending))
        } else {
            None
        }
    }

    /// Rows spilled since the last completed bucket.
    pub fn pending(&self) -> u64 {
        self.pending
    }
}

impl<K: SortKey> Default for HistogramBuilder<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_close_every_width_rows() {
        let mut b: HistogramBuilder<u64> = HistogramBuilder::new();
        b.start_run(3, 0);
        assert_eq!(b.offer(&10), None);
        assert_eq!(b.offer(&20), None);
        assert_eq!(b.offer(&30), Some(Bucket::new(30, 3)));
        assert_eq!(b.offer(&40), None);
        assert_eq!(b.pending(), 1);
        assert_eq!(b.finish_run(true), Some(Bucket::new(40, 1)));
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn tail_suppressed_matches_paper_model() {
        let mut b: HistogramBuilder<u64> = HistogramBuilder::new();
        b.start_run(2, 0);
        b.offer(&1);
        b.offer(&2);
        b.offer(&3); // pending tail of 1 row
        assert_eq!(b.finish_run(false), None);
    }

    #[test]
    fn width_zero_disables_histogram() {
        let mut b: HistogramBuilder<u64> = HistogramBuilder::new();
        b.start_run(0, 0);
        for k in 0..100u64 {
            assert_eq!(b.offer(&k), None);
        }
        assert_eq!(b.finish_run(true), None);
    }

    #[test]
    fn exact_multiple_leaves_no_tail() {
        let mut b: HistogramBuilder<u64> = HistogramBuilder::new();
        b.start_run(2, 0);
        b.offer(&1);
        assert!(b.offer(&2).is_some());
        b.offer(&3);
        assert!(b.offer(&4).is_some());
        assert_eq!(b.finish_run(true), None);
    }

    #[test]
    fn width_one_tracks_every_key() {
        // The §3.2.1 extreme: "tracks each key value, equivalent to a
        // histogram with 1,000 buckets" of size 1.
        let mut b: HistogramBuilder<u64> = HistogramBuilder::new();
        b.start_run(1, 0);
        for k in 0..5u64 {
            assert_eq!(b.offer(&k), Some(Bucket::new(k, 1)));
        }
    }

    #[test]
    fn builder_resets_between_runs() {
        let mut b: HistogramBuilder<u64> = HistogramBuilder::new();
        b.start_run(5, 0);
        b.offer(&1);
        b.offer(&2);
        b.finish_run(false);
        b.start_run(2, 0);
        assert_eq!(b.offer(&1), None);
        assert_eq!(b.offer(&2), Some(Bucket::new(2, 2)));
    }

    #[test]
    fn bucket_cap_diverts_rows_to_the_tail() {
        // B = 2 buckets of width 2 over a 7-row run: rows 5..7 are tail.
        let mut b: HistogramBuilder<u64> = HistogramBuilder::new();
        b.start_run(2, 2);
        assert_eq!(b.offer(&1), None);
        assert_eq!(b.offer(&2), Some(Bucket::new(2, 2)));
        assert_eq!(b.offer(&3), None);
        assert_eq!(b.offer(&4), Some(Bucket::new(4, 2)));
        assert_eq!(b.offer(&5), None); // capped
        assert_eq!(b.offer(&6), None);
        assert_eq!(b.offer(&7), None);
        assert_eq!(b.finish_run(true), Some(Bucket::new(7, 3)));
    }

    #[test]
    fn footprint_is_positive_and_tracks_key_heap() {
        let small = Bucket::new(1u64, 10);
        assert!(small.footprint() >= std::mem::size_of::<Bucket<u64>>());
        let big = Bucket::new(histok_types::BytesKey(vec![0; 100]), 10);
        assert!(big.footprint() > 100);
    }
}
