//! The cutoff filter — the paper's central data structure (§3.1.2).
//!
//! A priority queue of histogram [`Bucket`]s, sorted *inverse* to the
//! requested output order, models the input seen so far. Once the buckets
//! jointly represent at least `k` rows, the boundary key at the top of the
//! queue is a valid **cutoff key**: at least `k` rows are known to sort at
//! or before it, so any row sorting strictly after it cannot be in the
//! output and is eliminated. After every insertion the queue pops buckets
//! while `Σcount − top.count ≥ k`, continuously sharpening the cutoff.
//!
//! The filter implements [`SpillObserver`], which is how it watches run
//! generation: each spilled row feeds a [`HistogramBuilder`], each completed
//! bucket is inserted, and the sharpened cutoff immediately starts
//! eliminating rows — including later rows of the very run being written.

use std::collections::BTreeSet;

use histok_sort::{BinaryHeapBy, SpillObserver};
use histok_types::{AggregateOp, Result, SortKey, SortOrder};

use crate::histogram::{Bucket, HistogramBuilder};
use crate::sizing::SizingPolicy;

/// Default memory allocation for the histogram priority queue (§5.1.2:
/// "default: 1 MB").
pub const DEFAULT_FILTER_MEMORY: usize = 1024 * 1024;

/// Counters describing the filter's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterMetrics {
    /// Buckets inserted into the priority queue.
    pub buckets_inserted: u64,
    /// Buckets popped while sharpening.
    pub buckets_popped: u64,
    /// Times the cutoff key strictly tightened.
    pub refinements: u64,
    /// Consolidation steps (queue collapsed to one bucket).
    pub consolidations: u64,
    /// Rows eliminated by [`CutoffFilter::should_eliminate`] at spill time.
    pub eliminated_at_spill: u64,
}

impl FilterMetrics {
    /// Counter-wise sum with `other` (aggregating sub-operator filters).
    pub fn merged(&self, other: &FilterMetrics) -> FilterMetrics {
        FilterMetrics {
            buckets_inserted: self.buckets_inserted.saturating_add(other.buckets_inserted),
            buckets_popped: self.buckets_popped.saturating_add(other.buckets_popped),
            refinements: self.refinements.saturating_add(other.refinements),
            consolidations: self.consolidations.saturating_add(other.consolidations),
            eliminated_at_spill: self.eliminated_at_spill.saturating_add(other.eliminated_at_spill),
        }
    }
}

/// Builds a [`CutoffFilter`] honoring every relevant config knob. Shared by
/// [`crate::HistogramTopK`] and [`crate::ParallelTopK`] so the serial and
/// parallel operators cannot drift apart:
///
/// * `filter_enabled: false` disables histogram sizing entirely (no buckets
///   are ever built, matching a plain external sort);
/// * approximation slack ε targets ⌈k(1−ε)⌉ rows (§4.5), so the filter
///   establishes and sharpens its cutoff earlier, trading the tail of the
///   result for less I/O;
/// * `spill_filter` gates spill-time elimination (Algorithm 1 line 11).
pub(crate) fn filter_from_config<K: SortKey>(
    spec: &histok_types::SortSpec,
    config: &crate::config::TopKConfig,
) -> CutoffFilter<K> {
    let fold = config.fold_op();
    // Row-count histograms are unsound over a folding sort: a bucket's
    // count promises "≥ k *rows* at or before the boundary", but a fold
    // query's limit counts *distinct keys* (DESIGN.md §14). Dedup mode
    // replaces the histogram with an exact distinct-key tracker; value
    // aggregates get no input model at all and rely on post-merge
    // refinement only.
    let histogram_sound = fold.is_none();
    let sizing = if config.filter_enabled && histogram_sound {
        config.sizing
    } else {
        SizingPolicy::Disabled
    };
    // Pre-aggregation elimination is sound only when each group needs a
    // single surviving representative (plain top-k, dedup/FIRST). For
    // SUM/COUNT/MIN/MAX every dropped duplicate would corrupt its group's
    // accumulator, so spill-side elimination is forced off.
    let pre_agg_filtering = matches!(fold, None | Some(AggregateOp::First));
    let filter_k = ((spec.retained() as f64) * (1.0 - config.approx_slack)).ceil() as u64;
    let mut filter = CutoffFilter::with_policy(filter_k.max(1), spec.order, sizing)
        .with_memory_budget(config.histogram_memory)
        .with_tail_buckets(config.tail_buckets)
        .with_spill_elimination(config.filter_enabled && config.spill_filter && pre_agg_filtering)
        .with_norm_prefix(config.ovc_enabled);
    if config.filter_enabled && fold == Some(AggregateOp::First) {
        filter = filter.with_distinct_tracking();
    }
    filter
}

/// Verdict of [`CutoffFilter::observe_input`] on one input-side key in
/// distinct (dedup) mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistinctVerdict {
    /// First sighting of a key that may still reach the output: keep it.
    Admit,
    /// The key is already tracked — the row is a pure duplicate of a
    /// representative already in the sort pipeline (FIRST fold: drop it).
    Duplicate,
    /// The tracker is full and the key sorts strictly after the worst
    /// retained distinct key — its whole group is out of the output.
    Worse,
}

/// Exact distinct-key input model for dedup queries: the best `target`
/// *distinct* keys seen so far. Replaces the row-count histogram, whose
/// cutoffs are unsound when the limit counts groups instead of rows
/// (DESIGN.md §14). Memory is bounded by `target` keys — the same order as
/// the retained output itself.
#[derive(Debug)]
struct DistinctTracker<K: SortKey> {
    set: BTreeSet<K>,
    target: usize,
    order: SortOrder,
}

impl<K: SortKey> DistinctTracker<K> {
    fn new(target: u64, order: SortOrder) -> Self {
        DistinctTracker { set: BTreeSet::new(), target: target.max(1) as usize, order }
    }

    /// The worst retained distinct key (`BTreeSet` iterates ascending).
    fn worst(&self) -> Option<&K> {
        match self.order {
            SortOrder::Ascending => self.set.iter().next_back(),
            SortOrder::Descending => self.set.iter().next(),
        }
    }

    /// The cutoff this tracker proves: once `target` distinct keys are
    /// tracked, at least `target` groups sort at or before the worst one.
    fn cutoff(&self) -> Option<&K> {
        if self.set.len() >= self.target {
            self.worst()
        } else {
            None
        }
    }

    fn observe(&mut self, key: &K) -> DistinctVerdict {
        if self.set.contains(key) {
            return DistinctVerdict::Duplicate;
        }
        if self.set.len() >= self.target {
            let worst = self.worst().expect("full tracker has a worst key");
            if self.order.follows(key, worst) {
                return DistinctVerdict::Worse;
            }
            // Strictly better than the worst retained key: the worst
            // group can never re-enter the output (the retained key set
            // only ever improves), so evict it for good.
            let worst = worst.clone();
            self.set.remove(&worst);
        }
        self.set.insert(key.clone());
        DistinctVerdict::Admit
    }
}

/// Boxed runtime comparator for buckets.
type BucketCmp<K> = Box<dyn FnMut(&Bucket<K>, &Bucket<K>) -> bool + Send>;
type BucketHeap<K> = BinaryHeapBy<Bucket<K>, BucketCmp<K>>;

/// The histogram-based cutoff filter.
///
/// ```
/// use histok_core::{Bucket, CutoffFilter};
/// use histok_types::SortOrder;
///
/// // Query wants the 4 smallest keys.
/// let mut filter: CutoffFilter<u64> = CutoffFilter::new(4, SortOrder::Ascending);
/// assert!(!filter.eliminate(&1_000)); // nothing established yet
///
/// filter.insert_bucket(Bucket::new(10, 2)); // 2 rows ≤ 10
/// filter.insert_bucket(Bucket::new(50, 2)); // 2 rows ≤ 50 → Σ = 4 = k
/// assert_eq!(filter.cutoff(), Some(&50));
/// assert!(filter.eliminate(&51));
/// assert!(!filter.eliminate(&50)); // ties survive
///
/// filter.insert_bucket(Bucket::new(20, 2)); // sharper: pop the 50-bucket
/// assert_eq!(filter.cutoff(), Some(&20));
/// ```
pub struct CutoffFilter<K: SortKey> {
    order: SortOrder,
    k: u64,
    /// Max-heap w.r.t. output order (i.e. sorted inverse to the output):
    /// the top bucket carries the largest boundary key.
    heap: BucketHeap<K>,
    /// Total rows represented by the queued buckets.
    sum: u64,
    cutoff: Option<K>,
    /// Normalized 8-byte prefix of the cutoff key, cached so the per-row
    /// elimination check is one integer compare in the common case.
    cutoff_prefix: u64,
    /// Gates the prefix fast path (off = always full comparisons).
    norm_prefix_enabled: bool,
    builder: HistogramBuilder<K>,
    policy: SizingPolicy,
    emit_tail: bool,
    /// When false, `should_eliminate` always passes rows through but the
    /// histogram is still built (ablation of Algorithm 1 line 11).
    spill_elimination: bool,
    memory_budget: usize,
    used_bytes: usize,
    metrics: FilterMetrics,
    /// Distinct-key input model (dedup mode); replaces the histogram.
    distinct: Option<DistinctTracker<K>>,
}

impl<K: SortKey> CutoffFilter<K> {
    /// Creates a filter for a query retaining `k` rows in `order`, with the
    /// default sizing policy (50 buckets/run) and 1 MiB queue budget.
    pub fn new(k: u64, order: SortOrder) -> Self {
        Self::with_policy(k, order, SizingPolicy::default())
    }

    /// Creates a filter with an explicit sizing policy.
    pub fn with_policy(k: u64, order: SortOrder, policy: SizingPolicy) -> Self {
        let cmp: BucketCmp<K> = Box::new(move |a, b| order.follows(&a.boundary, &b.boundary));
        CutoffFilter {
            order,
            k: k.max(1),
            heap: BinaryHeapBy::new(cmp),
            sum: 0,
            cutoff: None,
            cutoff_prefix: 0,
            norm_prefix_enabled: true,
            builder: HistogramBuilder::new(),
            policy,
            emit_tail: true,
            spill_elimination: true,
            memory_budget: DEFAULT_FILTER_MEMORY,
            used_bytes: 0,
            metrics: FilterMetrics::default(),
            distinct: None,
        }
    }

    /// Overrides the priority-queue memory budget that triggers
    /// consolidation.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes.max(64);
        self
    }

    /// Controls whether a run's tail rows (after the last full bucket) form
    /// a final bucket. `true` (default) is strictly more informative;
    /// `false` reproduces the paper's idealized model exactly.
    pub fn with_tail_buckets(mut self, emit: bool) -> Self {
        self.emit_tail = emit;
        self
    }

    /// Controls whether rows are eliminated at spill time; when off, the
    /// histogram is still maintained but `should_eliminate` passes
    /// everything through (ablation of Algorithm 1 line 11).
    pub fn with_spill_elimination(mut self, on: bool) -> Self {
        self.spill_elimination = on;
        self
    }

    /// Validates configuration invariants.
    pub fn validate(&self) -> Result<()> {
        self.policy.validate()
    }

    /// The current cutoff key, if established.
    pub fn cutoff(&self) -> Option<&K> {
        self.cutoff.as_ref()
    }

    /// True once a cutoff key has been established (`Σcount ≥ k`).
    pub fn established(&self) -> bool {
        self.cutoff.is_some()
    }

    /// Controls the cached normalized-prefix fast path in
    /// [`CutoffFilter::eliminate`] (on by default).
    pub fn with_norm_prefix(mut self, enabled: bool) -> Self {
        self.norm_prefix_enabled = enabled;
        self
    }

    /// Switches the filter to distinct (dedup) mode: an exact tracker of
    /// the best `k` *distinct* keys replaces the row-count histogram as the
    /// cutoff source. Bucket callbacks from the spill path become no-ops —
    /// their row counts are meaningless when the limit counts groups.
    pub fn with_distinct_tracking(mut self) -> Self {
        self.distinct = Some(DistinctTracker::new(self.k, self.order));
        self
    }

    /// True when the filter runs in distinct (dedup) mode.
    pub fn distinct_mode(&self) -> bool {
        self.distinct.is_some()
    }

    /// Distinct-mode input filtering (Algorithm 1 line 4 adapted to a
    /// DISTINCT limit): classifies `key` against the tracker and tightens
    /// the cutoff when the tracker's worst retained key improves. Returns
    /// [`DistinctVerdict::Admit`] unconditionally outside distinct mode.
    pub fn observe_input(&mut self, key: &K) -> DistinctVerdict {
        let Some(tracker) = &mut self.distinct else { return DistinctVerdict::Admit };
        let verdict = tracker.observe(key);
        if let Some(cut) = tracker.cutoff() {
            let tighter = match &self.cutoff {
                Some(cur) => self.order.precedes(cut, cur),
                None => true,
            };
            if tighter {
                let cut = cut.clone();
                self.set_cutoff(cut);
            }
        }
        verdict
    }

    /// Installs a new cutoff key and refreshes its cached normalized
    /// prefix. All cutoff updates funnel through here.
    fn set_cutoff(&mut self, key: K) {
        if self.norm_prefix_enabled {
            self.cutoff_prefix = key.norm_prefix();
        }
        self.cutoff = Some(key);
        self.metrics.refinements += 1;
    }

    /// The paper's `eliminate(row)`: true iff a cutoff exists and `key`
    /// sorts strictly after it. Rows equal to the cutoff are kept so that
    /// duplicate keys around the kth position are never lost.
    ///
    /// With the prefix fast path on, a differing normalized 8-byte prefix
    /// decides the check with one integer compare; only keys matching the
    /// cutoff's prefix (and wider than 8 normalized bytes) pay a full
    /// comparison.
    #[inline]
    pub fn eliminate(&self, key: &K) -> bool {
        match &self.cutoff {
            Some(cut) => {
                if self.norm_prefix_enabled {
                    let p = key.norm_prefix();
                    if p != self.cutoff_prefix {
                        return match self.order {
                            SortOrder::Ascending => p > self.cutoff_prefix,
                            SortOrder::Descending => p < self.cutoff_prefix,
                        };
                    }
                    if K::norm_prefix_is_exact() {
                        return false; // equal keys: ties survive
                    }
                }
                self.order.follows(key, cut)
            }
            None => false,
        }
    }

    /// Inserts one bucket into the input model and sharpens the cutoff.
    pub fn insert_bucket(&mut self, bucket: Bucket<K>) {
        debug_assert!(bucket.count > 0, "empty buckets carry no information");
        self.metrics.buckets_inserted += 1;
        self.used_bytes += bucket.footprint();
        self.sum += bucket.count;
        self.heap.push(bucket);
        self.sharpen();
        if self.used_bytes > self.memory_budget && self.heap.len() > 1 {
            self.consolidate();
        }
    }

    /// Pops buckets while doing so keeps at least `k` rows represented,
    /// then refreshes the cutoff key.
    fn sharpen(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.sum - top.count >= self.k {
                let popped = self.heap.pop().expect("peeked");
                self.sum -= popped.count;
                self.used_bytes = self.used_bytes.saturating_sub(popped.footprint());
                self.metrics.buckets_popped += 1;
            } else {
                break;
            }
        }
        if self.sum >= self.k {
            let top = self.heap.peek().expect("sum ≥ k implies a bucket");
            let tightened = match &self.cutoff {
                Some(cur) => self.order.precedes(&top.boundary, cur),
                None => true,
            };
            if tightened {
                // The cutoff is monotone: input filtering guarantees no new
                // boundary sorts after the current cutoff.
                let boundary = top.boundary.clone();
                self.set_cutoff(boundary);
            }
        }
    }

    /// §5.1.2 consolidation: replace every queued bucket with a single one
    /// carrying the current top boundary and the total count. Costs one
    /// insertion; loses resolution but never validity.
    fn consolidate(&mut self) {
        let Some(top) = self.heap.peek() else { return };
        let merged = Bucket::new(top.boundary.clone(), self.sum);
        let fp = merged.footprint();
        self.heap.drain_unordered();
        self.heap.push(merged);
        self.used_bytes = fp;
        self.metrics.consolidations += 1;
    }

    /// Externally tightens the cutoff (merge refinement, §4.1). The caller
    /// must guarantee at least `k` rows sort at or before `key` — true for
    /// the last key of any `k`-row merge output. Ignored if not tighter.
    pub fn tighten(&mut self, key: &K) {
        let tighter = match &self.cutoff {
            Some(cur) => self.order.precedes(key, cur),
            None => true,
        };
        if tighter {
            self.set_cutoff(key.clone());
        }
    }

    /// Rows currently represented by the queue.
    pub fn represented_rows(&self) -> u64 {
        self.sum
    }

    /// Buckets currently queued.
    pub fn bucket_count(&self) -> usize {
        self.heap.len()
    }

    /// Approximate bytes used by the queue.
    pub fn memory_used(&self) -> usize {
        self.used_bytes
    }

    /// Activity counters.
    pub fn metrics(&self) -> FilterMetrics {
        self.metrics
    }

    /// The `k` this filter targets.
    pub fn k(&self) -> u64 {
        self.k
    }
}

impl<K: SortKey> SpillObserver<K> for CutoffFilter<K> {
    fn run_started(&mut self, estimated_rows: u64) {
        if self.distinct.is_some() {
            return; // distinct mode: row-count buckets carry no information
        }
        let width = self.policy.width_for_run(estimated_rows.max(1));
        self.builder.start_run(width, self.policy.max_buckets_per_run());
    }

    fn should_eliminate(&mut self, key: &K) -> bool {
        let kill = self.spill_elimination && self.eliminate(key);
        if kill {
            self.metrics.eliminated_at_spill += 1;
        }
        kill
    }

    fn row_spilled(&mut self, key: &K) {
        if self.distinct.is_some() {
            return;
        }
        if let Some(bucket) = self.builder.offer(key) {
            self.insert_bucket(bucket);
        }
    }

    fn run_finished(&mut self) {
        if self.distinct.is_some() {
            return;
        }
        if let Some(tail) = self.builder.finish_run(self.emit_tail) {
            self.insert_bucket(tail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_types::F64Key;

    /// Inserts the decile buckets of one §3.2.1-style run: boundaries at
    /// `scale * i/10` for i = 1..=9, 100 rows each.
    fn insert_decile_run(f: &mut CutoffFilter<F64Key>, scale: f64) {
        for i in 1..=9 {
            f.insert_bucket(Bucket::new(F64Key(scale * i as f64 / 10.0), 100));
        }
    }

    #[test]
    fn no_cutoff_until_k_rows_represented() {
        let mut f: CutoffFilter<F64Key> = CutoffFilter::new(5000, SortOrder::Ascending);
        for _ in 0..5 {
            insert_decile_run(&mut f, 1.0);
        }
        // 5 runs × 900 rows = 4500 < 5000 → nothing established.
        assert!(!f.established());
        assert!(!f.eliminate(&F64Key(0.99)));
    }

    #[test]
    fn paper_trace_cutoff_after_run_six_is_0_9() {
        // §3.2.1: "after run 6 ... eliminate rows with keys above 0.9,
        // because 6 * 900 = 5,400 > 5,000".
        let mut f: CutoffFilter<F64Key> = CutoffFilter::new(5000, SortOrder::Ascending);
        for _ in 0..6 {
            insert_decile_run(&mut f, 1.0);
        }
        assert_eq!(f.cutoff(), Some(&F64Key(0.9)));
        assert!(f.eliminate(&F64Key(0.91)));
        assert!(!f.eliminate(&F64Key(0.9))); // ties survive
        assert_eq!(f.represented_rows(), 5000);
    }

    #[test]
    fn paper_trace_run_seven_ends_at_0_72() {
        let mut f: CutoffFilter<F64Key> = CutoffFilter::new(5000, SortOrder::Ascending);
        for _ in 0..6 {
            insert_decile_run(&mut f, 1.0);
        }
        // Run 7's deciles are 0.09 * i (scale 0.9). Insert while the next
        // boundary survives the current cutoff, exactly like run generation.
        let mut written = Vec::new();
        for i in 1..=9 {
            let b = F64Key(0.9 * i as f64 / 10.0);
            if f.eliminate(&b) {
                break;
            }
            f.insert_bucket(Bucket::new(b, 100));
            written.push(b.get());
        }
        // §3.2.1: run 7 ends with key value 0.72 (8 buckets written).
        assert_eq!(written.len(), 8);
        assert!((written[7] - 0.72).abs() < 1e-12);
        assert_eq!(f.cutoff().unwrap().get(), 0.72);
    }

    #[test]
    fn paper_trace_run_eight_yields_0_6() {
        let mut f: CutoffFilter<F64Key> = CutoffFilter::new(5000, SortOrder::Ascending);
        for _ in 0..6 {
            insert_decile_run(&mut f, 1.0);
        }
        for i in 1..=8 {
            f.insert_bucket(Bucket::new(F64Key(0.9 * i as f64 / 10.0), 100));
        }
        assert_eq!(f.cutoff().unwrap().get(), 0.72);
        // Run 8: deciles 0.072 * i, scale = 0.72.
        let mut last = None;
        for i in 1..=9 {
            let b = F64Key(0.72 * i as f64 / 10.0);
            if f.eliminate(&b) {
                break;
            }
            f.insert_bucket(Bucket::new(b, 100));
            last = Some(b.get());
        }
        // §3.2.1: "After run 8, the new cutoff key is 0.6".
        assert_eq!(f.cutoff().unwrap().get(), 0.6);
        assert!((last.unwrap() - 0.576).abs() < 1e-12);
    }

    #[test]
    fn cutoff_is_monotone_under_any_insertions() {
        let mut f: CutoffFilter<u64> = CutoffFilter::new(10, SortOrder::Ascending);
        let mut last: Option<u64> = None;
        for boundary in [100u64, 90, 95, 80, 85, 70, 60, 65, 50] {
            f.insert_bucket(Bucket::new(boundary, 5));
            if let (Some(prev), Some(cur)) = (last, f.cutoff().copied()) {
                assert!(cur <= prev, "cutoff went backwards: {prev} -> {cur}");
            }
            last = f.cutoff().copied();
        }
    }

    #[test]
    fn descending_queries_mirror() {
        // Top-k LARGEST: cutoff sits below, rows smaller than it die.
        let mut f: CutoffFilter<u64> = CutoffFilter::new(4, SortOrder::Descending);
        f.insert_bucket(Bucket::new(80, 2));
        f.insert_bucket(Bucket::new(60, 2));
        assert_eq!(f.cutoff(), Some(&60));
        assert!(f.eliminate(&59));
        assert!(!f.eliminate(&60));
        assert!(!f.eliminate(&100));
        f.insert_bucket(Bucket::new(90, 2));
        // 90,80,60 represent 6 ≥ 4; popping 60 keeps 4 → cutoff 80.
        assert_eq!(f.cutoff(), Some(&80));
    }

    #[test]
    fn consolidation_collapses_to_one_bucket_and_stays_valid() {
        let mut f: CutoffFilter<u64> =
            CutoffFilter::new(100, SortOrder::Ascending).with_memory_budget(64);
        for i in 0..50u64 {
            f.insert_bucket(Bucket::new(1000 - i, 10));
        }
        assert!(f.metrics().consolidations > 0, "tiny budget must consolidate");
        assert!(f.bucket_count() < 50);
        // Validity: the cutoff still represents ≥ k rows.
        assert!(f.established());
        assert!(f.represented_rows() >= 100);
        // And elimination still behaves.
        let cut = *f.cutoff().unwrap();
        assert!(f.eliminate(&(cut + 1)));
        assert!(!f.eliminate(&(cut - 1)));
    }

    #[test]
    fn consolidation_costs_resolution_not_correctness() {
        // After consolidation the single bucket pins sum at the top
        // boundary; further buckets keep sharpening below it.
        let mut f: CutoffFilter<u64> =
            CutoffFilter::new(10, SortOrder::Ascending).with_memory_budget(64);
        for i in 0..30u64 {
            f.insert_bucket(Bucket::new(500 + i, 1));
        }
        let after_consolidation = *f.cutoff().unwrap();
        for i in 0..20u64 {
            f.insert_bucket(Bucket::new(10 + i, 1));
        }
        assert!(*f.cutoff().unwrap() <= after_consolidation);
    }

    #[test]
    fn observer_path_builds_buckets_from_spills() {
        use histok_sort::SpillObserver;
        let mut f: CutoffFilter<u64> =
            CutoffFilter::with_policy(6, SortOrder::Ascending, SizingPolicy::TargetBuckets(4));
        // Run of estimated 10 rows → width 2.
        f.run_started(10);
        let mut spilled = Vec::new();
        for key in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            if !f.should_eliminate(&key) {
                f.row_spilled(&key);
                spilled.push(key);
            }
        }
        f.run_finished();
        // Buckets (2,2) (4,2) (6,2): after (6,2) the sum hits k=6 and the
        // cutoff 6 eliminates the rest of the very same run — the paper's
        // "the cutoff key may be sharpened and used to eliminate parts of
        // the same, currently being written, run" (§3.1.2).
        assert_eq!(spilled, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(f.cutoff(), Some(&6));
        assert_eq!(f.metrics().eliminated_at_spill, 4);
        // A second run keeps being filtered at spill time.
        f.run_started(10);
        assert!(f.should_eliminate(&7));
        assert!(!f.should_eliminate(&6));
        assert_eq!(f.metrics().eliminated_at_spill, 5);
    }

    #[test]
    fn tail_buckets_add_information() {
        use histok_sort::SpillObserver;
        let mk = |tail: bool| {
            let mut f: CutoffFilter<u64> =
                CutoffFilter::with_policy(4, SortOrder::Ascending, SizingPolicy::FixedWidth(3))
                    .with_tail_buckets(tail);
            f.run_started(5);
            for key in [1u64, 2, 3, 4, 5] {
                f.row_spilled(&key);
            }
            f.run_finished();
            f.cutoff().copied()
        };
        // Width 3 over 5 rows: bucket (3,3) plus tail (5,2).
        assert_eq!(mk(true), Some(5)); // 3+2 = 5 ≥ 4 → cutoff 5
        assert_eq!(mk(false), None); // only 3 rows represented
    }

    #[test]
    fn tighten_only_tightens() {
        let mut f: CutoffFilter<u64> = CutoffFilter::new(2, SortOrder::Ascending);
        f.insert_bucket(Bucket::new(50, 2));
        assert_eq!(f.cutoff(), Some(&50));
        f.tighten(&60); // looser → ignored
        assert_eq!(f.cutoff(), Some(&50));
        f.tighten(&40);
        assert_eq!(f.cutoff(), Some(&40));
        assert!(f.eliminate(&41));
    }

    #[test]
    fn k_of_zero_is_clamped() {
        let f: CutoffFilter<u64> = CutoffFilter::new(0, SortOrder::Ascending);
        assert_eq!(f.k(), 1);
    }

    #[test]
    fn prefix_fast_path_agrees_with_full_comparison() {
        use histok_types::BytesKey;
        // Byte keys sharing 8+ byte prefixes with the cutoff force the
        // full-comparison fallback; everything else must be decided by the
        // prefix with the same verdict as the slow path.
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let cut = BytesKey::from("prefix-prefix-m");
            let mk = |fast: bool| {
                let mut f: CutoffFilter<BytesKey> =
                    CutoffFilter::new(2, order).with_norm_prefix(fast);
                f.insert_bucket(Bucket::new(cut.clone(), 2));
                f
            };
            let (fast, slow) = (mk(true), mk(false));
            let probes = [
                "prefix-prefix-a",
                "prefix-prefix-m",
                "prefix-prefix-mm", // extends the cutoff
                "prefix-prefix-z",
                "prefix",
                "a",
                "z",
                "",
                "prefix-prefix-m\u{0}", // embedded NUL past the cutoff
            ];
            for p in probes {
                let key = BytesKey::from(p);
                assert_eq!(
                    fast.eliminate(&key),
                    slow.eliminate(&key),
                    "probe {p:?}, order {order:?}"
                );
            }
        }
        // Exact-prefix keys (u64) never fall back and still agree.
        let mut fast: CutoffFilter<u64> = CutoffFilter::new(2, SortOrder::Ascending);
        fast.insert_bucket(Bucket::new(100, 2));
        assert!(fast.eliminate(&101));
        assert!(!fast.eliminate(&100));
        assert!(!fast.eliminate(&99));
    }

    #[test]
    fn tighten_refreshes_the_cached_prefix() {
        let mut f: CutoffFilter<u64> = CutoffFilter::new(2, SortOrder::Ascending);
        f.insert_bucket(Bucket::new(50, 2));
        assert!(f.eliminate(&51));
        f.tighten(&40);
        // The fast path must see the new cutoff, not the stale prefix.
        assert!(f.eliminate(&41));
        assert!(!f.eliminate(&40));
    }

    #[test]
    fn distinct_tracking_counts_groups_not_rows() {
        // The counterexample that makes row-count cutoffs unsound under
        // dedup (DESIGN.md §14): k = 2, 100 copies of key 5, then key 6.
        // A histogram would see 100 rows ≤ 5, establish cutoff 5 and kill
        // key 6 — the true second-best group. The tracker never does.
        let mut f: CutoffFilter<u64> =
            CutoffFilter::new(2, SortOrder::Ascending).with_distinct_tracking();
        assert!(f.distinct_mode());
        assert_eq!(f.observe_input(&5), DistinctVerdict::Admit);
        for _ in 0..99 {
            assert_eq!(f.observe_input(&5), DistinctVerdict::Duplicate);
        }
        assert!(f.cutoff().is_none(), "one distinct key proves nothing for k = 2");
        assert!(!f.eliminate(&6));
        assert_eq!(f.observe_input(&6), DistinctVerdict::Admit);
        assert_eq!(f.cutoff(), Some(&6), "two distinct keys tracked: worst is the cutoff");
        assert_eq!(f.observe_input(&7), DistinctVerdict::Worse);
        assert_eq!(f.observe_input(&4), DistinctVerdict::Admit); // evicts 6
        assert_eq!(f.cutoff(), Some(&5));
        assert_eq!(f.observe_input(&6), DistinctVerdict::Worse, "evicted groups stay out");
        // Spill-side elimination keeps ties, kills strictly-worse keys.
        assert!(f.eliminate(&6));
        assert!(!f.eliminate(&5));
    }

    #[test]
    fn distinct_tracking_descending() {
        let mut f: CutoffFilter<u64> =
            CutoffFilter::new(2, SortOrder::Descending).with_distinct_tracking();
        assert_eq!(f.observe_input(&10), DistinctVerdict::Admit);
        assert_eq!(f.observe_input(&20), DistinctVerdict::Admit);
        assert_eq!(f.cutoff(), Some(&10));
        assert_eq!(f.observe_input(&5), DistinctVerdict::Worse);
        assert_eq!(f.observe_input(&30), DistinctVerdict::Admit); // evicts 10
        assert_eq!(f.cutoff(), Some(&20));
    }

    #[test]
    fn distinct_mode_ignores_spill_buckets() {
        use histok_sort::SpillObserver;
        // 100 spilled copies of one key would hand a row-count histogram a
        // cutoff immediately; in distinct mode the spill path must feed
        // nothing into the input model.
        let mut f: CutoffFilter<u64> =
            CutoffFilter::with_policy(4, SortOrder::Ascending, SizingPolicy::FixedWidth(2))
                .with_distinct_tracking();
        f.run_started(100);
        for _ in 0..100 {
            f.row_spilled(&1);
        }
        f.run_finished();
        assert_eq!(f.metrics().buckets_inserted, 0);
        assert!(f.cutoff().is_none());
    }

    #[test]
    fn never_eliminates_a_true_top_k_key() {
        // Adversarial mix of bucket sizes: the invariant Σcount ≥ k over
        // keys ≤ cutoff must protect every true top-k key.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let k = 57u64;
        let mut f: CutoffFilter<u64> = CutoffFilter::new(k, SortOrder::Ascending);
        let mut spilled: Vec<u64> = Vec::new();
        for _ in 0..2000 {
            let key: u64 = rng.gen_range(0..100_000);
            if f.eliminate(&key) {
                continue; // eliminated rows are by definition > cutoff
            }
            spilled.push(key);
            // Every spilled row becomes its own bucket (width-1 extreme).
            f.insert_bucket(Bucket::new(key, 1));
        }
        // The k smallest *spilled* keys must be the k smallest overall:
        // elimination only ever removed keys > some valid cutoff, i.e. keys
        // with ≥ k spilled keys below them.
        spilled.sort_unstable();
        let kth = spilled[(k - 1) as usize];
        assert!(f.cutoff().is_some());
        assert!(
            *f.cutoff().unwrap() >= kth,
            "cutoff {} below true kth spilled key {kth}",
            f.cutoff().unwrap()
        );
    }
}
