//! Grouped top-k (§4.3): "top K for groups and partitions".
//!
//! One cutoff filter per group — "if there are customers in 180 countries,
//! each country has its own histogram priority queue, cutoff key, etc."
//! Each group is an independent [`HistogramTopK`] sharing one storage
//! backend (run-object names are process-unique). The caller divides the
//! total memory budget among groups via the per-group config; smaller
//! histogram budgets per group are supported exactly as §4.3 suggests.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use histok_storage::StorageBackend;
use histok_types::{Error, Result, Row, SortKey, SortSpec};

use crate::config::TopKConfig;
use crate::metrics::OperatorMetrics;
use crate::topk::{HistogramTopK, TopKOperator};

/// Per-group top-k over a stream of `(group, row)` pairs.
pub struct GroupedTopK<G, K: SortKey> {
    spec: SortSpec,
    config: TopKConfig,
    backend: Arc<dyn StorageBackend>,
    groups: HashMap<G, HistogramTopK<K>>,
    finished: bool,
}

impl<G, K> GroupedTopK<G, K>
where
    G: Eq + Hash + Ord + Clone + Send,
    K: SortKey,
{
    /// Creates the operator; `config` applies to *each* group (size its
    /// budgets accordingly).
    pub fn new(
        spec: SortSpec,
        config: TopKConfig,
        backend: impl StorageBackend + 'static,
    ) -> Result<Self> {
        spec.validate()?;
        config.validate()?;
        // Materialize one shared I/O pool up front: every group's
        // sub-operator clones this config, so they all submit to the same
        // `io_threads` workers instead of spawning a private pool per
        // group (up to 4 × G background threads before this).
        let config = config.with_shared_io_scheduler();
        Ok(GroupedTopK {
            spec,
            config,
            backend: Arc::new(backend),
            groups: HashMap::new(),
            finished: false,
        })
    }

    /// Offers one row to its group's operator (created on first sight).
    pub fn push(&mut self, group: G, row: Row<K>) -> Result<()> {
        if self.finished {
            return Err(Error::InvalidConfig("push after finish".into()));
        }
        let op = match self.groups.entry(group) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(HistogramTopK::with_arc(
                self.spec,
                self.config.clone(),
                self.backend.clone(),
            )?),
        };
        op.push(row)
    }

    /// Number of groups seen so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Ends the input and returns each group's top-k, ordered by group.
    pub fn finish(&mut self) -> Result<Vec<(G, Vec<Row<K>>)>> {
        if self.finished {
            return Err(Error::InvalidConfig("finish called twice".into()));
        }
        self.finished = true;
        let mut out: Vec<(G, Vec<Row<K>>)> = Vec::with_capacity(self.groups.len());
        for (group, mut op) in self.groups.drain() {
            let rows: Result<Vec<Row<K>>> = op.finish()?.collect();
            out.push((group, rows?));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Aggregated metrics across every group. Group workspaces coexist in
    /// memory, so peak bytes are summed rather than maxed.
    pub fn metrics(&self) -> OperatorMetrics {
        let mut total = OperatorMetrics::default();
        let mut peak_sum = 0usize;
        for op in self.groups.values() {
            let m = op.metrics();
            peak_sum += m.peak_memory_bytes;
            total = total.merged(&m);
        }
        total.peak_memory_bytes = peak_sum;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    fn config(budget: usize) -> TopKConfig {
        TopKConfig::builder().memory_budget(budget).block_bytes(1024).build().unwrap()
    }

    #[test]
    fn per_group_top_k_in_memory() {
        let mut op: GroupedTopK<&'static str, u64> =
            GroupedTopK::new(SortSpec::ascending(2), config(1 << 20), MemoryBackend::new())
                .unwrap();
        op.push("us", Row::key_only(5)).unwrap();
        op.push("us", Row::key_only(1)).unwrap();
        op.push("us", Row::key_only(3)).unwrap();
        op.push("de", Row::key_only(9)).unwrap();
        op.push("de", Row::key_only(7)).unwrap();
        assert_eq!(op.group_count(), 2);
        let out = op.finish().unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "de");
        assert_eq!(out[0].1.iter().map(|r| r.key).collect::<Vec<_>>(), vec![7, 9]);
        assert_eq!(out[1].0, "us");
        assert_eq!(out[1].1.iter().map(|r| r.key).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn groups_spill_independently() {
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        // ~40 rows of budget per group, k = 100 → every group goes external.
        let mut op: GroupedTopK<u32, u64> = GroupedTopK::new(
            SortSpec::ascending(100),
            config(40 * row_bytes),
            MemoryBackend::new(),
        )
        .unwrap();
        let mut rows: Vec<(u32, u64)> = Vec::new();
        for g in 0..4u32 {
            for k in 0..3000u64 {
                rows.push((g, k));
            }
        }
        rows.shuffle(&mut StdRng::seed_from_u64(13));
        for (g, k) in rows {
            op.push(g, Row::key_only(k)).unwrap();
        }
        let m = op.metrics();
        assert!(m.spilled);
        assert!(m.io.rows_written < 12_000, "groups should filter, spilled {}", m.io.rows_written);
        let out = op.finish().unwrap();
        assert_eq!(out.len(), 4);
        for (_, rows) in out {
            assert_eq!(
                rows.iter().map(|r| r.key).collect::<Vec<_>>(),
                (0..100).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn metrics_sum_io_and_peaks_across_groups() {
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let mut op: GroupedTopK<u32, u64> = GroupedTopK::new(
            SortSpec::ascending(100),
            config(40 * row_bytes),
            MemoryBackend::new(),
        )
        .unwrap();
        for g in 0..3u32 {
            for k in 0..2000u64 {
                op.push(g, Row::key_only(k)).unwrap();
            }
        }
        let m = op.metrics();
        assert_eq!(m.rows_in, 6_000);
        assert!(m.spilled);
        assert!(m.io.write_ops > 0);
        assert_eq!(m.io.write_latency.count, m.io.write_ops, "latency histograms not merged");
        assert!(m.phases.run_generation_ns > 0, "phase timings not merged");
        // Workspaces coexist: aggregate peak covers all three groups.
        assert!(m.peak_memory_bytes >= 3 * 30 * row_bytes, "peak {}", m.peak_memory_bytes);
        let _ = op.finish().unwrap();
    }

    #[test]
    fn skewed_group_sizes() {
        let mut op: GroupedTopK<u8, u64> =
            GroupedTopK::new(SortSpec::ascending(3), config(1 << 20), MemoryBackend::new())
                .unwrap();
        // Group 0 has one row; group 1 has many.
        op.push(0, Row::key_only(42)).unwrap();
        for k in (0..100u64).rev() {
            op.push(1, Row::key_only(k)).unwrap();
        }
        let out = op.finish().unwrap();
        assert_eq!(out[0].1.len(), 1);
        assert_eq!(out[1].1.iter().map(|r| r.key).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn finish_twice_errors() {
        let mut op: GroupedTopK<u8, u64> =
            GroupedTopK::new(SortSpec::ascending(1), config(1024), MemoryBackend::new()).unwrap();
        op.finish().unwrap();
        assert!(op.finish().is_err());
        assert!(op.push(0, Row::key_only(1)).is_err());
    }
}
