//! Approximate top-k (§4.5).
//!
//! The paper identifies two forms of approximation — an approximate *row
//! count* ("a top 100 request may produce 90, 100, or 110 rows") and an
//! approximate *selection* ("100 rows, all of which belong to the true top
//! 120") — and notes combinations are possible. [`ApproximateTopK`]
//! implements the combination with a single slack knob ε:
//!
//! * the output's first ⌈k·(1−ε)⌉ rows are the **exact** best rows
//!   (rows that good sort at or before every cutoff the relaxed filter
//!   ever publishes, so they are never eliminated);
//! * the remaining positions up to `k` are filled best-effort, and the
//!   total may fall short of `k` — the paper's "even a conservatively
//!   estimated final cutoff key may lead to fewer final result rows than
//!   requested";
//! * in exchange, the filter establishes its cutoff after ⌈k·(1−ε)⌉
//!   represented rows instead of `k` and pops harder, spilling strictly
//!   less than the exact operator on the same input.

use histok_storage::StorageBackend;
use histok_types::{Error, Result, Row, SortKey, SortSpec};

use crate::config::TopKConfig;
use crate::metrics::OperatorMetrics;
use crate::topk::{HistogramTopK, RowStream, TopKOperator};

/// Histogram top-k with approximation slack (§4.5).
pub struct ApproximateTopK<K: SortKey> {
    inner: HistogramTopK<K>,
    slack: f64,
    guaranteed: u64,
}

impl<K: SortKey> ApproximateTopK<K> {
    /// Creates the operator with slack `epsilon ∈ [0, 1)`; `epsilon = 0`
    /// is the exact operator.
    pub fn new(
        spec: SortSpec,
        mut config: TopKConfig,
        backend: impl StorageBackend + 'static,
        epsilon: f64,
    ) -> Result<Self> {
        if !(0.0..1.0).contains(&epsilon) {
            return Err(Error::InvalidConfig(format!(
                "approximation slack must be in [0, 1), got {epsilon}"
            )));
        }
        config.approx_slack = epsilon;
        let guaranteed = ((spec.retained() as f64) * (1.0 - epsilon)).ceil() as u64;
        Ok(ApproximateTopK {
            inner: HistogramTopK::new(spec, config, backend)?,
            slack: epsilon,
            guaranteed,
        })
    }

    /// The number of leading output rows guaranteed to be the exact best:
    /// ⌈k·(1−ε)⌉.
    pub fn guaranteed_rows(&self) -> u64 {
        self.guaranteed
    }

    /// The configured slack.
    pub fn slack(&self) -> f64 {
        self.slack
    }
}

impl<K: SortKey> TopKOperator<K> for ApproximateTopK<K> {
    fn push(&mut self, row: Row<K>) -> Result<()> {
        self.inner.push(row)
    }

    fn finish(&mut self) -> Result<RowStream<K>> {
        self.inner.finish()
    }

    fn metrics(&self) -> OperatorMetrics {
        self.inner.metrics()
    }

    fn algorithm(&self) -> &'static str {
        "approximate-histogram-topk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    const INPUT: u64 = 60_000;
    const K: u64 = 2_000;
    const MEM_ROWS: usize = 150;

    fn config() -> TopKConfig {
        TopKConfig::builder().memory_budget(MEM_ROWS * 60).block_bytes(1024).build().unwrap()
    }

    fn shuffled(seed: u64) -> Vec<u64> {
        let mut keys: Vec<u64> = (0..INPUT).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(seed));
        keys
    }

    fn run(epsilon: f64, keys: &[u64]) -> (Vec<u64>, OperatorMetrics) {
        let mut op =
            ApproximateTopK::new(SortSpec::ascending(K), config(), MemoryBackend::new(), epsilon)
                .unwrap();
        for &k in keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        (out, op.metrics())
    }

    #[test]
    fn zero_slack_is_exact() {
        let keys = shuffled(1);
        let (out, _) = run(0.0, &keys);
        assert_eq!(out, (0..K).collect::<Vec<_>>());
    }

    #[test]
    fn guaranteed_prefix_is_exact() {
        let keys = shuffled(2);
        for epsilon in [0.05, 0.1, 0.25] {
            let (out, _) = run(epsilon, &keys);
            let guaranteed = ((K as f64) * (1.0 - epsilon)).ceil() as usize;
            assert!(out.len() >= guaranteed, "ε={epsilon}: only {} rows", out.len());
            assert!(out.len() as u64 <= K);
            // The guaranteed prefix is exactly the true best rows.
            assert_eq!(
                &out[..guaranteed],
                &(0..guaranteed as u64).collect::<Vec<_>>()[..],
                "ε={epsilon}"
            );
            // Everything returned is sorted.
            assert!(out.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn slack_reduces_spilling() {
        let keys = shuffled(3);
        let (_, exact) = run(0.0, &keys);
        let (_, approx) = run(0.2, &keys);
        assert!(
            approx.rows_spilled() < exact.rows_spilled(),
            "slack did not reduce spill: {} vs {}",
            approx.rows_spilled(),
            exact.rows_spilled()
        );
    }

    #[test]
    fn accessors_report_configuration() {
        let op: ApproximateTopK<u64> =
            ApproximateTopK::new(SortSpec::ascending(100), config(), MemoryBackend::new(), 0.1)
                .unwrap();
        assert_eq!(op.guaranteed_rows(), 90);
        assert!((op.slack() - 0.1).abs() < 1e-12);
        assert_eq!(op.algorithm(), "approximate-histogram-topk");
    }

    #[test]
    fn invalid_slack_rejected() {
        for bad in [1.0, 1.5, -0.01] {
            assert!(ApproximateTopK::<u64>::new(
                SortSpec::ascending(10),
                config(),
                MemoryBackend::new(),
                bad
            )
            .is_err());
        }
    }

    #[test]
    fn in_memory_inputs_are_unaffected() {
        // While everything fits in memory, the filter never acts — the
        // answer is exact regardless of slack.
        let mut op = ApproximateTopK::new(
            SortSpec::ascending(10),
            TopKConfig::builder().memory_budget(1 << 20).build().unwrap(),
            MemoryBackend::new(),
            0.3,
        )
        .unwrap();
        for k in (0..1_000u64).rev() {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
