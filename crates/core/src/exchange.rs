//! The alternative distributed top-k of §4.4: consumer-side sort,
//! producer-side filtering.
//!
//! "An alternative approach puts the sort and top logic on the consumer
//! side of the data exchange and the filtering on the producer side. The
//! producers ship to the consumers full data packets and the consumers
//! send to the producers flow control packets containing the current
//! cutoff key. This alternative implementation approach promises less
//! development effort but probably also suffers from lower effectiveness
//! than sharing histogram priority queues."
//!
//! [`ExchangeTopK`] implements exactly that: producer threads scan their
//! partitions and pre-filter with the *last cutoff they received*; one
//! consumer thread runs the ordinary [`HistogramTopK`] and publishes its
//! cutoff back through a shared slot after every packet. The integration
//! tests verify the paper's prediction — correct results, but more rows
//! shipped/spilled than [`crate::ParallelTopK`]'s shared-queue design,
//! because producers always filter with a slightly stale cutoff.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::RwLock;

use histok_storage::StorageBackend;
use histok_types::{Error, Result, Row, SortKey, SortSpec};

use crate::config::TopKConfig;
use crate::metrics::OperatorMetrics;
use crate::topk::{HistogramTopK, RowStream, TopKOperator};

/// Rows per data packet shipped producer → consumer.
const PACKET_ROWS: usize = 512;

/// Shared flow-control state: the consumer's latest cutoff key.
struct FlowControl<K> {
    cutoff: RwLock<Option<K>>,
    shipped: std::sync::atomic::AtomicU64,
    filtered_at_producer: std::sync::atomic::AtomicU64,
}

/// A handle held by one producer thread.
///
/// Producers push rows from their partition; rows past the last received
/// cutoff are dropped before they ever cross the exchange.
pub struct Producer<K: SortKey> {
    spec: SortSpec,
    flow: Arc<FlowControl<K>>,
    tx: Sender<Vec<Row<K>>>,
    packet: Vec<Row<K>>,
}

impl<K: SortKey> Producer<K> {
    /// Offers one row from this producer's partition.
    pub fn push(&mut self, row: Row<K>) -> Result<()> {
        // Producer-side filtering with the (possibly stale) cutoff.
        if let Some(cut) = &*self.flow.cutoff.read() {
            if self.spec.order.follows(&row.key, cut) {
                self.flow.filtered_at_producer.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(());
            }
        }
        self.packet.push(row);
        if self.packet.len() >= PACKET_ROWS {
            self.ship()?;
        }
        Ok(())
    }

    fn ship(&mut self) -> Result<()> {
        if self.packet.is_empty() {
            return Ok(());
        }
        let packet = std::mem::replace(&mut self.packet, Vec::with_capacity(PACKET_ROWS));
        self.flow.shipped.fetch_add(packet.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.tx.send(packet).map_err(|_| Error::InvalidConfig("consumer terminated early".into()))
    }

    /// Flushes this producer's remaining packet and closes its stream.
    pub fn finish(mut self) -> Result<()> {
        self.ship()
    }
}

/// What the consumer thread hands back at the end: the output stream and
/// the operator itself (metrics are read only after the stream is drained,
/// so the final-merge I/O and timing are included).
type ConsumerResult<K> = Result<(RowStream<K>, HistogramTopK<K>)>;

/// §4.4's producer/consumer exchange: one consumer top-k, producer-side
/// pre-filtering driven by flow-control cutoff packets.
pub struct ExchangeTopK<K: SortKey> {
    flow: Arc<FlowControl<K>>,
    tx: Option<Sender<Vec<Row<K>>>>,
    consumer: Option<JoinHandle<ConsumerResult<K>>>,
    spec: SortSpec,
}

impl<K: SortKey> ExchangeTopK<K> {
    /// Spawns the consumer; call [`ExchangeTopK::producer`] once per
    /// producer thread, then [`ExchangeTopK::finish`].
    pub fn new(
        spec: SortSpec,
        config: TopKConfig,
        backend: impl StorageBackend + 'static,
    ) -> Result<Self> {
        spec.validate()?;
        config.validate()?;
        // Pin the consumer's I/O pool here so repeated exchanges built
        // from one shared config reuse a caller-injected pool.
        let config = config.with_shared_io_scheduler();
        let flow = Arc::new(FlowControl {
            cutoff: RwLock::new(None),
            shipped: std::sync::atomic::AtomicU64::new(0),
            filtered_at_producer: std::sync::atomic::AtomicU64::new(0),
        });
        let (tx, rx) = bounded::<Vec<Row<K>>>(64);
        let consumer_flow = flow.clone();
        let consumer = std::thread::spawn(move || -> ConsumerResult<K> {
            let mut op = HistogramTopK::new(spec, config, backend)?;
            for packet in rx {
                for row in packet {
                    op.push(row)?;
                }
                // Flow-control packet back to the producers: the current
                // cutoff key (one publish per data packet, as in §4.4).
                let cutoff = op.cutoff();
                *consumer_flow.cutoff.write() = cutoff;
            }
            let stream = op.finish()?;
            Ok((stream, op))
        });
        Ok(ExchangeTopK { flow, tx: Some(tx), consumer: Some(consumer), spec })
    }

    /// Creates a producer handle (clone-free; call once per partition).
    pub fn producer(&self) -> Result<Producer<K>> {
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| Error::InvalidConfig("exchange already finished".into()))?
            .clone();
        Ok(Producer {
            spec: self.spec,
            flow: self.flow.clone(),
            tx,
            packet: Vec::with_capacity(PACKET_ROWS),
        })
    }

    /// Closes the exchange (all producers must have finished) and returns
    /// the output stream plus the consumer's metrics.
    ///
    /// The output (at most `offset + limit` rows) is materialized here so
    /// the metrics can cover the consumer's final merge; a lazily-merged
    /// stream would be snapshotted with the merge phase still pending.
    pub fn finish(mut self) -> Result<(RowStream<K>, ExchangeMetrics)> {
        drop(self.tx.take()); // close the channel once producers are done
        let handle = self
            .consumer
            .take()
            .ok_or_else(|| Error::InvalidConfig("finish called twice".into()))?;
        let (stream, op) =
            handle.join().map_err(|_| Error::InvalidConfig("consumer panicked".into()))??;
        let rows = stream.collect::<Result<Vec<_>>>()?;
        let operator = op.metrics();
        let stream: RowStream<K> = Box::new(rows.into_iter().map(Ok));
        Ok((
            stream,
            ExchangeMetrics {
                operator,
                rows_shipped: self.flow.shipped.load(std::sync::atomic::Ordering::Relaxed),
                filtered_at_producer: self
                    .flow
                    .filtered_at_producer
                    .load(std::sync::atomic::Ordering::Relaxed),
            },
        ))
    }
}

/// Metrics of one exchange execution.
#[derive(Debug, Clone)]
pub struct ExchangeMetrics {
    /// The consumer operator's metrics.
    pub operator: OperatorMetrics,
    /// Rows that crossed the exchange (network traffic in a real system).
    pub rows_shipped: u64,
    /// Rows the producers dropped using flow-control cutoffs.
    pub filtered_at_producer: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use histok_workload::Workload;

    fn config() -> TopKConfig {
        TopKConfig::builder().memory_budget(2_000 * 64).block_bytes(2048).build().unwrap()
    }

    fn run_exchange(producers: usize, rows: u64, k: u64) -> (Vec<f64>, ExchangeMetrics) {
        let exchange =
            ExchangeTopK::new(SortSpec::ascending(k), config(), MemoryBackend::new()).unwrap();
        let w = Workload::uniform(rows, 64);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for p in 0..producers {
                let mut producer = exchange.producer().unwrap();
                let rows_iter = w.rows();
                handles.push(scope.spawn(move || {
                    for (i, row) in rows_iter.enumerate() {
                        if i % producers == p {
                            producer.push(row).unwrap();
                        }
                    }
                    producer.finish().unwrap();
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        let (stream, metrics) = exchange.finish().unwrap();
        let out: Vec<f64> = stream.map(|r| r.unwrap().key.get()).collect();
        (out, metrics)
    }

    #[test]
    fn exchange_produces_the_exact_top_k() {
        let (out, metrics) = run_exchange(3, 60_000, 2_000);
        assert_eq!(out.len(), 2_000);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1_999], 2_000.0);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(metrics.operator.rows_in, metrics.rows_shipped);
    }

    #[test]
    fn consumer_metrics_cover_the_final_merge() {
        let (out, metrics) = run_exchange(2, 60_000, 4_000);
        assert_eq!(out.len(), 4_000);
        assert!(metrics.operator.spilled, "workload must spill to exercise the merge");
        assert!(metrics.operator.io.rows_read > 0, "merge reads missing");
        assert!(metrics.operator.phases.final_merge_ns > 0, "merge phase time missing");
        assert!(metrics.operator.phases.run_generation_ns > 0);
    }

    #[test]
    fn producers_filter_with_flow_control() {
        let (_, metrics) = run_exchange(4, 120_000, 2_000);
        // Most of the input never crosses the exchange.
        assert!(
            metrics.filtered_at_producer > 60_000,
            "producers filtered only {}",
            metrics.filtered_at_producer
        );
        assert!(metrics.rows_shipped < 60_000, "shipped {}", metrics.rows_shipped);
    }

    #[test]
    fn descending_exchange_with_payloads() {
        let exchange: ExchangeTopK<histok_types::F64Key> =
            ExchangeTopK::new(SortSpec::descending(300), config(), MemoryBackend::new()).unwrap();
        let w = Workload::uniform(20_000, 65).with_payload_bytes(16);
        std::thread::scope(|scope| {
            for p in 0..2usize {
                let mut producer = exchange.producer().unwrap();
                let rows_iter = w.rows();
                scope.spawn(move || {
                    for (i, row) in rows_iter.enumerate() {
                        if i % 2 == p {
                            producer.push(row).unwrap();
                        }
                    }
                    producer.finish().unwrap();
                });
            }
        });
        let (stream, _) = exchange.finish().unwrap();
        let out: Vec<f64> = stream
            .map(|r| {
                let row = r.unwrap();
                assert_eq!(row.payload.len(), 16);
                row.key.get()
            })
            .collect();
        assert_eq!(out.len(), 300);
        assert_eq!(out[0], 20_000.0);
        assert!(out.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn producer_after_finish_is_rejected() {
        let exchange: ExchangeTopK<u64> =
            ExchangeTopK::new(SortSpec::ascending(1), config(), MemoryBackend::new()).unwrap();
        let (stream, _) = exchange.finish().unwrap();
        assert_eq!(stream.count(), 0);
    }

    #[test]
    fn single_producer_degenerates_to_plain_topk() {
        let (out, _) = run_exchange(1, 10_000, 500);
        assert_eq!(out, (1..=500).map(f64::from).collect::<Vec<_>>());
    }
}
