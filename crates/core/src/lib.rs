//! # histok-core
//!
//! The paper's contribution and its baselines:
//!
//! * [`CutoffFilter`] — the histogram priority queue that models the input
//!   and derives an ever-sharpening cutoff key (§3.1.2).
//! * [`HistogramTopK`] — the adaptive top-k operator: in-memory priority
//!   queue while the output fits, histogram-filtered external merge sort
//!   beyond (§3.1).
//! * Baselines: [`InMemoryTopK`] (§2.3), [`TraditionalExternalTopK`]
//!   (§2.4), [`OptimizedExternalTopK`] (§2.5 / [Graefe'08]).
//! * Extensions from §4: merge-time offset fast-skipping ([`offset`],
//!   §4.1), segmented execution over prefix-sorted inputs
//!   ([`SegmentedTopK`], §4.2), grouped top-k ([`GroupedTopK`], §4.3),
//!   parallel top-k with a shared filter ([`ParallelTopK`], §4.4) and
//!   approximate top-k ([`ApproximateTopK`], §4.5). `OFFSET` clauses
//!   (§2.7) are supported by every operator through
//!   [`histok_types::SortSpec`]'s `offset`.
//! * In-sort aggregation (DESIGN.md §14): `DISTINCT` / `GROUP BY`
//!   duplicate folding inside the sort via [`TopKConfig`]'s `dedup` /
//!   `aggregate`, and "top-k groups by aggregate value" through
//!   [`GroupedAggTopK`].

#![deny(missing_docs)]

pub mod approximate;
pub mod config;
pub mod cutoff;
pub mod exchange;
pub mod grouped;
pub mod grouped_agg;
pub mod histogram;
pub mod metrics;
pub mod offset;
pub mod parallel;
pub mod segmented;
pub mod sizing;
pub mod topk;

pub use approximate::ApproximateTopK;
pub use config::{RunGenKind, RunGenMode, TopKConfig, TopKConfigBuilder};
pub use cutoff::{CutoffFilter, DistinctVerdict, FilterMetrics, DEFAULT_FILTER_MEMORY};
pub use exchange::{ExchangeMetrics, ExchangeTopK, Producer};
pub use grouped::GroupedTopK;
pub use grouped_agg::{AggGroup, GroupedAggTopK};
pub use histogram::{Bucket, HistogramBuilder};
pub use metrics::OperatorMetrics;
pub use offset::fast_skip_sources;
pub use parallel::ParallelTopK;
pub use segmented::SegmentedTopK;
pub use sizing::SizingPolicy;
pub use topk::{
    HistogramTopK, InMemoryTopK, OptimizedExternalTopK, RowStream, TopKOperator,
    TraditionalExternalTopK,
};
