//! Operator-level metrics: the quantities the paper's evaluation reports.

use histok_sort::{CascadeStats, CmpSnapshot};
use histok_storage::IoStatsSnapshot;
use histok_types::PhaseTotals;

use crate::cutoff::FilterMetrics;

/// Everything a top-k operator can report about one execution.
#[derive(Debug, Clone, Default)]
pub struct OperatorMetrics {
    /// Rows pushed into the operator.
    pub rows_in: u64,
    /// Rows eliminated before entering the sort workspace (Algorithm 1
    /// line 4, plus in-memory priority-queue rejections).
    pub eliminated_at_input: u64,
    /// Rows eliminated at spill time (Algorithm 1 line 11).
    pub eliminated_at_spill: u64,
    /// Secondary-storage traffic.
    pub io: IoStatsSnapshot,
    /// Cutoff-filter activity (zeroed for operators without one).
    pub filter: FilterMetrics,
    /// True if the operator left the in-memory mode.
    pub spilled: bool,
    /// High-water mark of workspace bytes.
    pub peak_memory_bytes: usize,
    /// Early merge steps performed (optimized baseline only).
    pub early_merges: u64,
    /// Sort-path comparison counts: duels decided on offset-value codes /
    /// normalized prefixes vs. full key comparisons.
    pub cmp: CmpSnapshot,
    /// Wall-clock breakdown by execution phase (in-memory accumulation, run
    /// generation including spill writes, final merge). Timed with one
    /// `Instant` pair per phase transition — never per row.
    pub phases: PhaseTotals,
    /// Worker threads (key ranges) of the final merge; 1 = serial.
    pub merge_partitions: u64,
    /// Rows each final-merge partition emitted, in key-range order; empty
    /// when the merge ran serially.
    pub partition_rows: Vec<u64>,
    /// Intermediate cascade-merge pass counters (DESIGN.md §11); all zero
    /// when the run count never exceeded the merge fan-in.
    pub cascade: CascadeStats,
    /// Nanoseconds this query waited in a server's admission queue before
    /// its memory lease was granted (0 for standalone execution).
    pub queued_ns: u64,
    /// Duplicate rows folded into their group's surviving row, anywhere in
    /// the pipeline: run generation, merge duels, the in-memory store.
    /// Zero unless [`dedup`](crate::TopKConfig::dedup) or
    /// [`aggregate`](crate::TopKConfig::aggregate) is on.
    pub rows_folded: u64,
    /// Encoded bytes of duplicates absorbed *before* reaching storage
    /// (fold-at-insert in run generation, in-memory folding) — spill
    /// bandwidth the early fold saved outright.
    pub bytes_folded_pre_spill: u64,
}

impl OperatorMetrics {
    /// Aggregates this execution with another (a segment, a group, a
    /// worker): counters and phase/latency histograms sum, `spilled` ORs.
    /// `peak_memory_bytes` takes the max — right for sub-operators that run
    /// one at a time; aggregations whose workspaces coexist (e.g. grouped
    /// execution) should sum the peaks themselves.
    pub fn merged(&self, other: &OperatorMetrics) -> OperatorMetrics {
        OperatorMetrics {
            rows_in: self.rows_in.saturating_add(other.rows_in),
            eliminated_at_input: self.eliminated_at_input.saturating_add(other.eliminated_at_input),
            eliminated_at_spill: self.eliminated_at_spill.saturating_add(other.eliminated_at_spill),
            io: self.io.merged(&other.io),
            filter: self.filter.merged(&other.filter),
            spilled: self.spilled || other.spilled,
            peak_memory_bytes: self.peak_memory_bytes.max(other.peak_memory_bytes),
            early_merges: self.early_merges.saturating_add(other.early_merges),
            cmp: self.cmp.merged(&other.cmp),
            phases: self.phases.merged(&other.phases),
            merge_partitions: self.merge_partitions.max(other.merge_partitions),
            partition_rows: if self.partition_rows.len() >= other.partition_rows.len() {
                self.partition_rows.clone()
            } else {
                other.partition_rows.clone()
            },
            cascade: self.cascade.merged(&other.cascade),
            queued_ns: self.queued_ns.saturating_add(other.queued_ns),
            rows_folded: self.rows_folded.saturating_add(other.rows_folded),
            bytes_folded_pre_spill: self
                .bytes_folded_pre_spill
                .saturating_add(other.bytes_folded_pre_spill),
        }
    }

    /// Rows written to secondary storage — the paper's "Rows" column.
    pub fn rows_spilled(&self) -> u64 {
        self.io.rows_written
    }

    /// Runs created — the paper's "Runs" column.
    pub fn runs(&self) -> u64 {
        self.io.runs_created
    }

    /// Fraction of input rows that reached secondary storage (1.0 = spilled
    /// everything, like the traditional algorithm).
    pub fn spill_fraction(&self) -> f64 {
        if self.rows_in == 0 {
            0.0
        } else {
            self.io.rows_written as f64 / self.rows_in as f64
        }
    }

    /// Nanoseconds the operator's compute thread spent blocked on storage
    /// (synchronous I/O, pipeline backpressure, waiting for prefetched
    /// blocks).
    pub fn io_wait_ns(&self) -> u64 {
        self.io.io_wait_ns
    }

    /// Nanoseconds of storage latency served on background I/O threads —
    /// the latency the overlap layer hid from the compute thread.
    pub fn overlapped_io_ns(&self) -> u64 {
        self.io.overlapped_io_ns
    }

    /// Load imbalance of the partitioned merge: the busiest partition's
    /// rows over the mean (1.0 = perfectly balanced splitters; 0.0 when
    /// the merge ran serially or emitted nothing).
    pub fn partition_skew(&self) -> f64 {
        let n = self.partition_rows.len();
        if n == 0 {
            return 0.0;
        }
        let total: u64 = self.partition_rows.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let max = *self.partition_rows.iter().max().unwrap_or(&0);
        max as f64 * n as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_fraction_handles_empty_input() {
        let m = OperatorMetrics::default();
        assert_eq!(m.spill_fraction(), 0.0);
    }

    #[test]
    fn derived_columns_read_io_snapshot() {
        let mut m = OperatorMetrics { rows_in: 100, ..Default::default() };
        m.io.rows_written = 25;
        m.io.runs_created = 3;
        assert_eq!(m.rows_spilled(), 25);
        assert_eq!(m.runs(), 3);
        assert!((m.spill_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn partition_skew_is_max_over_mean() {
        let m = OperatorMetrics {
            merge_partitions: 4,
            partition_rows: vec![100, 100, 100, 100],
            ..Default::default()
        };
        assert!((m.partition_skew() - 1.0).abs() < 1e-12);
        let skewed = OperatorMetrics { partition_rows: vec![300, 50, 50, 0], ..Default::default() };
        assert!((skewed.partition_skew() - 3.0).abs() < 1e-12);
        assert_eq!(OperatorMetrics::default().partition_skew(), 0.0);
    }
}
