//! The optimized external-merge-sort top-k of [Graefe'08] — the paper's
//! baseline (§2.5, §5.1.3).
//!
//! Beyond the traditional algorithm it applies three optimizations:
//!
//! 1. **run size ≤ k** — no run ever needs more rows than the output;
//! 2. **kth-key filter** — once any single run holds `k` rows, its `k`th
//!    key is a valid cutoff for all further input;
//! 3. **early merge step** — when `k` exceeds a run (the paper's target
//!    regime), runs are merged early into an intermediate run of `k` rows
//!    whose last key becomes the cutoff.
//!
//! Compared to the histogram algorithm this establishes a cutoff *later*
//! (a full merge step must complete first), pays merge I/O to sharpen it,
//! and disrupts pipelined run generation — exactly the costs §3.2.1
//! quantifies ("our algorithm will write 12× less input rows compared to
//! the optimized external merge sort").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use histok_sort::run_gen::{BatchSort, ReplacementSelection, ResiduePolicy, RunGenerator};
use histok_sort::{
    merge_runs_partitioned, merge_runs_to_new_tuned, merge_sources_tuned, plan_merges_cascade,
    BatchedMerge, CascadeStats, CmpStats, MergeSource, MergeTuning, PartitionAttempt,
    PartitionCounters, SpillObserver,
};
use histok_storage::{IoScheduler, IoStats, RunCatalog, StorageBackend};
use histok_types::{Error, Phase, PhaseTimer, Result, Row, SortKey, SortOrder, SortSpec};

use crate::config::{RunGenMode, TopKConfig};
use crate::metrics::OperatorMetrics;
use crate::topk::{
    already_finished, HoldCatalog, Offer, RetainedHeap, RowStream, SpecStream, TimedStream,
    TopKOperator,
};

/// Spill observer for the optimized baseline: kth-key sharpening plus
/// cutoff-based elimination (no histograms).
struct KthKeyObserver<K> {
    order: SortOrder,
    k: u64,
    cutoff: Option<K>,
    rows_in_run: u64,
    rows_spilled: u64,
    eliminated_at_spill: u64,
}

impl<K: SortKey> KthKeyObserver<K> {
    fn tighten(&mut self, key: &K) {
        let tighter = match &self.cutoff {
            Some(cur) => self.order.precedes(key, cur),
            None => true,
        };
        if tighter {
            self.cutoff = Some(key.clone());
        }
    }

    fn eliminate(&self, key: &K) -> bool {
        match &self.cutoff {
            Some(cut) => self.order.follows(key, cut),
            None => false,
        }
    }
}

impl<K: SortKey> SpillObserver<K> for KthKeyObserver<K> {
    fn run_started(&mut self, _estimated_rows: u64) {
        self.rows_in_run = 0;
    }

    fn should_eliminate(&mut self, key: &K) -> bool {
        let kill = self.eliminate(key);
        if kill {
            self.eliminated_at_spill += 1;
        }
        kill
    }

    fn row_spilled(&mut self, key: &K) {
        self.rows_in_run += 1;
        self.rows_spilled += 1;
        if self.rows_in_run == self.k {
            // A single run now proves k rows at or below `key`.
            self.tighten(key);
        }
    }

    fn cutoff_key(&mut self) -> Option<K> {
        // The kth-key rule is exactly "follows the cutoff"; batched run
        // generation may clip whole sorted buffers against it.
        self.cutoff.clone()
    }

    fn rows_clipped(&mut self, n: u64) {
        self.eliminated_at_spill += n;
    }
}

enum State<K: SortKey> {
    InMemory(RetainedHeap<K>),
    External(Box<External<K>>),
    Finished,
}

/// External-mode machinery, boxed to keep the `State` variants similar in
/// size.
struct External<K: SortKey> {
    catalog: Arc<RunCatalog<K>>,
    gen: Box<dyn RunGenerator<K>>,
    obs: KthKeyObserver<K>,
}

/// The [Graefe'08] optimized external top-k.
pub struct OptimizedExternalTopK<K: SortKey> {
    spec: SortSpec,
    config: TopKConfig,
    backend: Arc<dyn StorageBackend>,
    stats: IoStats,
    state: State<K>,
    rows_in: u64,
    eliminated_at_input: u64,
    eliminated_at_spill_final: u64,
    peak_bytes: usize,
    spilled: bool,
    early_merges: u64,
    /// Re-derive the cutoff by another merge every time this many more rows
    /// have spilled; `None` (the default, per [Graefe'08]) merges once.
    resharpen_every: Option<u64>,
    spilled_at_last_merge: u64,
    timer: PhaseTimer,
    final_merge_ns: Arc<AtomicU64>,
    /// Shared comparison counters the sort structures flush into.
    cmp_stats: CmpStats,
    merge_partitions: u64,
    partition_counters: Option<PartitionCounters>,
    /// Intermediate cascade-merge pass counters.
    cascade: CascadeStats,
    /// Shared background-I/O pool (`None` = legacy thread-per-source),
    /// built once from `config.io_threads` and reused by every spill and
    /// merge this operator performs.
    io_scheduler: Option<IoScheduler>,
}

impl<K: SortKey> OptimizedExternalTopK<K> {
    /// Creates the operator.
    pub fn new(
        spec: SortSpec,
        config: TopKConfig,
        backend: impl StorageBackend + 'static,
    ) -> Result<Self> {
        Self::with_arc(spec, config, Arc::new(backend))
    }

    /// As [`OptimizedExternalTopK::new`] with a shared backend handle.
    pub fn with_arc(
        spec: SortSpec,
        config: TopKConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self> {
        spec.validate()?;
        config.validate()?;
        if config.fold_op().is_some() {
            return Err(Error::InvalidConfig(
                "dedup/aggregate queries are not supported by the optimized baseline".into(),
            ));
        }
        Ok(OptimizedExternalTopK {
            state: State::InMemory(RetainedHeap::new(spec.retained(), spec.order)),
            io_scheduler: config.io_scheduler(),
            spec,
            config,
            backend,
            stats: IoStats::new(),
            rows_in: 0,
            eliminated_at_input: 0,
            eliminated_at_spill_final: 0,
            peak_bytes: 0,
            spilled: false,
            early_merges: 0,
            resharpen_every: None,
            spilled_at_last_merge: 0,
            timer: PhaseTimer::started(Phase::InMemory),
            final_merge_ns: Arc::new(AtomicU64::new(0)),
            cmp_stats: CmpStats::new(),
            merge_partitions: 1,
            partition_counters: None,
            cascade: CascadeStats::default(),
        })
    }

    fn merge_tuning(&self) -> MergeTuning {
        MergeTuning {
            ovc: self.config.ovc_enabled,
            stats: Some(self.cmp_stats.clone()),
            readahead_blocks: self.config.readahead_blocks,
            io_scheduler: self.io_scheduler.clone(),
            batch_rows: self.config.batch_rows,
            fold: None,
        }
    }

    /// Enables periodic re-merging: after the first early merge, merge
    /// again whenever `rows` more rows have spilled (an ablation knob — a
    /// more generous baseline than [Graefe'08] prescribes).
    pub fn with_resharpen_every(mut self, rows: u64) -> Self {
        self.resharpen_every = Some(rows.max(1));
        self
    }

    /// The current cutoff key, if any.
    pub fn cutoff(&self) -> Option<K> {
        match &self.state {
            State::InMemory(heap) => heap.cutoff().cloned(),
            State::External(ext) => ext.obs.cutoff.clone(),
            State::Finished => None,
        }
    }

    fn switch_to_external(&mut self, rows: Vec<Row<K>>) -> Result<()> {
        self.timer.enter(Phase::RunGeneration);
        let catalog = Arc::new(
            RunCatalog::new(
                self.backend.clone(),
                RunCatalog::<K>::unique_prefix("opttopk"),
                self.spec.order,
                self.stats.clone(),
            )
            .with_block_bytes(self.config.block_bytes)
            .with_spill_pipeline(self.config.spill_pipeline)
            .with_io_scheduler(self.io_scheduler.clone()),
        );
        // Replacement selection *defines* this baseline ([Graefe'08]), so
        // only the explicit Batch override swaps in the radix sorter
        // (losing the run-size cap, which batch mode does not support).
        let mut gen: Box<dyn RunGenerator<K>> = if self.config.run_gen_mode == RunGenMode::Batch {
            Box::new(BatchSort::with_budget(catalog.clone(), self.config.make_budget()))
        } else {
            let mut gen =
                ReplacementSelection::with_budget(catalog.clone(), self.config.make_budget())
                    .with_ovc(self.config.ovc_enabled, Some(self.cmp_stats.clone()));
            if self.config.limit_run_size {
                gen = gen.with_run_limit(self.spec.retained());
            }
            Box::new(gen)
        };
        let mut obs = KthKeyObserver {
            order: self.spec.order,
            k: self.spec.retained(),
            cutoff: None,
            rows_in_run: 0,
            rows_spilled: 0,
            eliminated_at_spill: 0,
        };
        for row in rows {
            gen.push(row, &mut obs)?;
        }
        self.state = State::External(Box::new(External { catalog, gen, obs }));
        self.spilled = true;
        Ok(())
    }

    /// The early merge step: combine all finished runs into one
    /// intermediate run of at most `k` rows; its last key is the cutoff.
    ///
    /// Triggered once `2k` rows have spilled: merging at exactly `k` rows
    /// would derive a cutoff near the maximum seen key (useless), whereas
    /// at `2k` the intermediate run's `k`th key sits near the median of the
    /// spilled keys — the paper's §3.2.1 account of this technique
    /// ("merging 10 initial runs [10 × 1000 rows, k = 5000] establishes a
    /// cutoff key able to eliminate ½ of the remaining input").
    fn maybe_early_merge(&mut self) -> Result<()> {
        let tuning = self.merge_tuning();
        let State::External(ext) = &mut self.state else { return Ok(()) };
        let External { catalog, obs, .. } = ext.as_mut();
        let k = self.spec.retained();
        let due = if obs.cutoff.is_none() {
            obs.rows_spilled >= 2 * k
        } else if let Some(every) = self.resharpen_every {
            obs.rows_spilled - self.spilled_at_last_merge >= every
        } else {
            false
        };
        if !due || catalog.len() < 2 {
            return Ok(());
        }
        let runs = catalog.runs();
        let merged =
            merge_runs_to_new_tuned(catalog, &runs, Some(k), obs.cutoff.as_ref(), &tuning)?;
        if merged.rows >= k {
            if let Some(last) = &merged.last_key {
                obs.tighten(last);
            }
        }
        self.early_merges += 1;
        self.spilled_at_last_merge = obs.rows_spilled;
        Ok(())
    }
}

impl<K: SortKey> TopKOperator<K> for OptimizedExternalTopK<K> {
    fn push(&mut self, row: Row<K>) -> Result<()> {
        self.rows_in += 1;
        match &mut self.state {
            State::InMemory(heap) => {
                let fp = histok_sort::row_footprint(&row);
                if !heap.is_full() && heap.bytes() + fp > self.config.effective_memory_budget() {
                    let rows = heap.drain_unordered();
                    self.switch_to_external(rows)?;
                    self.rows_in -= 1; // the recursive push counts it again
                    return self.push(row);
                }
                match heap.offer(row) {
                    Offer::Grew | Offer::Folded => {}
                    Offer::Displaced | Offer::Rejected => self.eliminated_at_input += 1,
                }
                self.peak_bytes = self.peak_bytes.max(heap.bytes());
                Ok(())
            }
            State::External(ext) => {
                if ext.obs.eliminate(&row.key) {
                    self.eliminated_at_input += 1;
                    return Ok(());
                }
                let External { gen, obs, .. } = ext.as_mut();
                gen.push(row, obs)?;
                self.peak_bytes = self.peak_bytes.max(ext.gen.buffered_bytes());
                self.maybe_early_merge()
            }
            State::Finished => Err(Error::InvalidConfig("push after finish".into())),
        }
    }

    fn finish(&mut self) -> Result<RowStream<K>> {
        match std::mem::replace(&mut self.state, State::Finished) {
            State::InMemory(heap) => {
                let rows = heap.into_sorted();
                self.timer.stop();
                Ok(Box::new(TimedStream::new(
                    SpecStream::new(rows.into_iter().map(Ok), &self.spec),
                    self.final_merge_ns.clone(),
                )))
            }
            State::External(ext) => {
                let External { catalog, mut gen, mut obs } = *ext;
                let residue = gen.finish(&mut obs, ResiduePolicy::KeepInMemory)?;
                self.eliminated_at_spill_final = obs.eliminated_at_spill;
                let (final_runs, cascade) = plan_merges_cascade(
                    &catalog,
                    &self.config.merge,
                    Some(self.spec.retained()),
                    obs.cutoff.as_ref(),
                    &self.merge_tuning(),
                    self.config.cascade_workers(),
                )?;
                self.cascade = cascade;
                // Range-partition the final merge when configured. The
                // kth-key cutoff (when set) proves at least `retained`
                // rows at or below it, so clipping the partition plan at
                // the cutoff never loses an output row.
                let mut residue = residue;
                let est_rows = final_runs.iter().map(|m| m.rows).sum::<u64>()
                    + residue.iter().map(|s| s.len() as u64).sum::<u64>();
                if self.config.merge_threads >= 2
                    && est_rows >= self.config.partition_min_rows.max(1)
                {
                    match merge_runs_partitioned(
                        &catalog,
                        &final_runs,
                        residue,
                        self.config.merge_threads,
                        obs.cutoff.as_ref(),
                        &self.merge_tuning(),
                    )? {
                        PartitionAttempt::Partitioned(merge) => {
                            self.merge_partitions = merge.partitions() as u64;
                            self.partition_counters = Some(merge.counters());
                            self.timer.stop();
                            return Ok(Box::new(TimedStream::new(
                                HoldCatalog {
                                    _catalog: catalog,
                                    inner: SpecStream::new(merge, &self.spec),
                                },
                                self.final_merge_ns.clone(),
                            )));
                        }
                        PartitionAttempt::Serial(rows) => residue = rows,
                    }
                }
                let mut sources: Vec<MergeSource<K>> =
                    Vec::with_capacity(final_runs.len() + residue.len());
                for meta in &final_runs {
                    sources.push(histok_sort::open_source(&catalog, meta, &self.merge_tuning())?);
                }
                for seq in residue {
                    sources.push(MergeSource::Memory(seq.into_iter()));
                }
                let tree = merge_sources_tuned(sources, self.spec.order, &self.merge_tuning())?;
                let merge = BatchedMerge::new(tree, self.config.batch_rows);
                self.timer.stop();
                Ok(Box::new(TimedStream::new(
                    HoldCatalog { _catalog: catalog, inner: SpecStream::new(merge, &self.spec) },
                    self.final_merge_ns.clone(),
                )))
            }
            State::Finished => already_finished("OptimizedExternalTopK"),
        }
    }

    fn metrics(&self) -> OperatorMetrics {
        let eliminated_at_spill = match &self.state {
            State::External(ext) => ext.obs.eliminated_at_spill,
            _ => self.eliminated_at_spill_final,
        };
        let mut io = self.stats.snapshot();
        io.modelled_io_ns = io.modelled_io_ns.max(self.backend.modelled_io_ns());
        let mut phases = self.timer.snapshot();
        phases.spill_write_ns = io.write_latency.total_ns;
        phases.final_merge_ns += self.final_merge_ns.load(Ordering::Relaxed);
        OperatorMetrics {
            rows_in: self.rows_in,
            eliminated_at_input: self.eliminated_at_input,
            eliminated_at_spill,
            io,
            filter: Default::default(),
            spilled: self.spilled,
            peak_memory_bytes: self.peak_bytes,
            early_merges: self.early_merges,
            cmp: self.cmp_stats.snapshot(),
            phases,
            merge_partitions: self.merge_partitions,
            partition_rows: self
                .partition_counters
                .as_ref()
                .map(|c| c.snapshot())
                .unwrap_or_default(),
            cascade: self.cascade,
            ..Default::default()
        }
    }

    fn algorithm(&self) -> &'static str {
        "optimized-ems"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    fn config(budget: usize) -> TopKConfig {
        TopKConfig::builder().memory_budget(budget).block_bytes(1024).build().unwrap()
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut keys: Vec<u64> = (0..n).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(seed));
        keys
    }

    fn run_op(spec: SortSpec, cfg: TopKConfig, keys: &[u64]) -> (Vec<u64>, OperatorMetrics) {
        let mut op = OptimizedExternalTopK::new(spec, cfg, MemoryBackend::new()).unwrap();
        for &k in keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        (out, op.metrics())
    }

    #[test]
    fn in_memory_when_k_fits() {
        let keys = shuffled(5_000, 1);
        let (out, m) = run_op(SortSpec::ascending(50), config(1 << 20), &keys);
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        assert!(!m.spilled);
    }

    #[test]
    fn correct_when_k_exceeds_memory() {
        let keys = shuffled(40_000, 2);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (out, m) = run_op(SortSpec::ascending(1_000), config(200 * row_bytes), &keys);
        assert_eq!(out, (0..1_000).collect::<Vec<_>>());
        assert!(m.spilled);
        assert!(m.early_merges >= 1, "early merge should have fired");
    }

    #[test]
    fn early_merge_establishes_a_filter() {
        let keys = shuffled(50_000, 3);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (out, m) = run_op(SortSpec::ascending(1_000), config(200 * row_bytes), &keys);
        assert_eq!(out.len(), 1_000);
        // After the early merge the cutoff eliminates most remaining input.
        assert!(m.eliminated_at_input > 10_000, "eliminated {}", m.eliminated_at_input);
        // But it still spills more than the histogram algorithm would —
        // verified cross-algorithm in the integration tests.
        assert!(m.rows_spilled() > 2_000);
    }

    #[test]
    fn spills_less_than_traditional() {
        let keys = shuffled(50_000, 4);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (_, m) = run_op(SortSpec::ascending(1_000), config(200 * row_bytes), &keys);
        assert!(
            m.rows_spilled() < 40_000,
            "optimized baseline spilled {} of 50k",
            m.rows_spilled()
        );
    }

    #[test]
    fn resharpening_reduces_spill_further() {
        let keys = shuffled(60_000, 5);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let spec = SortSpec::ascending(1_000);

        let run_with = |resharpen: Option<u64>| {
            let mut op =
                OptimizedExternalTopK::new(spec, config(200 * row_bytes), MemoryBackend::new())
                    .unwrap();
            if let Some(every) = resharpen {
                op = op.with_resharpen_every(every);
            }
            for &k in &keys {
                op.push(Row::key_only(k)).unwrap();
            }
            let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
            assert_eq!(out, (0..1_000).collect::<Vec<_>>());
            op.metrics()
        };

        let single = run_with(None);
        let periodic = run_with(Some(1_000));
        assert!(periodic.early_merges > single.early_merges);
        // Fewer *run-generation* rows spilled thanks to the sharper filter
        // (total I/O may still be higher due to merge rewrites).
        assert!(periodic.eliminated_at_input >= single.eliminated_at_input);
    }

    #[test]
    fn descending_works() {
        let keys = shuffled(20_000, 6);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (out, _) = run_op(SortSpec::descending(500), config(100 * row_bytes), &keys);
        assert_eq!(out, (19_500..20_000).rev().collect::<Vec<_>>());
    }

    #[test]
    fn offset_supported() {
        let keys = shuffled(10_000, 7);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let spec = SortSpec::ascending(50).with_offset(200);
        let (out, _) = run_op(spec, config(100 * row_bytes), &keys);
        assert_eq!(out, (200..250).collect::<Vec<_>>());
    }

    #[test]
    fn finish_twice_errors() {
        let mut op: OptimizedExternalTopK<u64> =
            OptimizedExternalTopK::new(SortSpec::ascending(1), config(1024), MemoryBackend::new())
                .unwrap();
        let _ = op.finish().unwrap();
        assert!(op.finish().is_err());
    }
}
