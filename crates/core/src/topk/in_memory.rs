//! The in-memory priority-queue top-k (§2.3) — the baseline for the
//! resource-cost comparison of §5.6.
//!
//! Assumes memory has been provisioned for the whole output: it never
//! spills and its peak memory grows with `k`. Efficient when that
//! assumption holds, impossible to rely on in a shared production system —
//! which is the paper's motivation.

use histok_types::{Phase, PhaseTimer, Result, Row, SortKey, SortSpec};

use crate::metrics::OperatorMetrics;
use crate::topk::{already_finished, Offer, RetainedHeap, RowStream, SpecStream, TopKOperator};

/// Top-k with an in-memory priority queue sized for the full output.
pub struct InMemoryTopK<K: SortKey> {
    spec: SortSpec,
    heap: Option<RetainedHeap<K>>,
    rows_in: u64,
    eliminated: u64,
    peak_bytes: usize,
    timer: PhaseTimer,
}

impl<K: SortKey> InMemoryTopK<K> {
    /// Creates the operator for `spec`.
    pub fn new(spec: SortSpec) -> Result<Self> {
        spec.validate()?;
        Ok(InMemoryTopK {
            spec,
            heap: Some(RetainedHeap::new(spec.retained(), spec.order)),
            rows_in: 0,
            eliminated: 0,
            peak_bytes: 0,
            timer: PhaseTimer::started(Phase::InMemory),
        })
    }

    /// The current in-memory cutoff key (the worst retained row), if the
    /// queue holds `offset + limit` rows already.
    pub fn cutoff(&self) -> Option<&K> {
        self.heap.as_ref().and_then(|h| h.cutoff())
    }
}

impl<K: SortKey> TopKOperator<K> for InMemoryTopK<K> {
    fn push(&mut self, row: Row<K>) -> Result<()> {
        let heap = self
            .heap
            .as_mut()
            .ok_or_else(|| histok_types::Error::InvalidConfig("push after finish".into()))?;
        self.rows_in += 1;
        match heap.offer(row) {
            Offer::Grew | Offer::Folded => {}
            Offer::Displaced | Offer::Rejected => self.eliminated += 1,
        }
        self.peak_bytes = self.peak_bytes.max(heap.bytes());
        Ok(())
    }

    fn finish(&mut self) -> Result<RowStream<K>> {
        let Some(heap) = self.heap.take() else {
            return already_finished("InMemoryTopK");
        };
        let rows = heap.into_sorted();
        self.timer.stop();
        Ok(Box::new(SpecStream::new(rows.into_iter().map(Ok), &self.spec)))
    }

    fn metrics(&self) -> OperatorMetrics {
        OperatorMetrics {
            rows_in: self.rows_in,
            eliminated_at_input: self.eliminated,
            peak_memory_bytes: self.peak_bytes,
            phases: self.timer.snapshot(),
            ..Default::default()
        }
    }

    fn algorithm(&self) -> &'static str {
        "in-memory-pq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_types::SortOrder;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    fn run(spec: SortSpec, keys: Vec<u64>) -> (Vec<u64>, OperatorMetrics) {
        let mut op = InMemoryTopK::new(spec).unwrap();
        for k in keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        (out, op.metrics())
    }

    #[test]
    fn returns_exact_top_k() {
        let mut keys: Vec<u64> = (0..10_000).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(5));
        let (out, m) = run(SortSpec::ascending(100), keys);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(m.rows_in, 10_000);
        assert_eq!(m.eliminated_at_input, 10_000 - 100);
        assert_eq!(m.rows_spilled(), 0);
    }

    #[test]
    fn descending_top_k() {
        let (out, _) = run(SortSpec::descending(3), vec![5, 9, 1, 7, 3]);
        assert_eq!(out, vec![9, 7, 5]);
    }

    #[test]
    fn offset_pages_through_results() {
        let keys: Vec<u64> = (0..100).rev().collect();
        let (page1, _) = run(SortSpec::ascending(10), keys.clone());
        let (page2, _) = run(SortSpec::ascending(10).with_offset(10), keys.clone());
        let (page3, _) = run(SortSpec::ascending(10).with_offset(20), keys);
        assert_eq!(page1, (0..10).collect::<Vec<_>>());
        assert_eq!(page2, (10..20).collect::<Vec<_>>());
        assert_eq!(page3, (20..30).collect::<Vec<_>>());
    }

    #[test]
    fn input_smaller_than_k() {
        let (out, _) = run(SortSpec::ascending(10), vec![3, 1, 2]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn cutoff_appears_when_full() {
        let mut op = InMemoryTopK::new(SortSpec::ascending(2)).unwrap();
        op.push(Row::key_only(10u64)).unwrap();
        assert!(op.cutoff().is_none());
        op.push(Row::key_only(20u64)).unwrap();
        assert_eq!(op.cutoff(), Some(&20));
        op.push(Row::key_only(5u64)).unwrap();
        assert_eq!(op.cutoff(), Some(&10));
    }

    #[test]
    fn finish_twice_is_an_error() {
        let mut op = InMemoryTopK::<u64>::new(SortSpec::ascending(1)).unwrap();
        op.push(Row::key_only(1)).unwrap();
        let _ = op.finish().unwrap();
        assert!(op.finish().is_err());
        assert!(op.push(Row::key_only(2)).is_err());
    }

    #[test]
    fn peak_memory_scales_with_k() {
        let keys: Vec<u64> = (0..1000).collect();
        let (_, m_small) = run(SortSpec::ascending(10), keys.clone());
        let (_, m_big) = run(SortSpec::ascending(500), keys);
        assert!(m_big.peak_memory_bytes > 10 * m_small.peak_memory_bytes);
    }

    #[test]
    fn invalid_spec_rejected() {
        assert!(InMemoryTopK::<u64>::new(SortSpec::ascending(0)).is_err());
        assert!(InMemoryTopK::<u64>::new(SortSpec {
            order: SortOrder::Ascending,
            limit: 1,
            offset: u64::MAX
        })
        .is_err());
    }
}
