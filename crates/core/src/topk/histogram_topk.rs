//! The paper's algorithm: adaptive top-k with histogram-guided filtering.
//!
//! While the requested output fits in the memory budget, this operator *is*
//! the in-memory priority-queue top-k (§2.3). The moment the retained rows
//! no longer fit, it switches to external mode: run generation spills
//! through a [`CutoffFilter`], which models the input with per-run
//! histograms and derives an ever-sharpening cutoff key. Rows are
//! eliminated twice — at operator input (Algorithm 1 line 4) and again at
//! spill time (line 11) — so most of the input never reaches secondary
//! storage even though `k` exceeds memory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(test)]
use histok_sort::run_gen::ResiduePolicy;
use histok_sort::run_gen::{BatchSort, LoadSortStore, ReplacementSelection, RunGenerator};
use histok_sort::{
    merge_runs_partitioned, merge_sources_tuned, plan_merges_cascade, BatchedMerge, CascadeStats,
    CmpStats, FoldSpec, FoldStats, LoserTree, MergeSource, MergeTuning, PartitionAttempt,
    PartitionCounters,
};
use histok_storage::{IoScheduler, IoStats, RunCatalog, StorageBackend};
use histok_types::{Aggregator, Error, Phase, PhaseTimer, Result, Row, SortKey, SortSpec};

use crate::config::{RunGenKind, RunGenMode, TopKConfig};
use crate::cutoff::{CutoffFilter, DistinctVerdict, FilterMetrics};
use crate::metrics::OperatorMetrics;
use crate::topk::{
    already_finished, FoldedStore, Offer, RetainedHeap, RowStream, SpecStream, TimedStream,
    TopKOperator,
};

/// The histogram-guided adaptive top-k operator (the paper's contribution).
///
/// ```
/// use histok_core::{HistogramTopK, TopKConfig, TopKOperator};
/// use histok_storage::MemoryBackend;
/// use histok_types::{Row, SortSpec};
///
/// // Top 100 of 10,000 shuffled keys with memory for ~50 rows.
/// let spec = SortSpec::ascending(100);
/// let config = TopKConfig::builder().memory_budget(50 * 64).build()?;
/// let mut op = HistogramTopK::new(spec, config, MemoryBackend::new())?;
/// for key in (0..10_000u64).rev() {
///     op.push(Row::key_only(key))?;
/// }
/// let out: Vec<u64> = op.finish()?.map(|r| r.map(|row| row.key)).collect::<Result<_, _>>()?;
/// assert_eq!(out, (0..100).collect::<Vec<_>>());
/// assert!(op.metrics().rows_spilled() < 10_000); // most rows never hit storage
/// # Ok::<(), histok_types::Error>(())
/// ```
pub struct HistogramTopK<K: SortKey> {
    spec: SortSpec,
    config: TopKConfig,
    backend: Arc<dyn StorageBackend>,
    stats: IoStats,
    state: State<K>,
    rows_in: u64,
    eliminated_at_input: u64,
    peak_bytes: usize,
    /// Filter metrics frozen at finish time.
    final_filter: Option<FilterMetrics>,
    spilled: bool,
    /// Phase clock: one `Instant` pair per phase transition.
    timer: PhaseTimer,
    /// Final-merge nanoseconds, filled in by the [`TimedStream`] wrapper
    /// when the output stream is dropped.
    final_merge_ns: Arc<AtomicU64>,
    /// Shared comparison counters the sort structures flush into.
    cmp_stats: CmpStats,
    /// Key ranges the final merge ran across (1 = serial).
    merge_partitions: u64,
    /// Per-partition row counters when the final merge went parallel.
    partition_counters: Option<PartitionCounters>,
    /// Intermediate cascade-merge pass counters.
    cascade: CascadeStats,
    /// Shared background-I/O pool (`None` = legacy thread-per-source),
    /// built once from `config.io_threads` and reused by every spill and
    /// merge this operator performs.
    io_scheduler: Option<IoScheduler>,
    /// Fold counters every pipeline component flushes into; zero unless
    /// the query runs in dedup/aggregate mode.
    fold_stats: FoldStats,
    /// The aggregator for fold mode (`None` = plain top-k).
    agg: Option<Arc<dyn Aggregator>>,
}

enum State<K: SortKey> {
    /// Phase 1: plain in-memory priority queue.
    InMemory(MemStore<K>),
    /// Phase 2: run generation guarded by the cutoff filter.
    External(Box<External<K>>),
    /// Output has been produced.
    Finished,
}

/// Phase-1 store: a plain retained heap, or the folding group store when
/// the query runs in dedup/aggregate mode.
enum MemStore<K: SortKey> {
    Heap(RetainedHeap<K>),
    Folded(FoldedStore<K>),
}

impl<K: SortKey> MemStore<K> {
    fn bytes(&self) -> usize {
        match self {
            MemStore::Heap(h) => h.bytes(),
            MemStore::Folded(f) => f.bytes(),
        }
    }

    fn is_full(&self) -> bool {
        match self {
            MemStore::Heap(h) => h.is_full(),
            MemStore::Folded(f) => f.is_full(),
        }
    }

    fn cutoff(&self) -> Option<&K> {
        match self {
            MemStore::Heap(h) => h.cutoff(),
            MemStore::Folded(f) => f.cutoff(),
        }
    }

    fn offer(&mut self, row: Row<K>) -> Offer {
        match self {
            MemStore::Heap(h) => h.offer(row),
            MemStore::Folded(f) => f.offer(row),
        }
    }

    fn drain_unordered(&mut self) -> Vec<Row<K>> {
        match self {
            MemStore::Heap(h) => h.drain_unordered(),
            MemStore::Folded(f) => f.drain_unordered(),
        }
    }

    fn into_sorted(self) -> Vec<Row<K>> {
        match self {
            MemStore::Heap(h) => h.into_sorted(),
            MemStore::Folded(f) => f.into_sorted(),
        }
    }
}

struct External<K: SortKey> {
    catalog: Arc<RunCatalog<K>>,
    gen: Box<dyn RunGenerator<K>>,
    filter: CutoffFilter<K>,
}

impl<K: SortKey> HistogramTopK<K> {
    /// Creates the operator. `backend` receives any spilled runs.
    pub fn new(
        spec: SortSpec,
        config: TopKConfig,
        backend: impl StorageBackend + 'static,
    ) -> Result<Self> {
        Self::with_arc(spec, config, Arc::new(backend))
    }

    /// As [`HistogramTopK::new`] with a shared backend handle.
    pub fn with_arc(
        spec: SortSpec,
        config: TopKConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self> {
        spec.validate()?;
        config.validate()?;
        let fold_stats = FoldStats::new();
        let agg = config.fold_op().map(|op| op.aggregator());
        let store = match &agg {
            Some(a) => MemStore::Folded(FoldedStore::new(
                spec.retained(),
                spec.order,
                a.clone(),
                fold_stats.clone(),
            )),
            None => MemStore::Heap(RetainedHeap::new(spec.retained(), spec.order)),
        };
        Ok(HistogramTopK {
            state: State::InMemory(store),
            io_scheduler: config.io_scheduler(),
            fold_stats,
            agg,
            spec,
            config,
            backend,
            stats: IoStats::new(),
            rows_in: 0,
            eliminated_at_input: 0,
            peak_bytes: 0,
            final_filter: None,
            spilled: false,
            timer: PhaseTimer::started(Phase::InMemory),
            final_merge_ns: Arc::new(AtomicU64::new(0)),
            cmp_stats: CmpStats::new(),
            merge_partitions: 1,
            partition_counters: None,
            cascade: CascadeStats::default(),
        })
    }

    /// The current cutoff key: the in-memory queue's worst retained key, or
    /// the histogram-derived cutoff once external.
    pub fn cutoff(&self) -> Option<K> {
        match &self.state {
            State::InMemory(store) => store.cutoff().cloned(),
            State::External(ext) => ext.filter.cutoff().cloned(),
            State::Finished => None,
        }
    }

    /// True once the operator has switched to external mode.
    pub fn is_external(&self) -> bool {
        matches!(self.state, State::External(_))
    }

    /// The operator's I/O counters.
    pub fn io_stats(&self) -> &IoStats {
        &self.stats
    }

    fn build_filter(&self) -> CutoffFilter<K> {
        crate::cutoff::filter_from_config(&self.spec, &self.config)
    }

    /// The fold instruction every sort component receives in fold mode:
    /// the aggregator plus the shared counters.
    fn fold_spec(&self) -> Option<FoldSpec> {
        self.agg.as_ref().map(|a| FoldSpec::new(a.clone()).with_stats(self.fold_stats.clone()))
    }

    fn merge_tuning(&self) -> MergeTuning {
        MergeTuning {
            ovc: self.config.ovc_enabled,
            stats: Some(self.cmp_stats.clone()),
            readahead_blocks: self.config.readahead_blocks,
            io_scheduler: self.io_scheduler.clone(),
            batch_rows: self.config.batch_rows,
            fold: self.fold_spec(),
        }
    }

    fn build_generator(&self, catalog: Arc<RunCatalog<K>>) -> Box<dyn RunGenerator<K>> {
        let batched = match self.config.run_gen_mode {
            RunGenMode::Batch => true,
            RunGenMode::Comparison => false,
            // Radix batching is a faster load-sort-store with identical
            // run shapes; replacement selection's run shape *is* its
            // strategy, so Adaptive leaves it alone.
            RunGenMode::Adaptive => {
                K::norm_prefix_is_exact() && self.config.run_generation == RunGenKind::LoadSortStore
            }
        };
        // Lease-aware budgets: when the config carries a `budget_lease`,
        // every generator reads its limit through the shared handle, so an
        // admission controller can resize a running query's workspace.
        let mut gen: Box<dyn RunGenerator<K>> = if batched {
            Box::new(BatchSort::with_budget(catalog, self.config.make_budget()))
        } else {
            match self.config.run_generation {
                RunGenKind::ReplacementSelection => {
                    let mut gen =
                        ReplacementSelection::with_budget(catalog, self.config.make_budget())
                            .with_ovc(self.config.ovc_enabled, Some(self.cmp_stats.clone()));
                    if self.config.limit_run_size {
                        gen = gen.with_run_limit(self.spec.retained());
                    }
                    Box::new(gen)
                }
                RunGenKind::LoadSortStore => {
                    Box::new(LoadSortStore::with_budget(catalog, self.config.make_budget()))
                }
            }
        };
        // Fold mode: duplicates collapse inside run generation where the
        // generator supports it; generators that ignore the hint still
        // yield deduplicated output because every merge duel folds too.
        gen.set_fold(self.fold_spec());
        gen
    }

    /// Leaves phase 1: every retained row re-enters through run generation.
    fn switch_to_external(&mut self, heap_rows: Vec<Row<K>>) -> Result<()> {
        self.timer.enter(Phase::RunGeneration);
        let catalog = Arc::new(
            RunCatalog::new(
                self.backend.clone(),
                RunCatalog::<K>::unique_prefix("htopk"),
                self.spec.order,
                self.stats.clone(),
            )
            .with_block_bytes(self.config.block_bytes)
            .with_spill_pipeline(self.config.spill_pipeline)
            .with_io_scheduler(self.io_scheduler.clone()),
        );
        let gen = self.build_generator(catalog.clone());
        let filter = self.build_filter();
        let mut ext = Box::new(External { catalog, gen, filter });
        // In dedup mode the re-entering rows (distinct by construction)
        // seed the distinct tracker, so the cutoff is established before
        // the first external-phase row arrives. `observe_input` is a no-op
        // outside distinct mode.
        let seed_distinct = self.config.filter_enabled && self.config.input_filter;
        for row in heap_rows {
            if seed_distinct && ext.filter.observe_input(&row.key) == DistinctVerdict::Worse {
                // The store retained more groups than the (slack-reduced)
                // filter target; groups past the target are already out.
                self.eliminated_at_input += 1;
                continue;
            }
            ext.gen.push(row, &mut ext.filter)?;
        }
        self.state = State::External(ext);
        self.spilled = true;
        Ok(())
    }

    fn push_external(&mut self, row: Row<K>) -> Result<()> {
        let State::External(ext) = &mut self.state else { unreachable!() };
        if self.config.filter_enabled && self.config.input_filter {
            if ext.filter.distinct_mode() {
                // Dedup mode (Algorithm 1 line 4 adapted to DISTINCT):
                // duplicates of a tracked key fold into nothing — their
                // representative is already in the pipeline — and keys
                // strictly worse than `retained` known distinct keys die.
                match ext.filter.observe_input(&row.key) {
                    DistinctVerdict::Admit => {}
                    DistinctVerdict::Duplicate => {
                        self.fold_stats.record_pre_spill(1, row.encoded_len() as u64);
                        return Ok(());
                    }
                    DistinctVerdict::Worse => {
                        self.eliminated_at_input += 1;
                        return Ok(());
                    }
                }
            } else if self.agg.is_none() && ext.filter.eliminate(&row.key) {
                self.eliminated_at_input += 1;
                return Ok(());
            }
            // Value aggregates (`agg` set, not distinct mode): no input
            // elimination — every duplicate must reach its group's
            // accumulator (DESIGN.md §14).
        }
        ext.gen.push(row, &mut ext.filter)?;
        self.peak_bytes = self.peak_bytes.max(ext.gen.buffered_bytes());
        Ok(())
    }
}

use crate::topk::HoldCatalog;

impl<K: SortKey> TopKOperator<K> for HistogramTopK<K> {
    fn push(&mut self, row: Row<K>) -> Result<()> {
        self.rows_in += 1;
        // Operator boundary: in fold mode the raw payload becomes an
        // accumulator exactly once per input row. Rows re-entering run
        // generation at the external switch are already accumulators and
        // bypass this.
        let row = match &self.agg {
            Some(agg) => Row { payload: agg.init(row.payload), key: row.key },
            None => row,
        };
        match &mut self.state {
            State::InMemory(store) => {
                let fp = histok_sort::row_footprint(&row);
                if !store.is_full() && store.bytes() + fp > self.config.effective_memory_budget() {
                    // The output no longer fits: activate run generation.
                    let rows = store.drain_unordered();
                    self.switch_to_external(rows)?;
                    return self.push_external(row);
                }
                match store.offer(row) {
                    Offer::Grew | Offer::Folded => {}
                    Offer::Displaced | Offer::Rejected => self.eliminated_at_input += 1,
                }
                self.peak_bytes = self.peak_bytes.max(store.bytes());
                if store.is_full() && store.bytes() > self.config.effective_memory_budget() {
                    // Variable-size rows grew the full queue past its
                    // budget (§2.3's robustness hazard): spill adaptively
                    // instead of failing.
                    let rows = store.drain_unordered();
                    self.switch_to_external(rows)?;
                }
                Ok(())
            }
            State::External(_) => self.push_external(row),
            State::Finished => Err(Error::InvalidConfig("push after finish".into())),
        }
    }

    fn finish(&mut self) -> Result<RowStream<K>> {
        match std::mem::replace(&mut self.state, State::Finished) {
            State::InMemory(store) => {
                let rows = store.into_sorted();
                self.timer.stop();
                Ok(Box::new(TimedStream::new(
                    SpecStream::new(rows.into_iter().map(Ok), &self.spec),
                    self.final_merge_ns.clone(),
                )))
            }
            State::External(mut ext) => {
                let residue = ext.gen.finish(&mut ext.filter, self.config.residue)?;
                let cutoff = ext.filter.cutoff().cloned();
                self.final_filter = Some(ext.filter.metrics());
                let (final_runs, cascade) = plan_merges_cascade(
                    &ext.catalog,
                    &self.config.merge,
                    Some(self.spec.retained()),
                    cutoff.as_ref(),
                    &self.merge_tuning(),
                    self.config.cascade_workers(),
                )?;
                self.cascade = cascade;
                // Range-partitioned parallel final merge (offset queries
                // stay serial: the fast-skip path positions readers
                // mid-run, which is incompatible with a range open). The
                // cutoff clip is only sound when exact — with slack the
                // serial merge may emit rows past the cutoff, and the
                // partitioned path must match it byte for byte.
                let mut residue = residue;
                let est_rows = final_runs.iter().map(|m| m.rows).sum::<u64>()
                    + residue.iter().map(|s| s.len() as u64).sum::<u64>();
                if self.spec.offset == 0
                    && self.config.merge_threads >= 2
                    && est_rows >= self.config.partition_min_rows.max(1)
                {
                    let clip = if self.config.approx_slack == 0.0 { cutoff.as_ref() } else { None };
                    match merge_runs_partitioned(
                        &ext.catalog,
                        &final_runs,
                        residue,
                        self.config.merge_threads,
                        clip,
                        &self.merge_tuning(),
                    )? {
                        PartitionAttempt::Partitioned(merge) => {
                            self.merge_partitions = merge.partitions() as u64;
                            self.partition_counters = Some(merge.counters());
                            self.timer.stop();
                            return Ok(Box::new(TimedStream::new(
                                HoldCatalog {
                                    _catalog: ext.catalog,
                                    inner: SpecStream::new(merge, &self.spec),
                                },
                                self.final_merge_ns.clone(),
                            )));
                        }
                        PartitionAttempt::Serial(rows) => residue = rows,
                    }
                }
                // §4.1: an OFFSET clause lets the merge start partway in —
                // the block indexes prove whole blocks irrelevant and skip
                // them without reading. In fold mode the offset counts
                // output *groups* while block row counts predate folding,
                // so the fast skip is unsound and the merge starts from
                // row zero (SpecStream skips folded rows instead).
                let skip_offset = if self.agg.is_some() { 0 } else { self.spec.offset };
                let skipped = crate::offset::fast_skip_sources(
                    &ext.catalog,
                    &final_runs,
                    residue,
                    skip_offset,
                    self.config.readahead_blocks,
                )?;
                let mut spec = self.spec;
                spec.offset -= skipped.skipped;
                let tree: LoserTree<K, MergeSource<K>> =
                    merge_sources_tuned(skipped.sources, self.spec.order, &self.merge_tuning())?;
                let merge = BatchedMerge::new(tree, self.config.batch_rows);
                // Residue spilling in `gen.finish` above still counted as
                // run generation; everything from here until the stream is
                // dropped is the final merge.
                self.timer.stop();
                Ok(Box::new(TimedStream::new(
                    HoldCatalog { _catalog: ext.catalog, inner: SpecStream::new(merge, &spec) },
                    self.final_merge_ns.clone(),
                )))
            }
            State::Finished => already_finished("HistogramTopK"),
        }
    }

    fn metrics(&self) -> OperatorMetrics {
        let filter = match (&self.state, self.final_filter) {
            (State::External(ext), _) => ext.filter.metrics(),
            (_, Some(m)) => m,
            _ => FilterMetrics::default(),
        };
        let mut io = self.stats.snapshot();
        io.modelled_io_ns = io.modelled_io_ns.max(self.backend.modelled_io_ns());
        let mut phases = self.timer.snapshot();
        phases.spill_write_ns = io.write_latency.total_ns;
        phases.final_merge_ns += self.final_merge_ns.load(Ordering::Relaxed);
        let fold = self.fold_stats.snapshot();
        OperatorMetrics {
            rows_in: self.rows_in,
            eliminated_at_input: self.eliminated_at_input,
            eliminated_at_spill: filter.eliminated_at_spill,
            io,
            filter,
            spilled: self.spilled,
            peak_memory_bytes: self.peak_bytes,
            early_merges: 0,
            cmp: self.cmp_stats.snapshot(),
            phases,
            merge_partitions: self.merge_partitions,
            partition_rows: self
                .partition_counters
                .as_ref()
                .map(|c| c.snapshot())
                .unwrap_or_default(),
            cascade: self.cascade,
            queued_ns: 0,
            rows_folded: fold.rows_folded,
            bytes_folded_pre_spill: fold.bytes_folded_pre_spill,
        }
    }

    fn algorithm(&self) -> &'static str {
        "histogram-topk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

    fn config(budget: usize) -> TopKConfig {
        TopKConfig::builder().memory_budget(budget).block_bytes(1024).build().unwrap()
    }

    fn run_op(spec: SortSpec, cfg: TopKConfig, keys: &[u64]) -> (Vec<u64>, OperatorMetrics) {
        let mut op = HistogramTopK::new(spec, cfg, MemoryBackend::new()).unwrap();
        for &k in keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        (out, op.metrics())
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut keys: Vec<u64> = (0..n).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(seed));
        keys
    }

    #[test]
    fn stays_in_memory_when_k_fits() {
        let keys = shuffled(10_000, 1);
        let (out, m) = run_op(SortSpec::ascending(100), config(1 << 20), &keys);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(!m.spilled);
        assert_eq!(m.rows_spilled(), 0);
        assert_eq!(m.eliminated_at_input, 10_000 - 100);
    }

    #[test]
    fn exact_top_k_when_output_exceeds_memory() {
        // k = 1000, memory for ~200 rows: must spill but stay correct.
        let keys = shuffled(50_000, 2);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (out, m) = run_op(SortSpec::ascending(1000), config(200 * row_bytes), &keys);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
        assert!(m.spilled);
        assert!(m.rows_spilled() > 0);
    }

    #[test]
    fn filters_most_of_a_large_input() {
        // The headline property: spilled rows ≪ input rows.
        let keys = shuffled(100_000, 3);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (out, m) = run_op(SortSpec::ascending(2_000), config(400 * row_bytes), &keys);
        assert_eq!(out, (0..2_000).collect::<Vec<_>>());
        assert!(
            m.rows_spilled() < 25_000,
            "expected heavy filtering, spilled {} of 100k",
            m.rows_spilled()
        );
        assert!(m.eliminated_at_input > 50_000);
        assert!(m.filter.refinements > 0);
    }

    #[test]
    fn descending_queries_work_externally() {
        let keys = shuffled(20_000, 4);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (out, m) = run_op(SortSpec::descending(500), config(100 * row_bytes), &keys);
        assert_eq!(out, (19_500..20_000).rev().collect::<Vec<_>>());
        assert!(m.spilled);
    }

    #[test]
    fn offset_beyond_memory() {
        let keys = shuffled(20_000, 5);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let spec = SortSpec::ascending(100).with_offset(400);
        let (out, m) = run_op(spec, config(100 * row_bytes), &keys);
        assert_eq!(out, (400..500).collect::<Vec<_>>());
        assert!(m.spilled);
    }

    #[test]
    fn duplicates_at_the_cutoff_are_preserved() {
        // 500 copies each of keys 0..100; top 750 must contain key 1 250
        // times exactly (500×key0 + 250×key1).
        let mut keys = Vec::new();
        for k in 0..100u64 {
            keys.extend(std::iter::repeat_n(k, 500));
        }
        keys.shuffle(&mut StdRng::seed_from_u64(6));
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (out, _) = run_op(SortSpec::ascending(750), config(100 * row_bytes), &keys);
        assert_eq!(out.len(), 750);
        assert_eq!(out.iter().filter(|&&k| k == 0).count(), 500);
        assert_eq!(out.iter().filter(|&&k| k == 1).count(), 250);
    }

    #[test]
    fn load_sort_store_mode_matches() {
        let keys = shuffled(30_000, 7);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let cfg = TopKConfig::builder()
            .memory_budget(150 * row_bytes)
            .run_generation(RunGenKind::LoadSortStore)
            .block_bytes(1024)
            .build()
            .unwrap();
        let (out, m) = run_op(SortSpec::ascending(600), cfg, &keys);
        assert_eq!(out, (0..600).collect::<Vec<_>>());
        assert!(m.rows_spilled() < 30_000);
    }

    #[test]
    fn filter_disabled_spills_like_a_plain_sort() {
        let keys = shuffled(20_000, 8);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let cfg = TopKConfig::builder()
            .memory_budget(100 * row_bytes)
            .filter_enabled(false)
            .block_bytes(1024)
            .build()
            .unwrap();
        let (out, m) = run_op(SortSpec::ascending(500), cfg, &keys);
        assert_eq!(out, (0..500).collect::<Vec<_>>());
        // Without the filter, (almost) the whole input reaches storage.
        assert!(m.rows_spilled() > 18_000);
        assert_eq!(m.eliminated_at_input, 0);
        assert_eq!(m.filter.buckets_inserted, 0);
    }

    #[test]
    fn variable_sized_rows_do_not_break_the_budget() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = SortSpec::ascending(200);
        let cfg = config(32 * 1024);
        let mut op = HistogramTopK::new(spec, cfg, MemoryBackend::new()).unwrap();
        let mut keys = Vec::new();
        for _ in 0..5_000u64 {
            let k: u64 = rng.gen_range(0..1_000_000);
            let payload = vec![0u8; rng.gen_range(0..400)];
            keys.push(k);
            op.push(Row::new(k, payload)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        keys.sort_unstable();
        assert_eq!(out, keys[..200].to_vec());
    }

    #[test]
    fn cutoff_is_visible_and_tightens() {
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let mut op: HistogramTopK<u64> = HistogramTopK::new(
            SortSpec::ascending(300),
            config(50 * row_bytes),
            MemoryBackend::new(),
        )
        .unwrap();
        let keys = shuffled(30_000, 10);
        let mut last_cutoff: Option<u64> = None;
        for (i, &k) in keys.iter().enumerate() {
            op.push(Row::key_only(k)).unwrap();
            if i % 1000 == 0 && op.is_external() {
                if let (Some(prev), Some(cur)) = (last_cutoff, op.cutoff()) {
                    assert!(cur <= prev, "cutoff loosened: {prev} -> {cur}");
                }
                last_cutoff = op.cutoff();
            }
        }
        assert!(op.is_external());
        assert!(op.cutoff().is_some());
        let _ = op.finish().unwrap();
    }

    #[test]
    fn push_and_finish_after_finish_error() {
        let mut op: HistogramTopK<u64> =
            HistogramTopK::new(SortSpec::ascending(10), config(1 << 20), MemoryBackend::new())
                .unwrap();
        let _ = op.finish().unwrap();
        assert!(op.finish().is_err());
        assert!(op.push(Row::key_only(1)).is_err());
    }

    #[test]
    fn spill_to_runs_residue_policy_matches_analysis_accounting() {
        let keys = shuffled(10_000, 11);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let cfg = TopKConfig::builder()
            .memory_budget(100 * row_bytes)
            .residue(ResiduePolicy::SpillToRuns)
            .block_bytes(1024)
            .build()
            .unwrap();
        let (out, m) = run_op(SortSpec::ascending(300), cfg, &keys);
        assert_eq!(out, (0..300).collect::<Vec<_>>());
        // Everything that survived filtering is in runs; the final merge
        // reads it back.
        assert!(m.io.rows_read >= 300);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, m) = run_op(SortSpec::ascending(10), config(1024), &[]);
        assert!(out.is_empty());
        assert_eq!(m.rows_in, 0);
    }

    #[test]
    fn phase_timings_cover_all_three_phases() {
        let keys = shuffled(20_000, 13);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let mut op = HistogramTopK::new(
            SortSpec::ascending(500),
            config(100 * row_bytes),
            MemoryBackend::new(),
        )
        .unwrap();
        for &k in &keys {
            op.push(Row::key_only(k)).unwrap();
        }
        {
            let stream = op.finish().unwrap();
            let out: Vec<u64> = stream.map(|r| r.unwrap().key).collect();
            assert_eq!(out, (0..500).collect::<Vec<_>>());
        } // stream dropped: final-merge time recorded
        let m = op.metrics();
        assert!(m.phases.in_memory_ns > 0, "in-memory phase not timed");
        assert!(m.phases.run_generation_ns > 0, "run generation not timed");
        assert!(m.phases.final_merge_ns > 0, "final merge not timed");
        // Spill writes were timed request-by-request.
        assert_eq!(m.io.write_latency.count, m.io.write_ops);
        assert!(m.io.read_latency.count > 0);
        assert_eq!(m.phases.spill_write_ns, m.io.write_latency.total_ns);
    }

    #[test]
    fn in_memory_runs_report_no_external_phases() {
        let keys = shuffled(5_000, 14);
        let (_, m) = run_op(SortSpec::ascending(100), config(1 << 20), &keys);
        assert!(m.phases.in_memory_ns > 0);
        assert_eq!(m.phases.run_generation_ns, 0);
        assert_eq!(m.phases.spill_write_ns, 0);
    }

    #[test]
    fn input_exactly_k() {
        let keys = shuffled(500, 12);
        let (out, _) = run_op(SortSpec::ascending(500), config(1 << 20), &keys);
        assert_eq!(out, (0..500).collect::<Vec<_>>());
    }

    fn dedup_config(budget: usize) -> TopKConfig {
        TopKConfig::builder().memory_budget(budget).block_bytes(1024).dedup(true).build().unwrap()
    }

    #[test]
    fn dedup_external_returns_distinct_keys_and_folds() {
        // 40 copies each of keys 0..500; DISTINCT top-300 must return 300
        // *distinct* keys, where the plain query returns 40 copies apiece.
        let mut keys = Vec::new();
        for k in 0..500u64 {
            keys.extend(std::iter::repeat_n(k, 40));
        }
        keys.shuffle(&mut StdRng::seed_from_u64(31));
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let (out, m) = run_op(SortSpec::ascending(300), dedup_config(100 * row_bytes), &keys);
        assert_eq!(out, (0..300).collect::<Vec<_>>());
        assert!(m.spilled);
        assert!(m.rows_folded > 0);
        // The distinct tracker absorbs duplicates of retained groups and
        // eliminates worse groups before they reach storage.
        assert!(
            m.rows_spilled() < 2_000,
            "dedup spilled {} of {} input rows",
            m.rows_spilled(),
            keys.len()
        );
        // Same spec without dedup keeps whole duplicate groups instead.
        let (plain, _) = run_op(SortSpec::ascending(300), config(100 * row_bytes), &keys);
        let distinct: std::collections::BTreeSet<u64> = plain.iter().copied().collect();
        assert!(distinct.len() <= 8, "plain top-300 covers ~8 duplicate groups");
    }

    #[test]
    fn dedup_in_memory_folds_without_spilling() {
        // 20 copies each of 0..100 with a generous budget: the folded
        // store handles DISTINCT entirely in memory.
        let mut keys: Vec<u64> = (0..2_000).map(|i| i % 100).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(32));
        let (out, m) = run_op(SortSpec::ascending(50), dedup_config(1 << 20), &keys);
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        assert!(!m.spilled);
        assert_eq!(m.rows_spilled(), 0);
        assert!(m.rows_folded > 0);
    }

    #[test]
    fn dedup_offset_counts_groups_not_rows() {
        // OFFSET pages over *distinct* keys; exercises the fast-skip
        // gating (block row counts predate folding, so offsets must be
        // applied to the folded stream).
        let mut keys = Vec::new();
        for k in 0..400u64 {
            keys.extend(std::iter::repeat_n(k, 15));
        }
        keys.shuffle(&mut StdRng::seed_from_u64(33));
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let spec = SortSpec::ascending(50).with_offset(100);
        let (out, m) = run_op(spec, dedup_config(60 * row_bytes), &keys);
        assert_eq!(out, (100..150).collect::<Vec<_>>());
        assert!(m.spilled);
    }

    #[test]
    fn aggregate_count_externally_matches_per_group_counts() {
        // COUNT per group with 7 copies of each key; value aggregates get
        // no pre-aggregation filtering, so every row flows through the
        // fold pipeline and each surviving group carries its exact count.
        let mut keys = Vec::new();
        for k in 0..200u64 {
            keys.extend(std::iter::repeat_n(k, 7));
        }
        keys.shuffle(&mut StdRng::seed_from_u64(34));
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let cfg = TopKConfig::builder()
            .memory_budget(60 * row_bytes)
            .block_bytes(1024)
            .aggregate(histok_types::AggregateOp::Count)
            .build()
            .unwrap();
        let mut op =
            HistogramTopK::new(SortSpec::ascending(100), cfg, MemoryBackend::new()).unwrap();
        for &k in &keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<(u64, u64)> = op
            .finish()
            .unwrap()
            .map(|r| {
                let r = r.unwrap();
                (r.key, histok_types::decode_count(&r.payload))
            })
            .collect();
        assert_eq!(out, (0..100).map(|k| (k, 7)).collect::<Vec<_>>());
        let m = op.metrics();
        assert!(m.spilled);
        assert!(m.rows_folded > 0);
        assert_eq!(m.eliminated_at_input, 0, "no input elimination under value aggregation");
    }
}
