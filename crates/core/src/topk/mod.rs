//! The top-k operators: the paper's algorithm and the baselines it is
//! evaluated against.
//!
//! | Operator | Paper section | Behaviour beyond memory |
//! |---|---|---|
//! | [`HistogramTopK`] | §3 (the contribution) | spills, filtering input with a histogram-derived cutoff |
//! | [`InMemoryTopK`] | §2.3 | assumes provisioned memory; never spills |
//! | [`TraditionalExternalTopK`] | §2.4 | externally sorts the *entire* input |
//! | [`OptimizedExternalTopK`] | §2.5 ([Graefe'08]) | run size ≤ k, kth-key filter, early merge steps |
//!
//! All four implement [`TopKOperator`], so experiments drive them through
//! one interface.

mod histogram_topk;
mod in_memory;
mod optimized;
mod traditional;

pub use histogram_topk::HistogramTopK;
pub use in_memory::InMemoryTopK;
pub use optimized::OptimizedExternalTopK;
pub use traditional::TraditionalExternalTopK;

use histok_sort::{row_footprint, BinaryHeapBy};
use histok_types::{Error, Result, Row, SortKey, SortOrder, SortSpec};

use crate::metrics::OperatorMetrics;

/// A boxed stream of output rows in the requested order.
pub type RowStream<K> = Box<dyn Iterator<Item = Result<Row<K>>> + Send>;

/// The uniform push/finish interface of every top-k algorithm.
pub trait TopKOperator<K: SortKey>: Send {
    /// Offers one input row.
    fn push(&mut self, row: Row<K>) -> Result<()>;

    /// Ends the input and returns the output stream (`offset` rows skipped,
    /// at most `limit` rows). Calling `finish` twice is an error.
    fn finish(&mut self) -> Result<RowStream<K>>;

    /// Execution counters.
    fn metrics(&self) -> OperatorMetrics;

    /// A short algorithm name for reports.
    fn algorithm(&self) -> &'static str;
}

/// Outcome of offering a row to a [`RetainedHeap`] or [`FoldedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Offer {
    /// The store grew by one row.
    Grew,
    /// The row replaced a worse one (one candidate eliminated).
    Displaced,
    /// The row was rejected (eliminated immediately).
    Rejected,
    /// The row folded into an existing group's accumulator
    /// ([`FoldedStore`] only).
    Folded,
}

/// The classic in-memory top-k structure (§2.3): a priority queue in the
/// inverse of the output order, capped at `retained` rows. Its top entry is
/// the worst retained row — the in-memory cutoff key.
/// Boxed runtime comparator for rows.
type RowCmp<K> = Box<dyn FnMut(&Row<K>, &Row<K>) -> bool + Send>;
/// Heap of rows ordered by a boxed runtime comparator.
type RowHeap<K> = BinaryHeapBy<Row<K>, RowCmp<K>>;

pub(crate) struct RetainedHeap<K: SortKey> {
    heap: RowHeap<K>,
    retained: u64,
    bytes: usize,
    order: SortOrder,
}

impl<K: SortKey> RetainedHeap<K> {
    pub(crate) fn new(retained: u64, order: SortOrder) -> Self {
        let cmp: RowCmp<K> = Box::new(move |a, b| order.follows(&a.key, &b.key));
        RetainedHeap { heap: BinaryHeapBy::new(cmp), retained: retained.max(1), bytes: 0, order }
    }

    pub(crate) fn len(&self) -> u64 {
        self.heap.len() as u64
    }

    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    pub(crate) fn is_full(&self) -> bool {
        self.len() >= self.retained
    }

    /// The in-memory cutoff: the worst retained key once the heap is full.
    pub(crate) fn cutoff(&self) -> Option<&K> {
        if self.is_full() {
            self.heap.peek().map(|r| &r.key)
        } else {
            None
        }
    }

    pub(crate) fn offer(&mut self, row: Row<K>) -> Offer {
        let fp = row_footprint(&row);
        if !self.is_full() {
            self.bytes += fp;
            self.heap.push(row);
            return Offer::Grew;
        }
        let worst = self.heap.peek().expect("full heap has a top");
        if self.order.precedes(&row.key, &worst.key) {
            self.bytes += fp;
            let old = self.heap.replace_top(row).expect("full heap");
            self.bytes -= row_footprint(&old);
            Offer::Displaced
        } else {
            Offer::Rejected
        }
    }

    /// Removes all rows in unspecified order (used when switching to the
    /// external mode: the retained rows re-enter through run generation).
    pub(crate) fn drain_unordered(&mut self) -> Vec<Row<K>> {
        self.bytes = 0;
        self.heap.drain_unordered().collect()
    }

    /// Consumes the heap, returning rows in output order (best first).
    pub(crate) fn into_sorted(self) -> Vec<Row<K>> {
        // The heap pops worst-first; reverse for output order.
        let mut rows = self.heap.drain_sorted();
        rows.reverse();
        rows
    }
}

/// In-memory phase store for dedup/aggregate queries: one row per distinct
/// key, capped at `retained` groups, ordered by key. A duplicate folds into
/// its group's accumulator the moment it arrives; once the store is full, a
/// row whose key sorts strictly after the worst retained group is rejected
/// outright.
///
/// Rejection is sound even for value aggregates, where dropping an
/// arbitrary row would corrupt its group's SUM/COUNT: the retained key set
/// only ever *improves* (an eviction replaces the worst key with a strictly
/// better one), so if a group is ever rejected or evicted, `retained`
/// strictly better groups exist from that point on and the group can never
/// re-enter the output. No row of an output group is ever dropped
/// (DESIGN.md §14).
pub(crate) struct FoldedStore<K: SortKey> {
    map: std::collections::BTreeMap<K, Row<K>>,
    retained: usize,
    bytes: usize,
    order: SortOrder,
    agg: std::sync::Arc<dyn histok_types::Aggregator>,
    /// Fold counters, recorded as they happen (shared with the external
    /// pipeline's sinks so `metrics()` sees one total).
    stats: histok_sort::FoldStats,
}

impl<K: SortKey> FoldedStore<K> {
    pub(crate) fn new(
        retained: u64,
        order: SortOrder,
        agg: std::sync::Arc<dyn histok_types::Aggregator>,
        stats: histok_sort::FoldStats,
    ) -> Self {
        FoldedStore {
            map: std::collections::BTreeMap::new(),
            retained: retained.max(1) as usize,
            bytes: 0,
            order,
            agg,
            stats,
        }
    }

    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    pub(crate) fn is_full(&self) -> bool {
        self.map.len() >= self.retained
    }

    /// The worst retained group key once the store holds `retained` groups.
    pub(crate) fn cutoff(&self) -> Option<&K> {
        if !self.is_full() {
            return None;
        }
        match self.order {
            SortOrder::Ascending => self.map.keys().next_back(),
            SortOrder::Descending => self.map.keys().next(),
        }
    }

    pub(crate) fn offer(&mut self, row: Row<K>) -> Offer {
        if let Some(acc) = self.map.get_mut(&row.key) {
            self.stats.record_pre_spill(1, row.encoded_len() as u64);
            if let Some(folded) = self.agg.fold(&acc.payload, &row.payload) {
                let old = row_footprint(acc);
                acc.payload = folded;
                self.bytes = self.bytes.saturating_sub(old) + row_footprint(acc);
            }
            return Offer::Folded;
        }
        if !self.is_full() {
            self.bytes += row_footprint(&row);
            self.map.insert(row.key.clone(), row);
            return Offer::Grew;
        }
        let worst = self.cutoff().expect("full store has a worst group").clone();
        if self.order.precedes(&row.key, &worst) {
            let evicted = self.map.remove(&worst).expect("cutoff key is in the map");
            self.bytes = self.bytes.saturating_sub(row_footprint(&evicted));
            self.bytes += row_footprint(&row);
            self.map.insert(row.key.clone(), row);
            Offer::Displaced
        } else {
            Offer::Rejected
        }
    }

    /// Removes all group rows in unspecified order (switching to external
    /// mode: the accumulated groups re-enter through run generation).
    pub(crate) fn drain_unordered(&mut self) -> Vec<Row<K>> {
        self.bytes = 0;
        std::mem::take(&mut self.map).into_values().collect()
    }

    /// Consumes the store, returning group rows in output order.
    pub(crate) fn into_sorted(self) -> Vec<Row<K>> {
        let rows: Vec<Row<K>> = self.map.into_values().collect();
        match self.order {
            SortOrder::Ascending => rows,
            SortOrder::Descending => rows.into_iter().rev().collect(),
        }
    }
}

/// Applies `OFFSET`/`LIMIT` to a fallible row stream: skips `offset` *rows*
/// (errors still propagate immediately — unlike `Iterator::skip`, which
/// would swallow them) and stops after `limit` rows.
pub(crate) struct SpecStream<K, I> {
    inner: I,
    to_skip: u64,
    remaining: u64,
    _key: std::marker::PhantomData<K>,
}

impl<K, I> SpecStream<K, I> {
    pub(crate) fn new(inner: I, spec: &SortSpec) -> Self {
        SpecStream {
            inner,
            to_skip: spec.offset,
            remaining: spec.limit,
            _key: std::marker::PhantomData,
        }
    }
}

impl<K, I: Iterator<Item = Result<Row<K>>>> Iterator for SpecStream<K, I> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.remaining == 0 {
                return None;
            }
            match self.inner.next() {
                None => return None,
                Some(Err(e)) => {
                    self.remaining = 0;
                    return Some(Err(e));
                }
                Some(Ok(row)) => {
                    if self.to_skip > 0 {
                        self.to_skip -= 1;
                        continue;
                    }
                    self.remaining -= 1;
                    return Some(Ok(row));
                }
            }
        }
    }
}

/// Guards against a second `finish` call.
pub(crate) fn already_finished<T>(what: &str) -> Result<T> {
    Err(Error::InvalidConfig(format!("{what}: finish() called twice")))
}

/// Wraps an output stream so the wall-clock time between `finish()` and the
/// stream being dropped is charged to the final-merge phase: one `Instant`
/// pair for the whole stream, nothing per row. The total lands in a shared
/// atomic so `metrics()` can read it after the stream is gone.
pub(crate) struct TimedStream<I> {
    pub(crate) inner: I,
    started: std::time::Instant,
    sink_ns: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl<I> TimedStream<I> {
    pub(crate) fn new(inner: I, sink_ns: std::sync::Arc<std::sync::atomic::AtomicU64>) -> Self {
        TimedStream { inner, started: std::time::Instant::now(), sink_ns }
    }
}

impl<I: Iterator> Iterator for TimedStream<I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl<I> Drop for TimedStream<I> {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.sink_ns.fetch_add(ns, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Keeps a run catalog (and therefore its spilled objects) alive while the
/// output stream that reads them is consumed.
pub(crate) struct HoldCatalog<K: SortKey, I> {
    pub(crate) _catalog: std::sync::Arc<histok_storage::RunCatalog<K>>,
    pub(crate) inner: I,
}

impl<K: SortKey, I: Iterator<Item = Result<Row<K>>>> Iterator for HoldCatalog<K, I> {
    type Item = Result<Row<K>>;
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retained_heap_keeps_the_best_k() {
        let mut h: RetainedHeap<u64> = RetainedHeap::new(3, SortOrder::Ascending);
        assert_eq!(h.offer(Row::key_only(50)), Offer::Grew);
        assert_eq!(h.offer(Row::key_only(10)), Offer::Grew);
        assert_eq!(h.offer(Row::key_only(30)), Offer::Grew);
        assert!(h.is_full());
        assert_eq!(h.cutoff(), Some(&50));
        assert_eq!(h.offer(Row::key_only(99)), Offer::Rejected);
        assert_eq!(h.offer(Row::key_only(20)), Offer::Displaced);
        assert_eq!(h.cutoff(), Some(&30));
        assert_eq!(h.into_sorted().iter().map(|r| r.key).collect::<Vec<_>>(), vec![10, 20, 30]);
    }

    #[test]
    fn retained_heap_descending() {
        let mut h: RetainedHeap<u64> = RetainedHeap::new(2, SortOrder::Descending);
        for k in [5u64, 1, 9, 7] {
            h.offer(Row::key_only(k));
        }
        assert_eq!(h.cutoff(), Some(&7));
        assert_eq!(h.into_sorted().iter().map(|r| r.key).collect::<Vec<_>>(), vec![9, 7]);
    }

    #[test]
    fn retained_heap_tracks_bytes() {
        let mut h: RetainedHeap<u64> = RetainedHeap::new(2, SortOrder::Ascending);
        h.offer(Row::new(1, vec![0u8; 100]));
        let one = h.bytes();
        h.offer(Row::new(2, vec![0u8; 100]));
        assert_eq!(h.bytes(), 2 * one);
        h.offer(Row::new(0, vec![0u8; 10])); // displaces key 2
        assert!(h.bytes() < 2 * one);
        h.drain_unordered();
        assert_eq!(h.bytes(), 0);
    }

    #[test]
    fn retained_heap_with_duplicates_at_cutoff() {
        let mut h: RetainedHeap<u64> = RetainedHeap::new(2, SortOrder::Ascending);
        h.offer(Row::key_only(5));
        h.offer(Row::key_only(5));
        // Equal to the cutoff: rejected (heap already holds k candidates at
        // least as good — matches §2.3's priority-queue semantics).
        assert_eq!(h.offer(Row::key_only(5)), Offer::Rejected);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn folded_store_folds_duplicates_and_evicts_whole_groups() {
        use histok_types::{decode_count, AggregateOp, Bytes};
        let agg = AggregateOp::Count.aggregator();
        let stats = histok_sort::FoldStats::new();
        let mut s: FoldedStore<u64> =
            FoldedStore::new(2, SortOrder::Ascending, agg.clone(), stats.clone());
        let row = |k: u64| Row::new(k, agg.init(Bytes::new()));
        assert_eq!(s.offer(row(10)), Offer::Grew);
        assert_eq!(s.offer(row(10)), Offer::Folded);
        assert_eq!(s.offer(row(30)), Offer::Grew);
        assert!(s.is_full());
        assert_eq!(s.cutoff(), Some(&30));
        assert_eq!(s.offer(row(40)), Offer::Rejected);
        assert_eq!(s.offer(row(20)), Offer::Displaced); // evicts group 30
        assert_eq!(s.offer(row(30)), Offer::Rejected, "evicted groups stay out");
        assert_eq!(s.offer(row(10)), Offer::Folded);
        assert_eq!(stats.snapshot().rows_folded, 2);
        assert!(s.bytes() > 0);
        let out = s.into_sorted();
        assert_eq!(out.iter().map(|r| r.key).collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(decode_count(&out[0].payload), 3);
        assert_eq!(decode_count(&out[1].payload), 1);
    }

    #[test]
    fn folded_store_descending_order() {
        use histok_types::{AggregateOp, Bytes};
        let agg = AggregateOp::First.aggregator();
        let mut s: FoldedStore<u64> =
            FoldedStore::new(2, SortOrder::Descending, agg.clone(), histok_sort::FoldStats::new());
        for k in [5u64, 9, 5, 1, 7] {
            s.offer(Row::new(k, agg.init(Bytes::new())));
        }
        assert_eq!(s.cutoff(), Some(&7));
        let out = s.into_sorted();
        assert_eq!(out.iter().map(|r| r.key).collect::<Vec<_>>(), vec![9, 7]);
    }

    #[test]
    fn spec_stream_applies_offset_and_limit() {
        let spec = SortSpec::ascending(3).with_offset(2);
        let rows: Vec<Result<Row<u64>>> = (0..10).map(|k| Ok(Row::key_only(k))).collect();
        let got: Vec<u64> =
            SpecStream::new(rows.into_iter(), &spec).map(|r| r.unwrap().key).collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn spec_stream_propagates_errors_in_skipped_region() {
        let spec = SortSpec::ascending(3).with_offset(5);
        let rows: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(1)), Err(Error::Corrupt("mid-skip".into()))];
        let mut s = SpecStream::new(rows.into_iter(), &spec);
        assert!(matches!(s.next(), Some(Err(Error::Corrupt(_)))));
        assert!(s.next().is_none());
    }

    #[test]
    fn spec_stream_short_input() {
        let spec = SortSpec::ascending(10).with_offset(3);
        let rows: Vec<Result<Row<u64>>> = (0..5).map(|k| Ok(Row::key_only(k))).collect();
        let got: Vec<u64> =
            SpecStream::new(rows.into_iter(), &spec).map(|r| r.unwrap().key).collect();
        assert_eq!(got, vec![3, 4]);
    }
}
