//! The traditional external-merge-sort top-k (§2.4).
//!
//! "The entire input is consumed and written to sorted runs on secondary
//! storage, the final result is produced by scanning and merging all the
//! sorted runs until k records have been produced." No cutoff, no run-size
//! limit, quicksort runs — the PostgreSQL behaviour whose order-of-magnitude
//! performance cliff §5.2 demonstrates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use histok_sort::{CascadeStats, CmpStats, ExternalSorter, MemoryBudget, MergeTuning};
use histok_storage::{IoStats, StorageBackend};
use histok_types::{Error, Phase, PhaseTimer, Result, Row, SortKey, SortSpec};

use crate::config::TopKConfig;
use crate::metrics::OperatorMetrics;
use crate::topk::{already_finished, RowStream, SpecStream, TimedStream, TopKOperator};

/// Top-k by fully sorting the input externally, then taking `k` rows.
pub struct TraditionalExternalTopK<K: SortKey> {
    spec: SortSpec,
    sorter: Option<ExternalSorter<K>>,
    backend: Arc<dyn StorageBackend>,
    stats: IoStats,
    rows_in: u64,
    peak_bytes: usize,
    budget: usize,
    /// The whole consume stage is run generation: there is no filtering
    /// in-memory phase to account separately.
    timer: PhaseTimer,
    final_merge_ns: Arc<AtomicU64>,
    /// Shared comparison counters the final merge flushes into.
    cmp_stats: CmpStats,
    merge_partitions: u64,
    partition_counters: Option<histok_sort::PartitionCounters>,
    cascade: CascadeStats,
}

impl<K: SortKey> TraditionalExternalTopK<K> {
    /// Creates the operator with `budget_bytes` of sort workspace.
    pub fn new(
        spec: SortSpec,
        budget_bytes: usize,
        backend: impl StorageBackend + 'static,
    ) -> Result<Self> {
        Self::with_arc(spec, budget_bytes, Arc::new(backend))
    }

    /// As [`TraditionalExternalTopK::new`] with a shared backend and the
    /// I/O knobs from `config` (block size, spill pipeline, read-ahead,
    /// offset-value coding); the sort workspace is `config.memory_budget`.
    pub fn with_config(
        spec: SortSpec,
        config: &TopKConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self> {
        config.validate()?;
        if config.fold_op().is_some() {
            return Err(Error::InvalidConfig(
                "dedup/aggregate queries are not supported by the traditional baseline".into(),
            ));
        }
        let mut op = Self::with_budget(spec, config.make_budget(), backend)?;
        let sorter = op.sorter.take().expect("sorter present before first push");
        op.sorter = Some(
            sorter
                .with_block_bytes(config.block_bytes)
                .with_spill_pipeline(config.spill_pipeline)
                .with_merge_threads(config.merge_threads)
                .with_partition_min_rows(config.partition_min_rows)
                .with_cascade_threads(config.cascade_workers())
                .with_tuning(MergeTuning {
                    ovc: config.ovc_enabled,
                    stats: Some(op.cmp_stats.clone()),
                    readahead_blocks: config.readahead_blocks,
                    io_scheduler: None,
                    batch_rows: config.batch_rows,
                    fold: None,
                })
                // After with_tuning: sets both the catalog's spill pool and
                // the tuning's read-ahead pool.
                .with_io_scheduler(config.io_scheduler()),
        );
        Ok(op)
    }

    /// As [`TraditionalExternalTopK::new`] with a shared backend.
    pub fn with_arc(
        spec: SortSpec,
        budget_bytes: usize,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self> {
        if budget_bytes == 0 {
            return Err(Error::InvalidConfig("memory budget must be positive".into()));
        }
        Self::with_budget(spec, MemoryBudget::new(budget_bytes), backend)
    }

    /// As [`TraditionalExternalTopK::with_arc`] with a caller-built budget
    /// (possibly reading its limit through a shared lease handle).
    fn with_budget(
        spec: SortSpec,
        budget: MemoryBudget,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self> {
        spec.validate()?;
        let stats = IoStats::new();
        let cmp_stats = CmpStats::new();
        let budget_bytes = budget.limit();
        let sorter =
            ExternalSorter::with_memory_budget(backend.clone(), spec.order, budget, stats.clone())
                .with_tuning(MergeTuning {
                    ovc: true,
                    stats: Some(cmp_stats.clone()),
                    ..MergeTuning::default()
                });
        Ok(TraditionalExternalTopK {
            spec,
            sorter: Some(sorter),
            backend,
            stats,
            rows_in: 0,
            peak_bytes: 0,
            budget: budget_bytes,
            timer: PhaseTimer::started(Phase::RunGeneration),
            final_merge_ns: Arc::new(AtomicU64::new(0)),
            cmp_stats,
            merge_partitions: 1,
            partition_counters: None,
            cascade: CascadeStats::default(),
        })
    }

    /// The shared I/O counters.
    pub fn io_stats(&self) -> &IoStats {
        &self.stats
    }
}

impl<K: SortKey> TopKOperator<K> for TraditionalExternalTopK<K> {
    fn push(&mut self, row: Row<K>) -> Result<()> {
        let sorter =
            self.sorter.as_mut().ok_or_else(|| Error::InvalidConfig("push after finish".into()))?;
        self.rows_in += 1;
        sorter.push(row)
    }

    fn finish(&mut self) -> Result<RowStream<K>> {
        let Some(sorter) = self.sorter.take() else {
            return already_finished("TraditionalExternalTopK");
        };
        self.peak_bytes = self.budget; // uses its whole workspace
        let stream = sorter.finish()?;
        self.merge_partitions = stream.merge_partitions() as u64;
        self.partition_counters = stream.partition_counters();
        self.cascade = stream.cascade_stats();
        self.timer.stop();
        Ok(Box::new(TimedStream::new(
            SpecStream::new(stream, &self.spec),
            self.final_merge_ns.clone(),
        )))
    }

    fn metrics(&self) -> OperatorMetrics {
        let mut io = self.stats.snapshot();
        io.modelled_io_ns = io.modelled_io_ns.max(self.backend.modelled_io_ns());
        let mut phases = self.timer.snapshot();
        phases.spill_write_ns = io.write_latency.total_ns;
        phases.final_merge_ns += self.final_merge_ns.load(Ordering::Relaxed);
        OperatorMetrics {
            rows_in: self.rows_in,
            io,
            spilled: io.runs_created > 0,
            peak_memory_bytes: self.peak_bytes,
            cmp: self.cmp_stats.snapshot(),
            phases,
            merge_partitions: self.merge_partitions,
            partition_rows: self
                .partition_counters
                .as_ref()
                .map(|c| c.snapshot())
                .unwrap_or_default(),
            cascade: self.cascade,
            ..Default::default()
        }
    }

    fn algorithm(&self) -> &'static str {
        "traditional-ems"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    #[test]
    fn produces_exact_top_k_and_spills_everything() {
        let mut keys: Vec<u64> = (0..5000).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(11));
        let mut op =
            TraditionalExternalTopK::new(SortSpec::ascending(50), 100 * 60, MemoryBackend::new())
                .unwrap();
        for k in keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        let m = op.metrics();
        // The defining flaw: all 5000 rows were spilled for 50 outputs.
        assert!(m.rows_spilled() >= 5000);
        assert!((m.spill_fraction() - 1.0).abs() < 0.01 || m.spill_fraction() > 1.0);
        assert_eq!(m.eliminated_at_input, 0);
    }

    #[test]
    fn offset_works() {
        let mut op = TraditionalExternalTopK::new(
            SortSpec::ascending(5).with_offset(10),
            40 * 60,
            MemoryBackend::new(),
        )
        .unwrap();
        for k in (0..200u64).rev() {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn small_input_without_spilling() {
        let mut op =
            TraditionalExternalTopK::new(SortSpec::descending(2), 1 << 20, MemoryBackend::new())
                .unwrap();
        for k in [4u64, 8, 2] {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, vec![8, 4]);
    }

    #[test]
    fn finish_twice_errors() {
        let mut op: TraditionalExternalTopK<u64> =
            TraditionalExternalTopK::new(SortSpec::ascending(1), 1024, MemoryBackend::new())
                .unwrap();
        let _ = op.finish().unwrap();
        assert!(op.finish().is_err());
    }

    #[test]
    fn zero_budget_rejected() {
        assert!(TraditionalExternalTopK::<u64>::new(
            SortSpec::ascending(1),
            0,
            MemoryBackend::new()
        )
        .is_err());
    }
}
