//! Top-k *groups* ranked by an aggregate value:
//! `SELECT key, AGG(v) GROUP BY key ORDER BY AGG(v) DESC LIMIT k`.
//!
//! Unlike [`crate::HistogramTopK`], the ranking criterion — the aggregate
//! value — is not known until every duplicate of a group has been folded
//! into its accumulator, so no cutoff may prune on it while partial
//! aggregates are still unmerged (DESIGN.md §14). The operator instead
//! runs a *fold-mode* external sort on the group key: duplicates collapse
//! inside run generation, at every merge duel, and across cascade passes,
//! so storage traffic is proportional to the number of *distinct groups*,
//! not input rows. The merged stream of complete groups then passes
//! through a bounded value-ranked heap that keeps the best `k`.

use std::sync::Arc;

use histok_sort::{CmpStats, ExternalSorter, FoldSpec, FoldStats, MergeTuning};
use histok_storage::{IoStats, StorageBackend};
use histok_types::{
    AggregateOp, Aggregator, Bytes, Error, F64Key, KeyPair, Result, Row, SortKey, SortOrder,
};

use crate::config::{RunGenMode, TopKConfig};
use crate::metrics::OperatorMetrics;
use crate::topk::RetainedHeap;

/// One output group of [`GroupedAggTopK`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggGroup<K> {
    /// The group key.
    pub key: K,
    /// The aggregate value the group was ranked by.
    pub value: f64,
    /// The group's raw accumulator payload (decodable with
    /// [`histok_types::decode_count`] / [`histok_types::decode_f64`]).
    pub acc: Bytes,
}

/// Grouped top-k by aggregate value over a fold-mode external sort.
///
/// ```
/// use histok_core::{GroupedAggTopK, TopKConfig};
/// use histok_storage::MemoryBackend;
/// use histok_types::{AggregateOp, Row, SortOrder};
///
/// // Top 2 keys by COUNT(*) — key k appears k+1 times.
/// let config =
///     TopKConfig::builder().memory_budget(1 << 20).aggregate(AggregateOp::Count).build()?;
/// let mut op = GroupedAggTopK::new(2, SortOrder::Descending, config, MemoryBackend::new())?;
/// for key in 0..10u64 {
///     for _ in 0..=key {
///         op.push(Row::key_only(key))?;
///     }
/// }
/// let groups = op.finish()?;
/// let top: Vec<(u64, f64)> = groups.iter().map(|g| (g.key, g.value)).collect();
/// assert_eq!(top, vec![(9, 10.0), (8, 9.0)]);
/// # Ok::<(), histok_types::Error>(())
/// ```
pub struct GroupedAggTopK<K: SortKey> {
    sorter: Option<ExternalSorter<K>>,
    agg: Arc<dyn Aggregator>,
    k: u64,
    /// Order of the *values*: `Descending` = largest aggregates win.
    value_order: SortOrder,
    fold_stats: FoldStats,
    cmp_stats: CmpStats,
    stats: IoStats,
    rows_in: u64,
    groups_seen: u64,
}

impl<K: SortKey> GroupedAggTopK<K> {
    /// Creates the operator: the best `k` groups under `value_order`
    /// (ties broken by group key, same order — deterministic). The config
    /// must carry a numeric [`TopKConfig::aggregate`]; `First` has no
    /// value to rank by and is rejected.
    pub fn new(
        k: u64,
        value_order: SortOrder,
        config: TopKConfig,
        backend: impl StorageBackend + 'static,
    ) -> Result<Self> {
        Self::with_arc(k, value_order, config, Arc::new(backend))
    }

    /// As [`GroupedAggTopK::new`] with a shared backend handle.
    pub fn with_arc(
        k: u64,
        value_order: SortOrder,
        config: TopKConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self> {
        config.validate()?;
        let Some(op) = config.aggregate else {
            return Err(Error::InvalidConfig(
                "GroupedAggTopK requires an aggregate (COUNT/SUM/MIN/MAX)".into(),
            ));
        };
        if op == AggregateOp::First {
            return Err(Error::InvalidConfig(
                "FIRST has no numeric value to rank groups by; use HistogramTopK with dedup".into(),
            ));
        }
        if k == 0 {
            return Err(Error::InvalidConfig("k must be positive".into()));
        }
        let stats = IoStats::new();
        let fold_stats = FoldStats::new();
        let cmp_stats = CmpStats::new();
        let agg = op.aggregator();
        // Group keys are sorted ascending — any total order works, the
        // value ranking happens after the fold completes.
        let mut sorter = ExternalSorter::with_memory_budget(
            backend,
            SortOrder::Ascending,
            config.make_budget(),
            stats.clone(),
        )
        .with_block_bytes(config.block_bytes)
        .with_spill_pipeline(config.spill_pipeline)
        .with_fan_in(config.merge.fan_in)
        .with_merge_threads(config.merge_threads)
        .with_partition_min_rows(config.partition_min_rows)
        .with_cascade_threads(config.cascade_workers())
        .with_tuning(MergeTuning {
            ovc: config.ovc_enabled,
            stats: Some(cmp_stats.clone()),
            readahead_blocks: config.readahead_blocks,
            io_scheduler: None,
            batch_rows: config.batch_rows,
            fold: None, // re-applied from with_fold at finish time
        })
        .with_io_scheduler(config.io_scheduler());
        if matches!(config.run_gen_mode, RunGenMode::Batch) {
            sorter = sorter.with_batch_run_gen(true);
        }
        sorter = sorter.with_fold(FoldSpec::new(agg.clone()).with_stats(fold_stats.clone()));
        Ok(GroupedAggTopK {
            sorter: Some(sorter),
            agg,
            k,
            value_order,
            fold_stats,
            cmp_stats,
            stats,
            rows_in: 0,
            groups_seen: 0,
        })
    }

    /// Offers one input row; its payload is fed through
    /// [`Aggregator::init`] exactly once here.
    pub fn push(&mut self, row: Row<K>) -> Result<()> {
        let sorter =
            self.sorter.as_mut().ok_or_else(|| Error::InvalidConfig("push after finish".into()))?;
        self.rows_in += 1;
        sorter.push(Row { payload: self.agg.init(row.payload), key: row.key })
    }

    /// Completes the aggregation and returns the best `k` groups in value
    /// order. Calling `finish` twice is an error.
    pub fn finish(&mut self) -> Result<Vec<AggGroup<K>>> {
        let sorter = self
            .sorter
            .take()
            .ok_or_else(|| Error::InvalidConfig("GroupedAggTopK: finish() called twice".into()))?;
        // The folded merge emits each distinct group exactly once, with its
        // aggregate complete — only now may the value rank (and prune).
        let mut heap: RetainedHeap<KeyPair<F64Key, K>> =
            RetainedHeap::new(self.k, self.value_order);
        for row in sorter.finish()? {
            let row = row?;
            self.groups_seen += 1;
            let value = self.agg.value(&row.payload).unwrap_or(0.0);
            heap.offer(Row::new(KeyPair(F64Key(value), row.key), row.payload));
        }
        Ok(heap
            .into_sorted()
            .into_iter()
            .map(|row| {
                let KeyPair(value, key) = row.key;
                AggGroup { key, value: value.get(), acc: row.payload }
            })
            .collect())
    }

    /// Distinct groups the final merge emitted (0 before `finish`).
    pub fn groups_seen(&self) -> u64 {
        self.groups_seen
    }

    /// Execution counters (fold counters live in `rows_folded` /
    /// `bytes_folded_pre_spill`).
    pub fn metrics(&self) -> OperatorMetrics {
        let io = self.stats.snapshot();
        let fold = self.fold_stats.snapshot();
        OperatorMetrics {
            rows_in: self.rows_in,
            spilled: io.runs_created > 0,
            io,
            cmp: self.cmp_stats.snapshot(),
            rows_folded: fold.rows_folded,
            bytes_folded_pre_spill: fold.bytes_folded_pre_spill,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use histok_types::{decode_count, encode_f64};
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    fn config(budget: usize, op: AggregateOp) -> TopKConfig {
        TopKConfig::builder().memory_budget(budget).block_bytes(1024).aggregate(op).build().unwrap()
    }

    #[test]
    fn top_groups_by_count_spilling() {
        // Key k appears (k+1)*40 times, 0..10 — shuffled, with memory for
        // a fraction of the input so the sort spills. Batch run generation
        // collapses every in-batch duplicate post-sort, so each spilled
        // batch shrinks to at most the distinct-key count.
        let mut keys = Vec::new();
        for k in 0..10u64 {
            keys.extend(std::iter::repeat_n(k, ((k + 1) * 40) as usize));
        }
        keys.shuffle(&mut StdRng::seed_from_u64(21));
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let cfg = TopKConfig::builder()
            .memory_budget(80 * row_bytes)
            .block_bytes(1024)
            .run_gen_mode(RunGenMode::Batch)
            .aggregate(AggregateOp::Count)
            .build()
            .unwrap();
        let mut op: GroupedAggTopK<u64> =
            GroupedAggTopK::new(3, SortOrder::Descending, cfg, MemoryBackend::new()).unwrap();
        let rows_in = keys.len() as u64;
        for k in keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let groups = op.finish().unwrap();
        let top: Vec<(u64, f64)> = groups.iter().map(|g| (g.key, g.value)).collect();
        assert_eq!(top, vec![(9, 400.0), (8, 360.0), (7, 320.0)]);
        assert_eq!(decode_count(&groups[0].acc), 400);
        assert_eq!(op.groups_seen(), 10);
        let m = op.metrics();
        assert_eq!(m.rows_in, rows_in);
        assert!(m.spilled);
        assert!(m.rows_folded > 0);
        // Folding keeps spill traffic near batches × distinct keys, far
        // below the input size.
        assert!(
            m.rows_spilled() < rows_in / 4,
            "spilled {} of {rows_in} rows despite folding",
            m.rows_spilled()
        );
    }

    #[test]
    fn top_groups_by_sum_ascending() {
        // Key k contributes rows summing to 3k; ascending value order
        // surfaces the *smallest* sums.
        let mut rows = Vec::new();
        for k in 0..50u64 {
            for _ in 0..3 {
                rows.push(Row::new(k, encode_f64(k as f64)));
            }
        }
        rows.shuffle(&mut StdRng::seed_from_u64(22));
        let mut op: GroupedAggTopK<u64> = GroupedAggTopK::new(
            2,
            SortOrder::Ascending,
            config(1 << 20, AggregateOp::Sum),
            MemoryBackend::new(),
        )
        .unwrap();
        for row in rows {
            op.push(row).unwrap();
        }
        let top: Vec<(u64, f64)> = op.finish().unwrap().iter().map(|g| (g.key, g.value)).collect();
        assert_eq!(top, vec![(0, 0.0), (1, 3.0)]);
    }

    #[test]
    fn rejects_configs_without_a_numeric_aggregate() {
        let plain = TopKConfig::builder().memory_budget(1 << 20).build().unwrap();
        assert!(GroupedAggTopK::<u64>::new(5, SortOrder::Descending, plain, MemoryBackend::new())
            .is_err());
        let dedup = TopKConfig::builder().memory_budget(1 << 20).dedup(true).build().unwrap();
        assert!(GroupedAggTopK::<u64>::new(5, SortOrder::Descending, dedup, MemoryBackend::new())
            .is_err());
    }

    #[test]
    fn finish_twice_and_push_after_finish_error() {
        let mut op: GroupedAggTopK<u64> = GroupedAggTopK::new(
            1,
            SortOrder::Descending,
            config(1 << 20, AggregateOp::Count),
            MemoryBackend::new(),
        )
        .unwrap();
        op.push(Row::key_only(1)).unwrap();
        let _ = op.finish().unwrap();
        assert!(op.finish().is_err());
        assert!(op.push(Row::key_only(2)).is_err());
    }
}
