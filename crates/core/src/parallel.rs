//! Parallel top-k with a shared histogram priority queue (§4.4).
//!
//! "If the participating threads share an address space, they may share a
//! histogram priority queue. Such a group of threads retains basically the
//! same number of input rows as a single thread." Worker threads run
//! independent run generation; all of them feed one shared [`CutoffFilter`]
//! behind a mutex, and the current cutoff key is *published* through a
//! read-write lock so the hot input-elimination test never contends on the
//! full filter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::{Mutex, RwLock};

use histok_sort::run_gen::{ReplacementSelection, RunGenerator};
use histok_sort::{
    merge_sources_partitioned, merge_sources_tuned, plan_merges_cascade, plan_partitions,
    run_overlaps, split_sorted_rows, CascadeStats, CmpStats, MergeSource, MergeTuning,
    PartitionCounters, SpillObserver,
};
use histok_storage::{IoScheduler, IoStats, RunCatalog, StorageBackend};
use histok_types::{Error, Phase, PhaseTimer, Result, Row, SortKey, SortSpec};

use crate::config::TopKConfig;
use crate::cutoff::{filter_from_config, CutoffFilter};
use crate::histogram::HistogramBuilder;
use crate::metrics::OperatorMetrics;
use crate::sizing::SizingPolicy;
use crate::topk::{RowStream, SpecStream, TimedStream, TopKOperator};

/// The shared filter: the real [`CutoffFilter`] behind a mutex plus a
/// published copy of the cutoff key for cheap reads. Only the *priority
/// queue* is shared (§4.4); each worker builds its own runs' histograms
/// locally and inserts finished buckets under the lock.
struct Shared<K: SortKey> {
    filter: Mutex<CutoffFilter<K>>,
    published: RwLock<Option<K>>,
    eliminated_input: std::sync::atomic::AtomicU64,
    eliminated_spill: std::sync::atomic::AtomicU64,
    /// Times the published cutoff actually changed (≤ buckets inserted).
    republishes: std::sync::atomic::AtomicU64,
}

impl<K: SortKey> Shared<K> {
    /// The elimination test against the published cutoff (lock-light).
    fn eliminate(&self, key: &K, spec: &SortSpec) -> bool {
        match &*self.published.read() {
            Some(cut) => spec.order.follows(key, cut),
            None => false,
        }
    }

    /// Inserts a bucket into the shared queue and republishes the cutoff
    /// — but only when it actually moved. Most inserts land past the
    /// established cutoff and leave it unchanged; taking the write lock
    /// for those would stall every concurrent elimination test.
    fn insert_bucket(&self, bucket: crate::histogram::Bucket<K>) {
        let mut f = self.filter.lock();
        let before = f.cutoff().cloned();
        f.insert_bucket(bucket);
        let after = f.cutoff().cloned();
        drop(f);
        if before != after {
            *self.published.write() = after;
            self.republishes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// A worker's view of the shared filter: a private [`HistogramBuilder`]
/// for its own runs, the shared queue for bucket insertion and cutoff
/// reads.
struct SharedObserver<K: SortKey> {
    shared: Arc<Shared<K>>,
    builder: HistogramBuilder<K>,
    policy: SizingPolicy,
    emit_tail: bool,
    spec: SortSpec,
    /// Gates spill-time elimination (Algorithm 1 line 11); mirrors
    /// `filter_enabled && spill_filter` of the serial operator.
    spill_filter: bool,
}

impl<K: SortKey> SpillObserver<K> for SharedObserver<K> {
    fn run_started(&mut self, estimated_rows: u64) {
        self.builder.start_run(
            self.policy.width_for_run(estimated_rows.max(1)),
            self.policy.max_buckets_per_run(),
        );
    }
    fn should_eliminate(&mut self, key: &K) -> bool {
        if !self.spill_filter {
            return false;
        }
        let kill = self.shared.eliminate(key, &self.spec);
        if kill {
            self.shared.eliminated_spill.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        kill
    }
    fn row_spilled(&mut self, key: &K) {
        if let Some(bucket) = self.builder.offer(key) {
            self.shared.insert_bucket(bucket);
        }
    }
    fn run_finished(&mut self) {
        if let Some(tail) = self.builder.finish_run(self.emit_tail) {
            self.shared.insert_bucket(tail);
        }
    }
}

struct WorkerOutput<K: SortKey> {
    catalog: Arc<RunCatalog<K>>,
    residue: Vec<Vec<Row<K>>>,
    /// High-water mark of this worker's run-generation workspace.
    peak_bytes: usize,
}

/// Keeps every worker's run catalog alive while the final stream drains.
struct HoldAll<K: SortKey, I> {
    _catalogs: Vec<Arc<RunCatalog<K>>>,
    inner: I,
}

impl<K: SortKey, I: Iterator<Item = Result<Row<K>>>> Iterator for HoldAll<K, I> {
    type Item = Result<Row<K>>;
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

/// Multi-threaded top-k sharing one histogram filter across workers.
pub struct ParallelTopK<K: SortKey> {
    spec: SortSpec,
    config: TopKConfig,
    backend: Arc<dyn StorageBackend>,
    stats: IoStats,
    shared: Arc<Shared<K>>,
    senders: Vec<Sender<Row<K>>>,
    handles: Vec<JoinHandle<Result<WorkerOutput<K>>>>,
    next_worker: usize,
    rows_in: u64,
    finished: bool,
    /// `filter_enabled && input_filter`: gates Algorithm 1 line 4.
    input_filter: bool,
    /// Summed per-worker workspace high-water marks, known after `finish`.
    peak_bytes: usize,
    timer: PhaseTimer,
    final_merge_ns: Arc<AtomicU64>,
    /// Shared comparison counters: every worker's selection heap and the
    /// final merge flush into the same handle.
    cmp_stats: CmpStats,
    merge_partitions: u64,
    partition_counters: Option<PartitionCounters>,
    cascade: CascadeStats,
    /// One background-I/O pool shared by every worker's spills and the
    /// final merge (`None` = legacy thread-per-source).
    io_scheduler: Option<IoScheduler>,
}

impl<K: SortKey> ParallelTopK<K> {
    /// Spawns `threads` workers, each with `config.memory_budget` bytes of
    /// its own workspace, sharing `backend` and one cutoff filter.
    pub fn new(
        spec: SortSpec,
        config: TopKConfig,
        backend: impl StorageBackend + 'static,
        threads: usize,
    ) -> Result<Self> {
        Self::with_arc(spec, config, Arc::new(backend), threads)
    }

    /// As [`ParallelTopK::new`] with a shared backend.
    pub fn with_arc(
        spec: SortSpec,
        config: TopKConfig,
        backend: Arc<dyn StorageBackend>,
        threads: usize,
    ) -> Result<Self> {
        spec.validate()?;
        config.validate()?;
        if threads == 0 {
            return Err(Error::InvalidConfig("at least one worker thread required".into()));
        }
        if config.fold_op().is_some() {
            return Err(Error::InvalidConfig(
                "dedup/aggregate queries are not supported by the parallel operator".into(),
            ));
        }
        let stats = IoStats::new();
        // The same construction as the serial operator: honors
        // filter_enabled, approx_slack, spill_filter, sizing, tail buckets.
        let filter: CutoffFilter<K> = filter_from_config(&spec, &config);
        let shared = Arc::new(Shared {
            filter: Mutex::new(filter),
            published: RwLock::new(None),
            eliminated_input: std::sync::atomic::AtomicU64::new(0),
            eliminated_spill: std::sync::atomic::AtomicU64::new(0),
            republishes: std::sync::atomic::AtomicU64::new(0),
        });

        let cmp_stats = CmpStats::new();
        let input_filter = config.filter_enabled && config.input_filter;
        let spill_filter = config.filter_enabled && config.spill_filter;
        let effective_sizing =
            if config.filter_enabled { config.sizing } else { SizingPolicy::Disabled };

        // One pool for the whole operator: worker spills contend for the
        // same `io_threads` workers instead of spawning a thread per run.
        let io_scheduler = config.io_scheduler();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = bounded::<Row<K>>(4096);
            let catalog = Arc::new(
                RunCatalog::new(
                    backend.clone(),
                    RunCatalog::<K>::unique_prefix("ptopk"),
                    spec.order,
                    stats.clone(),
                )
                .with_block_bytes(config.block_bytes)
                .with_spill_pipeline(config.spill_pipeline)
                .with_io_scheduler(io_scheduler.clone()),
            );
            let worker_catalog = catalog.clone();
            let shared_for_worker = shared.clone();
            // Each worker charges its own counter; a shared lease handle
            // (if any) still governs every worker's limit.
            let budget = config.make_budget();
            let run_limit = if config.limit_run_size { Some(spec.retained()) } else { None };
            let residue_policy = config.residue;
            let worker_spec = spec;
            let policy = effective_sizing;
            let emit_tail = config.tail_buckets;
            let worker_ovc = config.ovc_enabled;
            let worker_cmp_stats = cmp_stats.clone();
            let handle = std::thread::spawn(move || -> Result<WorkerOutput<K>> {
                let mut gen = ReplacementSelection::with_budget(worker_catalog.clone(), budget)
                    .with_ovc(worker_ovc, Some(worker_cmp_stats));
                if let Some(limit) = run_limit {
                    gen = gen.with_run_limit(limit);
                }
                let mut obs = SharedObserver {
                    shared: shared_for_worker.clone(),
                    builder: HistogramBuilder::new(),
                    policy,
                    emit_tail,
                    spec: worker_spec,
                    spill_filter,
                };
                let mut peak_bytes = 0usize;
                for row in rx {
                    // Re-check against the (possibly newer) published
                    // cutoff; rows were already screened by the pusher but
                    // the filter may have sharpened in flight.
                    if input_filter && shared_for_worker.eliminate(&row.key, &worker_spec) {
                        shared_for_worker
                            .eliminated_input
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        continue;
                    }
                    gen.push(row, &mut obs)?;
                    peak_bytes = peak_bytes.max(gen.buffered_bytes());
                }
                let residue = gen.finish(&mut obs, residue_policy)?;
                Ok(WorkerOutput { catalog: worker_catalog, residue, peak_bytes })
            });
            senders.push(tx);
            handles.push(handle);
        }

        Ok(ParallelTopK {
            spec,
            config,
            backend,
            stats,
            shared,
            senders,
            handles,
            next_worker: 0,
            rows_in: 0,
            finished: false,
            input_filter,
            peak_bytes: 0,
            timer: PhaseTimer::started(Phase::RunGeneration),
            final_merge_ns: Arc::new(AtomicU64::new(0)),
            cmp_stats,
            merge_partitions: 1,
            partition_counters: None,
            cascade: CascadeStats::default(),
            io_scheduler,
        })
    }

    fn merge_tuning(&self) -> MergeTuning {
        MergeTuning {
            ovc: self.config.ovc_enabled,
            stats: Some(self.cmp_stats.clone()),
            readahead_blocks: self.config.readahead_blocks,
            io_scheduler: self.io_scheduler.clone(),
            batch_rows: self.config.batch_rows,
            fold: None,
        }
    }

    /// Offers one row (round-robin across workers). Rows past the shared
    /// cutoff are dropped on the calling thread without a channel hop.
    pub fn push(&mut self, row: Row<K>) -> Result<()> {
        if self.finished {
            return Err(Error::InvalidConfig("push after finish".into()));
        }
        self.rows_in += 1;
        if self.input_filter && self.shared.eliminate(&row.key, &self.spec) {
            self.shared.eliminated_input.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(());
        }
        let i = self.next_worker;
        self.next_worker = (self.next_worker + 1) % self.senders.len();
        self.senders[i]
            .send(row)
            .map_err(|_| Error::InvalidConfig("worker thread terminated early".into()))
    }

    /// The current shared cutoff key, if established.
    pub fn cutoff(&self) -> Option<K> {
        self.shared.published.read().clone()
    }

    /// Ends the input, joins the workers and merges all their runs and
    /// residues into the final output stream.
    pub fn finish(&mut self) -> Result<RowStream<K>> {
        if self.finished {
            return Err(Error::InvalidConfig("finish called twice".into()));
        }
        self.finished = true;
        self.senders.clear(); // closes the channels; workers drain and exit
        let mut outputs = Vec::with_capacity(self.handles.len());
        for handle in self.handles.drain(..) {
            let out = handle
                .join()
                .map_err(|_| Error::InvalidConfig("worker thread panicked".into()))??;
            self.peak_bytes += out.peak_bytes;
            outputs.push(out);
        }
        let cutoff = self.shared.filter.lock().cutoff().cloned();
        let retained = self.spec.retained();
        let tuning = self.merge_tuning();
        // Plan each worker's final merge once up front; the plans drive
        // either the partitioned or the serial assembly below.
        let mut plans = Vec::with_capacity(outputs.len());
        let mut est_rows = 0u64;
        for out in &outputs {
            let (final_runs, cascade) = plan_merges_cascade(
                &out.catalog,
                &self.config.merge,
                Some(retained),
                cutoff.as_ref(),
                &tuning,
                self.config.cascade_workers(),
            )?;
            self.cascade = self.cascade.merged(&cascade);
            est_rows += final_runs.iter().map(|m| m.rows).sum::<u64>();
            est_rows += out.residue.iter().map(|s| s.len() as u64).sum::<u64>();
            plans.push(final_runs);
        }
        // Range-partition the final merge across every worker's runs when
        // configured and the input is large enough. The cutoff clips the
        // plan only in exact mode: with approximation slack the filter
        // proves fewer than `retained` rows at or below it.
        if self.config.merge_threads >= 2 && est_rows >= self.config.partition_min_rows.max(1) {
            let clip = if self.config.approx_slack == 0.0 { cutoff.as_ref() } else { None };
            let all_runs: Vec<_> = plans.iter().flatten().cloned().collect();
            let ranges =
                plan_partitions(&all_runs, self.spec.order, self.config.merge_threads, clip);
            if ranges.len() >= 2 {
                let scheduler = tuning.io_scheduler.as_ref().map(|s| s.for_backend(&self.backend));
                let mut partitions: Vec<Vec<MergeSource<K>>> =
                    (0..ranges.len()).map(|_| Vec::new()).collect();
                let mut catalogs = Vec::with_capacity(outputs.len());
                // Source order within each partition mirrors the serial
                // assembly (worker 0's runs, worker 0's residue, worker
                // 1's runs, ...) so loser-tree tie-breaks agree.
                for (out, final_runs) in outputs.into_iter().zip(plans.iter()) {
                    for meta in final_runs {
                        for (i, range) in ranges.iter().enumerate() {
                            if run_overlaps(meta, range, self.spec.order) {
                                let reader = out.catalog.open_range(meta, range.clone())?;
                                partitions[i].push(MergeSource::from_reader_scheduled(
                                    reader,
                                    tuning.readahead_blocks,
                                    scheduler.clone(),
                                ));
                            }
                        }
                    }
                    for seq in out.residue {
                        for (i, part) in
                            split_sorted_rows(seq, &ranges, self.spec.order).into_iter().enumerate()
                        {
                            if !part.is_empty() {
                                partitions[i].push(MergeSource::Memory(part.into_iter()));
                            }
                        }
                    }
                    catalogs.push(out.catalog);
                }
                let merge = merge_sources_partitioned(partitions, self.spec.order, &tuning)?;
                self.merge_partitions = merge.partitions() as u64;
                self.partition_counters = Some(merge.counters());
                self.timer.stop();
                return Ok(Box::new(TimedStream::new(
                    HoldAll { _catalogs: catalogs, inner: SpecStream::new(merge, &self.spec) },
                    self.final_merge_ns.clone(),
                )));
            }
        }
        let mut sources: Vec<MergeSource<K>> = Vec::new();
        let mut catalogs = Vec::with_capacity(outputs.len());
        for (out, final_runs) in outputs.into_iter().zip(plans.iter()) {
            for meta in final_runs {
                sources.push(histok_sort::open_source(&out.catalog, meta, &tuning)?);
            }
            for seq in out.residue {
                sources.push(MergeSource::Memory(seq.into_iter()));
            }
            catalogs.push(out.catalog);
        }
        let tree = merge_sources_tuned(sources, self.spec.order, &tuning)?;
        self.timer.stop();
        Ok(Box::new(TimedStream::new(
            HoldAll { _catalogs: catalogs, inner: SpecStream::new(tree, &self.spec) },
            self.final_merge_ns.clone(),
        )))
    }

    /// Aggregated metrics.
    pub fn metrics(&self) -> OperatorMetrics {
        let filter = self.shared.filter.lock().metrics();
        let mut io = self.stats.snapshot();
        io.modelled_io_ns = io.modelled_io_ns.max(self.backend.modelled_io_ns());
        let mut phases = self.timer.snapshot();
        phases.spill_write_ns = io.write_latency.total_ns;
        phases.final_merge_ns += self.final_merge_ns.load(Ordering::Relaxed);
        OperatorMetrics {
            rows_in: self.rows_in,
            eliminated_at_input: self
                .shared
                .eliminated_input
                .load(std::sync::atomic::Ordering::Relaxed),
            eliminated_at_spill: self
                .shared
                .eliminated_spill
                .load(std::sync::atomic::Ordering::Relaxed),
            io,
            filter,
            spilled: io.runs_created > 0,
            peak_memory_bytes: self.peak_bytes,
            early_merges: 0,
            cmp: self.cmp_stats.snapshot(),
            phases,
            merge_partitions: self.merge_partitions,
            partition_rows: self
                .partition_counters
                .as_ref()
                .map(|c| c.snapshot())
                .unwrap_or_default(),
            cascade: self.cascade,
            ..Default::default()
        }
    }
}

impl<K: SortKey> TopKOperator<K> for ParallelTopK<K> {
    fn push(&mut self, row: Row<K>) -> Result<()> {
        ParallelTopK::push(self, row)
    }

    fn finish(&mut self) -> Result<RowStream<K>> {
        ParallelTopK::finish(self)
    }

    fn metrics(&self) -> OperatorMetrics {
        ParallelTopK::metrics(self)
    }

    fn algorithm(&self) -> &'static str {
        "parallel-histogram-topk"
    }
}

impl<K: SortKey> Drop for ParallelTopK<K> {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    fn config(budget: usize) -> TopKConfig {
        TopKConfig::builder().memory_budget(budget).block_bytes(1024).build().unwrap()
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut keys: Vec<u64> = (0..n).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(seed));
        keys
    }

    #[test]
    fn parallel_matches_serial_top_k() {
        let keys = shuffled(40_000, 20);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let mut op: ParallelTopK<u64> = ParallelTopK::new(
            SortSpec::ascending(800),
            config(100 * row_bytes),
            MemoryBackend::new(),
            4,
        )
        .unwrap();
        for &k in &keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, (0..800).collect::<Vec<_>>());
    }

    #[test]
    fn shared_filter_eliminates_across_workers() {
        let keys = shuffled(60_000, 21);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let mut op: ParallelTopK<u64> = ParallelTopK::new(
            SortSpec::ascending(1_000),
            config(150 * row_bytes),
            MemoryBackend::new(),
            3,
        )
        .unwrap();
        for &k in &keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let m_before = op.metrics();
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out.len(), 1_000);
        assert!(
            m_before.eliminated_at_input > 20_000,
            "shared cutoff should kill most input, eliminated {}",
            m_before.eliminated_at_input
        );
        assert!(m_before.io.rows_written < 40_000);
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let keys = shuffled(5_000, 22);
        let mut op: ParallelTopK<u64> =
            ParallelTopK::new(SortSpec::ascending(100), config(1 << 16), MemoryBackend::new(), 1)
                .unwrap();
        for &k in &keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(ParallelTopK::<u64>::new(
            SortSpec::ascending(1),
            config(1024),
            MemoryBackend::new(),
            0
        )
        .is_err());
    }

    #[test]
    fn finish_twice_errors_and_drop_joins() {
        let mut op: ParallelTopK<u64> =
            ParallelTopK::new(SortSpec::ascending(1), config(1024), MemoryBackend::new(), 2)
                .unwrap();
        op.push(Row::key_only(7)).unwrap();
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, vec![7]);
        assert!(op.finish().is_err());
        drop(op); // must not hang
    }

    #[test]
    fn filter_disabled_spills_like_a_plain_sort() {
        let keys = shuffled(20_000, 24);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let cfg = TopKConfig::builder()
            .memory_budget(100 * row_bytes)
            .filter_enabled(false)
            .block_bytes(1024)
            .build()
            .unwrap();
        let mut op: ParallelTopK<u64> =
            ParallelTopK::new(SortSpec::ascending(500), cfg, MemoryBackend::new(), 3).unwrap();
        for &k in &keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, (0..500).collect::<Vec<_>>());
        let m = op.metrics();
        // With the filter off, (almost) every input row reaches storage —
        // before this was honored, the shared cutoff eliminated rows anyway.
        assert!(
            m.rows_spilled() > 18_000,
            "filter_enabled(false) must spill like a plain sort, spilled {}",
            m.rows_spilled()
        );
        assert_eq!(m.eliminated_at_input, 0);
        assert_eq!(m.eliminated_at_spill, 0);
        assert_eq!(m.filter.buckets_inserted, 0);
    }

    #[test]
    fn approx_slack_establishes_the_cutoff_earlier() {
        // With slack ε the shared filter targets ⌈k(1−ε)⌉ rows, so fewer
        // buckets are needed before a cutoff exists and it sits tighter:
        // strictly fewer rows reach storage than in the exact run.
        let keys = shuffled(60_000, 25);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let spilled = |slack: f64| -> u64 {
            let cfg = TopKConfig::builder()
                .memory_budget(150 * row_bytes)
                .approx_slack(slack)
                .block_bytes(1024)
                .build()
                .unwrap();
            let mut op: ParallelTopK<u64> =
                ParallelTopK::new(SortSpec::ascending(2_000), cfg, MemoryBackend::new(), 1)
                    .unwrap();
            for &k in &keys {
                op.push(Row::key_only(k)).unwrap();
            }
            let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
            assert_eq!(out.len(), 2_000);
            op.metrics().rows_spilled()
        };
        let exact = spilled(0.0);
        let approx = spilled(0.25);
        assert!(
            approx < exact,
            "slack 0.25 should spill fewer rows than exact ({approx} vs {exact})"
        );
    }

    #[test]
    fn peak_memory_aggregates_worker_workspaces() {
        let keys = shuffled(30_000, 26);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let mut op: ParallelTopK<u64> = ParallelTopK::new(
            SortSpec::ascending(500),
            config(100 * row_bytes),
            MemoryBackend::new(),
            3,
        )
        .unwrap();
        for &k in &keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let _out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        let m = op.metrics();
        assert!(m.peak_memory_bytes > 0, "per-worker peaks must be aggregated");
        // Each worker respects its own budget; the sum cannot exceed
        // threads × (budget + one oversized row of headroom).
        assert!(m.peak_memory_bytes <= 3 * (100 * row_bytes + row_bytes));
        // Phase accounting: everything before finish is run generation.
        assert!(m.phases.run_generation_ns > 0);
        assert!(m.phases.final_merge_ns > 0);
        assert_eq!(m.phases.in_memory_ns, 0);
        assert_eq!(m.phases.spill_write_ns, m.io.write_latency.total_ns);
    }

    #[test]
    fn partitioned_final_merge_matches_serial() {
        let keys = shuffled(30_000, 27);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let run = |merge_threads: usize| {
            let cfg = TopKConfig::builder()
                .memory_budget(150 * row_bytes)
                .block_bytes(512)
                .merge_threads(merge_threads)
                .partition_min_rows(1)
                .build()
                .unwrap();
            let mut op: ParallelTopK<u64> =
                ParallelTopK::new(SortSpec::ascending(5_000), cfg, MemoryBackend::new(), 2)
                    .unwrap();
            for &k in &keys {
                op.push(Row::key_only(k)).unwrap();
            }
            let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
            (out, op.metrics())
        };
        let (serial, m_serial) = run(1);
        let (parallel, m_parallel) = run(4);
        assert_eq!(serial, (0..5_000).collect::<Vec<_>>());
        assert_eq!(serial, parallel, "partitioning changed the output");
        assert_eq!(m_serial.merge_partitions, 1);
        assert!(m_parallel.merge_partitions >= 2, "final merge did not go parallel");
        assert_eq!(m_parallel.partition_rows.len() as u64, m_parallel.merge_partitions);
        assert!(m_parallel.partition_rows.iter().sum::<u64>() >= 5_000);
    }

    #[test]
    fn cutoff_republishes_only_when_it_moves() {
        use crate::histogram::Bucket;
        use std::sync::atomic::Ordering as AtomicOrdering;
        let shared: Shared<u64> = Shared {
            filter: Mutex::new(CutoffFilter::new(10, histok_types::SortOrder::Ascending)),
            published: RwLock::new(None),
            eliminated_input: std::sync::atomic::AtomicU64::new(0),
            eliminated_spill: std::sync::atomic::AtomicU64::new(0),
            republishes: std::sync::atomic::AtomicU64::new(0),
        };
        // First bucket proving k rows establishes (and publishes) the cutoff.
        shared.insert_bucket(Bucket::new(100u64, 10));
        assert_eq!(shared.republishes.load(AtomicOrdering::Relaxed), 1);
        assert_eq!(*shared.published.read(), Some(100));
        // Buckets entirely past the cutoff leave it unchanged; before the
        // republish-on-move fix every one of these took the write lock and
        // stalled concurrent elimination tests.
        for i in 0..100u64 {
            shared.insert_bucket(Bucket::new(1_000 + i, 5));
        }
        assert_eq!(
            shared.republishes.load(AtomicOrdering::Relaxed),
            1,
            "inserts that do not move the cutoff must not republish"
        );
        assert_eq!(*shared.published.read(), Some(100));
        // A tighter bucket moves the cutoff and republishes exactly once.
        shared.insert_bucket(Bucket::new(5u64, 10));
        assert_eq!(shared.republishes.load(AtomicOrdering::Relaxed), 2);
        assert_eq!(*shared.published.read(), Some(5));
    }

    #[test]
    fn descending_parallel() {
        let keys = shuffled(10_000, 23);
        let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
        let mut op: ParallelTopK<u64> = ParallelTopK::new(
            SortSpec::descending(200),
            config(80 * row_bytes),
            MemoryBackend::new(),
            2,
        )
        .unwrap();
        for &k in &keys {
            op.push(Row::key_only(k)).unwrap();
        }
        let out: Vec<u64> = op.finish().unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(out, (9_800..10_000).rev().collect::<Vec<_>>());
    }
}
