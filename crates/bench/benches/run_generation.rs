//! Run-generation benchmarks: replacement selection vs load-sort-store
//! (DESIGN.md ablation #2), with and without the cutoff filter attached.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_core::CutoffFilter;
use histok_sort::run_gen::{LoadSortStore, ReplacementSelection, ResiduePolicy, RunGenerator};
use histok_sort::NoopObserver;
use histok_storage::{IoStats, MemoryBackend, RunCatalog};
use histok_types::{F64Key, Row, SortOrder};
use histok_workload::{Distribution, Workload};

const ROWS: u64 = 100_000;
const MEM_ROWS: usize = 1_000;

fn catalog() -> Arc<RunCatalog<F64Key>> {
    Arc::new(
        RunCatalog::new(
            Arc::new(MemoryBackend::new()),
            RunCatalog::<F64Key>::unique_prefix("bench"),
            SortOrder::Ascending,
            IoStats::new(),
        )
        .with_block_bytes(64 * 1024),
    )
}

fn bench_generators(c: &mut Criterion) {
    let rows: Vec<Row<F64Key>> = Workload::uniform(ROWS, 1).rows().collect();
    let budget = MEM_ROWS * 64;
    let mut g = c.benchmark_group("run_generation");
    g.throughput(Throughput::Elements(ROWS));
    g.sample_size(10);

    g.bench_function("replacement_selection_100k", |b| {
        b.iter(|| {
            let cat = catalog();
            let mut gen = ReplacementSelection::new(cat.clone(), budget);
            let mut obs = NoopObserver;
            for row in rows.iter().cloned() {
                gen.push(row, &mut obs).unwrap();
            }
            gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
            black_box(cat.len())
        })
    });

    g.bench_function("load_sort_store_100k", |b| {
        b.iter(|| {
            let cat = catalog();
            let mut gen = LoadSortStore::new(cat.clone(), budget);
            let mut obs = NoopObserver;
            for row in rows.iter().cloned() {
                gen.push(row, &mut obs).unwrap();
            }
            gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
            black_box(cat.len())
        })
    });

    g.bench_function("replacement_selection_with_filter_100k", |b| {
        b.iter(|| {
            let cat = catalog();
            let mut gen = ReplacementSelection::new(cat.clone(), budget).with_run_limit(5_000);
            let mut filter: CutoffFilter<F64Key> = CutoffFilter::new(5_000, SortOrder::Ascending);
            for row in rows.iter().cloned() {
                if !filter.eliminate(&row.key) {
                    gen.push(row, &mut filter).unwrap();
                }
            }
            gen.finish(&mut filter, ResiduePolicy::SpillToRuns).unwrap();
            black_box(cat.stats().rows_written())
        })
    });

    g.finish();
}

fn bench_nearly_sorted(c: &mut Criterion) {
    // Replacement selection's home turf (§2.5): nearly sorted input makes
    // runs arbitrarily long, collapsing the run count — load-sort-store
    // cannot exploit the pre-order at all.
    let w =
        Workload::uniform(ROWS, 2).with_distribution(Distribution::NearlySorted { disorder: 200 });
    let rows: Vec<Row<F64Key>> = w.rows().collect();
    let budget = MEM_ROWS * 64;
    let mut g = c.benchmark_group("run_generation/nearly_sorted");
    g.throughput(Throughput::Elements(ROWS));
    g.sample_size(10);

    g.bench_function("replacement_selection", |b| {
        b.iter(|| {
            let cat = catalog();
            let mut gen = ReplacementSelection::new(cat.clone(), budget);
            let mut obs = NoopObserver;
            for row in rows.iter().cloned() {
                gen.push(row, &mut obs).unwrap();
            }
            gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
            // The point of the ablation: a handful of runs, not ~100.
            assert!(cat.len() < 10, "expected few runs, got {}", cat.len());
            black_box(cat.len())
        })
    });

    g.bench_function("load_sort_store", |b| {
        b.iter(|| {
            let cat = catalog();
            let mut gen = LoadSortStore::new(cat.clone(), budget);
            let mut obs = NoopObserver;
            for row in rows.iter().cloned() {
                gen.push(row, &mut obs).unwrap();
            }
            gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
            assert!(cat.len() > 50, "LSS should produce memory-sized runs");
            black_box(cat.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_generators, bench_nearly_sorted);
criterion_main!(benches);
