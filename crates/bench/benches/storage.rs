//! Storage-layer benchmarks: run write/read throughput as block size
//! varies — the knob trading per-request latency (round trips in the
//! disaggregated model) against buffering memory.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_storage::{IoStats, MemoryBackend, RunReader, RunWriter};
use histok_types::{Row, SortOrder};

const ROWS: u64 = 50_000;
const PAYLOAD: usize = 24;

fn write_run(
    backend: &MemoryBackend,
    name: &str,
    block_bytes: usize,
) -> histok_storage::RunMeta<u64> {
    let mut w = RunWriter::with_block_bytes(
        backend,
        name,
        SortOrder::Ascending,
        IoStats::new(),
        block_bytes,
    )
    .unwrap();
    let payload = vec![0u8; PAYLOAD];
    for k in 0..ROWS {
        w.append(&Row::new(k, payload.clone())).unwrap();
    }
    w.finish().unwrap()
}

fn bench_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/run_write");
    g.throughput(Throughput::Elements(ROWS));
    g.sample_size(10);
    for block in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        g.bench_function(format!("block_{}KiB", block / 1024), |b| {
            let backend = MemoryBackend::new();
            b.iter(|| black_box(write_run(&backend, "w", block)))
        });
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/run_read");
    g.throughput(Throughput::Elements(ROWS));
    g.sample_size(10);
    for block in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let backend = MemoryBackend::new();
        let meta = write_run(&backend, "r", block);
        g.bench_function(format!("block_{}KiB", block / 1024), |b| {
            b.iter(|| {
                let reader: RunReader<u64> =
                    RunReader::open(&backend, &meta, IoStats::new()).unwrap();
                let mut n = 0u64;
                for row in reader {
                    black_box(row.unwrap());
                    n += 1;
                }
                assert_eq!(n, ROWS);
            })
        });
    }
    g.finish();
}

fn bench_skip(c: &mut Criterion) {
    // Block-index skipping vs reading through: the §4.1 offset benefit at
    // the storage layer.
    let backend = MemoryBackend::new();
    let meta = write_run(&backend, "s", 16 * 1024);
    let mut g = c.benchmark_group("storage/skip_rows");
    g.sample_size(20);
    g.bench_function("skip_90_percent_then_read", |b| {
        b.iter(|| {
            let mut reader: RunReader<u64> =
                RunReader::open(&backend, &meta, IoStats::new()).unwrap();
            reader.skip_rows(ROWS * 9 / 10).unwrap();
            let rest = reader.map(|r| r.unwrap().key).fold(0u64, |a, k| a ^ k);
            black_box(rest)
        })
    });
    g.bench_function("read_everything", |b| {
        b.iter(|| {
            let reader: RunReader<u64> = RunReader::open(&backend, &meta, IoStats::new()).unwrap();
            let all = reader.map(|r| r.unwrap().key).fold(0u64, |a, k| a ^ k);
            black_box(all)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_write, bench_read, bench_skip);
criterion_main!(benches);
