//! Range-partitioned parallel-merge benchmarks.
//!
//! Two angles on the partitioned final merge:
//!  * a partition-count sweep (P ∈ {1, 2, 4, 8}) over few wide runs on a
//!    *sleeping* throttled backend — the case the layer exists for: each
//!    partition's range-scoped readers sleep concurrently, so the
//!    per-request latency divides by the partition count;
//!  * a skew-adversarial workload where one key accounts for half of
//!    every run — the planner cannot split inside a duplicate cluster
//!    (half-open ranges assign all duplicates to one partition), so the
//!    hot partition bounds the win. This measures how gracefully the
//!    speedup degrades, not whether it holds.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_sort::{
    merge_runs_partitioned, merge_sources_tuned, open_source, MergeTuning, PartitionAttempt,
};
use histok_storage::{IoStats, MemoryBackend, RunCatalog, ThrottleModel, ThrottledBackend};
use histok_types::{Result, Row, SortOrder};

const RUNS: u64 = 4;
const ROWS_PER_RUN: u64 = 2_000;
const BLOCK_BYTES: usize = 512;

/// A fixed 20µs per storage request, slept for real: small enough to keep
/// the benchmark quick, large enough to dominate decode time.
fn throttled_catalog(prefix: &str) -> Arc<RunCatalog<u64>> {
    let model =
        ThrottleModel { per_op: Duration::from_micros(20), per_byte: Duration::ZERO, sleep: true };
    Arc::new(
        RunCatalog::new(
            Arc::new(ThrottledBackend::new(MemoryBackend::new(), model)),
            RunCatalog::<u64>::unique_prefix(prefix),
            SortOrder::Ascending,
            IoStats::new(),
        )
        .with_block_bytes(BLOCK_BYTES)
        .with_spill_pipeline(false),
    )
}

fn write_runs(cat: &RunCatalog<u64>, key: impl Fn(u64, u64) -> u64) {
    for r in 0..RUNS {
        let mut keys: Vec<u64> = (0..ROWS_PER_RUN).map(|j| key(r, j)).collect();
        keys.sort_unstable();
        let mut w = cat.start_run().unwrap();
        for k in keys {
            w.append(&Row::new(k, k.to_le_bytes().to_vec())).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
    }
}

fn drain_partitioned(cat: &RunCatalog<u64>, threads: usize) -> u64 {
    let runs = cat.runs();
    let tuning = MergeTuning { ovc: true, readahead_blocks: 2, ..MergeTuning::default() };
    let mut n = 0u64;
    if threads >= 2 {
        match merge_runs_partitioned(cat, &runs, vec![], threads, None, &tuning).unwrap() {
            PartitionAttempt::Partitioned(merge) => {
                for row in merge {
                    black_box(row.unwrap());
                    n += 1;
                }
                return n;
            }
            PartitionAttempt::Serial(_) => {}
        }
    }
    let sources: Result<Vec<_>> = runs.iter().map(|m| open_source(cat, m, &tuning)).collect();
    let tree = merge_sources_tuned(sources.unwrap(), SortOrder::Ascending, &tuning).unwrap();
    for row in tree {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

/// Interleaved distinct keys: every partition gets an even share of every
/// run, the planner's best case.
fn bench_partition_sweep(c: &mut Criterion) {
    let cat = throttled_catalog("psweep");
    write_runs(&cat, |r, j| j * RUNS + r);
    let total = RUNS * ROWS_PER_RUN;
    let mut g = c.benchmark_group("partition/sweep_throttled");
    g.throughput(Throughput::Elements(total));
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("p{threads}"), |b| {
            b.iter(|| assert_eq!(drain_partitioned(&cat, threads), total))
        });
    }
    g.finish();
}

/// Half of every run is one hot key sitting in the middle of the key
/// space: the planner cannot split the cluster, so one partition carries
/// half the rows no matter how many threads are offered.
fn bench_partition_skewed(c: &mut Criterion) {
    let cat = throttled_catalog("pskew");
    let hot = ROWS_PER_RUN; // middle of the 0..2·ROWS_PER_RUN cold range
    write_runs(&cat, |r, j| {
        if j % 2 == 0 {
            hot
        } else {
            // Cold keys spread evenly on both sides of the hot cluster.
            (j * RUNS + r) * 2 % (2 * ROWS_PER_RUN * RUNS)
        }
    });
    let total = RUNS * ROWS_PER_RUN;
    let mut g = c.benchmark_group("partition/skew_adversarial");
    g.throughput(Throughput::Elements(total));
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("p{threads}"), |b| {
            b.iter(|| assert_eq!(drain_partitioned(&cat, threads), total))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partition_sweep, bench_partition_skewed);
criterion_main!(benches);
