//! Batch-size sweep for the batched merge drain: how much of the
//! per-row iterator overhead `LoserTree::merge_into` amortises as the
//! output batch grows, and where the curve flattens. `batch_rows = 1`
//! is the row-at-a-time differential baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_sort::{IterSource, LoserTree};
use histok_types::{BytesKey, Result, Row, RowBatch, SortKey, SortOrder};

const TOTAL_ROWS: u64 = 100_000;
const FAN_IN: u64 = 64;
const BATCH_SIZES: [usize; 5] = [1, 64, 256, 1024, 4096];

type VecSource<K> = IterSource<std::vec::IntoIter<Result<Row<K>>>>;

fn sources<K: SortKey>(key: impl Fn(u64) -> K) -> Vec<VecSource<K>> {
    (0..FAN_IN)
        .map(|i| {
            let rows: Vec<Result<Row<K>>> =
                (0..TOTAL_ROWS / FAN_IN).map(|j| Ok(Row::key_only(key(j * FAN_IN + i)))).collect();
            IterSource::new(rows.into_iter())
        })
        .collect()
}

fn bench_sweep<K: SortKey>(c: &mut Criterion, group: &str, key: impl Fn(u64) -> K + Copy) {
    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(TOTAL_ROWS));
    g.sample_size(20);
    for batch_rows in BATCH_SIZES {
        g.bench_function(format!("batch_{batch_rows}"), |b| {
            b.iter(|| {
                let mut tree =
                    LoserTree::with_ovc(sources(key), SortOrder::Ascending, true, None).unwrap();
                let mut batch = RowBatch::new();
                let mut count = 0u64;
                loop {
                    tree.merge_into(&mut batch, batch_rows).unwrap();
                    if batch.is_empty() {
                        break;
                    }
                    count += batch.len() as u64;
                    black_box(&batch);
                }
                assert_eq!(count, TOTAL_ROWS / FAN_IN * FAN_IN);
            })
        });
    }
    g.finish();
}

fn bench_batch_u64(c: &mut Criterion) {
    bench_sweep(c, "batch/merge_u64", |k| k);
}

fn bench_batch_bytes(c: &mut Criterion) {
    // Wide keys exercise the ovc_resolve fallback inside the batched drain.
    bench_sweep(c, "batch/merge_bytes", |k| BytesKey::new(format!("shared-prefix-{k:012}")));
}

criterion_group!(benches, bench_batch_u64, bench_batch_bytes);
criterion_main!(benches);
