//! End-to-end comparison of all four top-k algorithms at a fixed, scaled
//! workload — the timing companion to the `fig*` experiment binaries,
//! small enough to run under `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_bench::{figure_config, run_topk, BackendKind};
use histok_exec::Algorithm;
use histok_types::SortSpec;
use histok_workload::{Distribution, Workload};

const INPUT: u64 = 200_000;
const MEM_ROWS: u64 = 1_000;
const K: u64 = 5_000;

fn bench_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk_e2e/200k_rows_k5000_mem1000");
    g.throughput(Throughput::Elements(INPUT));
    g.sample_size(10);
    for (name, algo) in [
        ("histogram", Algorithm::Histogram),
        ("optimized_ems", Algorithm::Optimized),
        ("traditional_ems", Algorithm::Traditional),
        ("in_memory", Algorithm::InMemory),
    ] {
        g.bench_function(name, |b| {
            let w = Workload::uniform(INPUT, 42);
            let config = figure_config(MEM_ROWS, 0, 50);
            b.iter(|| {
                let out =
                    run_topk(algo, &w, SortSpec::ascending(K), config.clone(), BackendKind::Memory)
                        .unwrap();
                assert_eq!(out.output_rows, K);
                black_box(out.checksum)
            })
        });
    }
    g.finish();
}

fn bench_distributions(c: &mut Criterion) {
    // The paper: "the distribution of the sort keys does not affect the
    // performance of our algorithm" (§5.2).
    let mut g = c.benchmark_group("topk_e2e/histogram_by_distribution");
    g.throughput(Throughput::Elements(INPUT));
    g.sample_size(10);
    for dist in [
        Distribution::Uniform,
        Distribution::Fal { shape: 1.25 },
        Distribution::lognormal_default(),
    ] {
        g.bench_function(dist.label(), |b| {
            let w = Workload::uniform(INPUT, 42).with_distribution(dist);
            let config = figure_config(MEM_ROWS, 0, 50);
            b.iter(|| {
                let out = run_topk(
                    Algorithm::Histogram,
                    &w,
                    SortSpec::ascending(K),
                    config.clone(),
                    BackendKind::Memory,
                )
                .unwrap();
                black_box(out.checksum)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_algorithms, bench_distributions);
criterion_main!(benches);
