//! Overlapped-I/O benchmarks: prefetched vs. synchronous run reading.
//!
//! Three angles on the read-ahead layer:
//!  * a single run over a *sleeping* throttled backend (modelled
//!    disaggregated-storage latency) — with only one source and a trivial
//!    consumer there is nothing to overlap with, so this is the break-even
//!    case: prefetch must not be *slower*;
//!  * the same run over a bare in-memory backend — measures the channel
//!    and thread overhead prefetch adds when storage is already free;
//!  * a multi-run merge over the throttled backend — the case the layer
//!    exists for: with read-ahead every source sleeps concurrently, so
//!    latency divides by the fan-in.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_sort::{merge_sources_tuned, MergeTuning};
use histok_storage::{
    IoStats, MemoryBackend, PrefetchingRunReader, RunCatalog, RunMeta, RunReader, RunWriter,
    StorageBackend, ThrottleModel, ThrottledBackend,
};
use histok_types::{Row, SortOrder};

const RUN_ROWS: u64 = 2_000;
const MERGE_RUNS: u64 = 6;
const BLOCK_BYTES: usize = 256;
const READAHEAD: usize = 2;

/// A fixed 20µs per storage request, slept for real: small enough to keep
/// the benchmark quick, large enough to dominate decode time.
fn throttled() -> ThrottledBackend<MemoryBackend> {
    let model =
        ThrottleModel { per_op: Duration::from_micros(20), per_byte: Duration::ZERO, sleep: true };
    ThrottledBackend::new(MemoryBackend::new(), model)
}

fn write_run<B: StorageBackend>(
    be: &B,
    name: &str,
    keys: impl Iterator<Item = u64>,
) -> RunMeta<u64> {
    let mut w = RunWriter::<u64>::with_options(
        be,
        name,
        SortOrder::Ascending,
        IoStats::new(),
        BLOCK_BYTES,
        false,
    )
    .unwrap();
    for k in keys {
        w.append(&Row::new(k, k.to_le_bytes().to_vec())).unwrap();
    }
    w.finish().unwrap()
}

fn drain_sync<B: StorageBackend>(be: &B, meta: &RunMeta<u64>) -> u64 {
    let reader = RunReader::open(be, meta, IoStats::new()).unwrap();
    let mut n = 0u64;
    for row in reader {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

fn drain_prefetched<B: StorageBackend>(be: &B, meta: &RunMeta<u64>) -> u64 {
    let reader = RunReader::open(be, meta, IoStats::new()).unwrap();
    let mut n = 0u64;
    for row in PrefetchingRunReader::spawn(reader, READAHEAD) {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

fn bench_read<B: StorageBackend>(c: &mut Criterion, group: &str, be: B) {
    let meta = write_run(&be, "bench", 0..RUN_ROWS);
    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(RUN_ROWS));
    g.sample_size(10);
    g.bench_function("sync", |b| b.iter(|| assert_eq!(drain_sync(&be, &meta), RUN_ROWS)));
    g.bench_function("prefetched", |b| {
        b.iter(|| assert_eq!(drain_prefetched(&be, &meta), RUN_ROWS))
    });
    g.finish();
}

fn bench_read_throttled(c: &mut Criterion) {
    bench_read(c, "prefetch/read_throttled", throttled());
}

fn bench_read_memory(c: &mut Criterion) {
    // No latency to hide: this measures the overhead of the prefetch
    // thread and its channel against the plain decode loop.
    bench_read(c, "prefetch/read_memory", MemoryBackend::new());
}

fn bench_merge_throttled(c: &mut Criterion) {
    let cat: Arc<RunCatalog<u64>> = Arc::new(
        RunCatalog::new(
            Arc::new(throttled()),
            "prefetchmerge",
            SortOrder::Ascending,
            IoStats::new(),
        )
        .with_block_bytes(BLOCK_BYTES)
        .with_spill_pipeline(false),
    );
    for r in 0..MERGE_RUNS {
        let mut w = cat.start_run().unwrap();
        for j in 0..RUN_ROWS / MERGE_RUNS {
            let k = j * MERGE_RUNS + r;
            w.append(&Row::new(k, k.to_le_bytes().to_vec())).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
    }
    let total = RUN_ROWS / MERGE_RUNS * MERGE_RUNS;
    let mut g = c.benchmark_group("prefetch/merge_throttled");
    g.throughput(Throughput::Elements(total));
    g.sample_size(10);
    for (label, readahead) in [("sync", 0usize), ("prefetched", READAHEAD)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let tuning = MergeTuning::default().with_readahead(readahead);
                let sources = cat
                    .runs()
                    .iter()
                    .map(|meta| histok_sort::open_source(&cat, meta, &tuning).unwrap())
                    .collect::<Vec<_>>();
                let tree = merge_sources_tuned(sources, SortOrder::Ascending, &tuning).unwrap();
                let mut n = 0u64;
                for row in tree {
                    black_box(row.unwrap());
                    n += 1;
                }
                assert_eq!(n, total);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read_throttled, bench_read_memory, bench_merge_throttled);
criterion_main!(benches);
