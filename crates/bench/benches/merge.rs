//! Loser-tree merge benchmarks: per-row cost as fan-in grows (the ⌈log₂ n⌉
//! comparison bound), and the §4.1 early-stop benefit.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_sort::{IterSource, LoserTree};
use histok_types::{Result, Row, SortOrder};

const TOTAL_ROWS: u64 = 100_000;

type VecSource = IterSource<std::vec::IntoIter<Result<Row<u64>>>>;

fn sources(n: u64) -> Vec<VecSource> {
    (0..n)
        .map(|i| {
            let rows: Vec<Result<Row<u64>>> =
                (0..TOTAL_ROWS / n).map(|j| Ok(Row::key_only(j * n + i))).collect();
            IterSource::new(rows.into_iter())
        })
        .collect()
}

fn bench_fan_in(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge/fan_in");
    g.throughput(Throughput::Elements(TOTAL_ROWS));
    g.sample_size(20);
    for n in [2u64, 8, 64, 256] {
        g.bench_function(format!("{n}_sources"), |b| {
            b.iter(|| {
                let tree = LoserTree::new(sources(n), SortOrder::Ascending).unwrap();
                let mut count = 0u64;
                for row in tree {
                    black_box(row.unwrap());
                    count += 1;
                }
                assert_eq!(count, TOTAL_ROWS / n * n);
            })
        });
    }
    g.finish();
}

fn bench_early_stop(c: &mut Criterion) {
    // A top-k merge stops after k rows: the cost is proportional to k, not
    // to the total run volume (§4.1).
    let mut g = c.benchmark_group("merge/early_stop");
    g.sample_size(20);
    for k in [100u64, 10_000, TOTAL_ROWS] {
        g.bench_function(format!("take_{k}_of_100k"), |b| {
            b.iter(|| {
                let tree = LoserTree::new(sources(64), SortOrder::Ascending).unwrap();
                let got =
                    tree.take(k as usize).map(|r| r.unwrap().key).fold(0u64, |acc, k| acc ^ k);
                black_box(got)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fan_in, bench_early_stop);
criterion_main!(benches);
