//! Microbenchmarks of the cutoff filter — the per-row costs that §5.5
//! bounds: bucket insertion (with sharpening pops), the `eliminate` test on
//! the input hot path, and consolidation under a tiny queue budget.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_core::{Bucket, CutoffFilter, SizingPolicy};
use histok_sort::SpillObserver;
use histok_types::SortOrder;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("cutoff_filter/insert_bucket");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("10k_buckets_k1000", |b| {
        b.iter(|| {
            let mut f: CutoffFilter<u64> = CutoffFilter::new(1_000, SortOrder::Ascending);
            for i in 0..10_000u64 {
                // Boundaries descend: every insert sharpens.
                f.insert_bucket(Bucket::new(1_000_000 - i * 7, 100));
            }
            black_box(f.cutoff().copied())
        })
    });
    g.finish();
}

fn bench_eliminate(c: &mut Criterion) {
    let mut f: CutoffFilter<u64> = CutoffFilter::new(100, SortOrder::Ascending);
    for i in 0..200u64 {
        f.insert_bucket(Bucket::new(10_000 - i, 10));
    }
    assert!(f.established());
    let mut g = c.benchmark_group("cutoff_filter/eliminate");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("hot_path_1k_keys", |b| {
        b.iter(|| {
            let mut kills = 0u32;
            for key in 0..1_000u64 {
                if f.eliminate(black_box(&(key * 13))) {
                    kills += 1;
                }
            }
            black_box(kills)
        })
    });
    g.finish();
}

fn bench_consolidation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cutoff_filter/consolidation");
    g.throughput(Throughput::Elements(10_000));
    for budget in [256usize, 1024 * 1024] {
        g.bench_function(format!("queue_budget_{budget}B"), |b| {
            b.iter(|| {
                let mut f: CutoffFilter<u64> =
                    CutoffFilter::new(1_000, SortOrder::Ascending).with_memory_budget(budget);
                for i in 0..10_000u64 {
                    f.insert_bucket(Bucket::new(1_000_000 - i, 1));
                }
                black_box(f.metrics().consolidations)
            })
        });
    }
    g.finish();
}

fn bench_observer_path(c: &mut Criterion) {
    // The full spill-observer path on an adversarial stream: sharpens
    // constantly, eliminates nothing — the §5.5 worst case, per row.
    let mut g = c.benchmark_group("cutoff_filter/observer_adversarial");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("100k_rows", |b| {
        b.iter(|| {
            let mut f: CutoffFilter<u64> = CutoffFilter::with_policy(
                1_000,
                SortOrder::Ascending,
                SizingPolicy::TargetBuckets(50),
            );
            for run in 0..50u64 {
                f.run_started(2_000);
                for j in 0..2_000u64 {
                    let key = (50 - run) * 1_000_000 + j;
                    if !f.should_eliminate(&key) {
                        f.row_spilled(&key);
                    }
                }
                f.run_finished();
            }
            black_box(f.metrics().buckets_inserted)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_insert, bench_eliminate, bench_consolidation, bench_observer_path
}
criterion_main!(benches);
