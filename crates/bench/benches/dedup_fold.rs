//! Duplicate-ratio sweep for in-sort folding (DESIGN.md §14): the same
//! "top-k distinct" query over streams whose keys repeat 1×, 10× and
//! 100× on average, executed three ways — dedup at the output (plain
//! full external sort of every duplicate, folded afterwards), in-sort
//! `dedup`, and in-sort COUNT aggregation. At ratio 1× folding is pure
//! overhead and should cost nothing; as the ratio grows the fold
//! absorbs duplicates before they reach storage and the gap to the
//! at-output baseline widens.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_core::{HistogramTopK, TopKConfig, TopKOperator};
use histok_storage::MemoryBackend;
use histok_types::{AggregateOp, Row, SortSpec};

const TOTAL_ROWS: u64 = 40_000;
/// Average occurrences per distinct key.
const DUP_RATIOS: [u64; 3] = [1, 10, 100];
/// Distinct groups the query retains.
const K: u64 = 200;
const BUDGET: usize = 16 * 1024;

/// A deterministic scrambled stream over `TOTAL_ROWS / ratio` distinct
/// keys: multiplicative hashing spreads each key's ~`ratio` occurrences
/// across the whole stream (no adjacency for the fold to exploit for
/// free).
fn keys(ratio: u64) -> Vec<u64> {
    let distinct = (TOTAL_ROWS / ratio).max(1);
    (0..TOTAL_ROWS).map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) % distinct).collect()
}

fn config(dedup: bool, count: bool) -> TopKConfig {
    let mut b = TopKConfig::builder().memory_budget(BUDGET).block_bytes(4096).dedup(dedup);
    if count {
        b = b.aggregate(AggregateOp::Count);
    }
    b.build().expect("fold bench config")
}

/// Runs the operator over the stream and returns the output row count;
/// `spec` is `K` distinct groups for the folding modes and a full sort
/// (deduped here afterwards, like a downstream GROUP BY would) for the
/// at-output baseline.
fn run(spec: SortSpec, cfg: TopKConfig, input: &[u64], posthoc: bool) -> u64 {
    let mut op = HistogramTopK::new(spec, cfg, MemoryBackend::new()).expect("fold bench operator");
    for &k in input {
        op.push(Row::key_only(k)).expect("push");
    }
    let mut groups = 0u64;
    let mut last = None;
    for row in op.finish().expect("finish") {
        let key = row.expect("row").key;
        if !posthoc || last != Some(key) {
            groups += 1;
            last = Some(key);
        }
        if posthoc && groups >= K {
            break;
        }
    }
    groups
}

fn bench_dup_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("dedup_fold/topk_distinct");
    g.throughput(Throughput::Elements(TOTAL_ROWS));
    g.sample_size(10);
    for ratio in DUP_RATIOS {
        let input = keys(ratio);
        g.bench_function(format!("dup{ratio}x_at_output"), |b| {
            b.iter(|| {
                let n = run(SortSpec::ascending(TOTAL_ROWS), config(false, false), &input, true);
                black_box(n);
            })
        });
        g.bench_function(format!("dup{ratio}x_fold_dedup"), |b| {
            b.iter(|| {
                let n = run(SortSpec::ascending(K), config(true, false), &input, false);
                black_box(n);
            })
        });
        g.bench_function(format!("dup{ratio}x_fold_count"), |b| {
            b.iter(|| {
                let n = run(SortSpec::ascending(K), config(false, true), &input, false);
                black_box(n);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dup_sweep);
criterion_main!(benches);
