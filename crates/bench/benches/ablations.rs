//! Ablation benches for the design choices called out in DESIGN.md §6:
//! tail buckets, spill-time re-check, input-side filtering, run-generation
//! strategy, and the consolidation budget. Each variant runs the same
//! scaled workload; differences show up as time and (asserted) spill
//! volume.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_bench::{run_topk, BackendKind};
use histok_core::{RunGenKind, SizingPolicy, TopKConfig, TopKConfigBuilder};
use histok_exec::Algorithm;
use histok_types::SortSpec;
use histok_workload::Workload;

const INPUT: u64 = 200_000;
const MEM_ROWS: usize = 1_000;
const K: u64 = 5_000;

fn base_config() -> TopKConfigBuilder {
    TopKConfig::builder().memory_budget(MEM_ROWS * 64).sizing(SizingPolicy::TargetBuckets(50))
}

fn run_with(config: TopKConfig) -> u64 {
    let w = Workload::uniform(INPUT, 4242);
    let out =
        run_topk(Algorithm::Histogram, &w, SortSpec::ascending(K), config, BackendKind::Memory)
            .unwrap();
    assert_eq!(out.output_rows, K);
    out.metrics.rows_spilled()
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.throughput(Throughput::Elements(INPUT));
    g.sample_size(10);

    let variants: Vec<(&str, TopKConfig)> = vec![
        ("full_default", base_config().build().unwrap()),
        ("no_tail_buckets", base_config().tail_buckets(false).build().unwrap()),
        ("no_spill_recheck", base_config().spill_filter(false).build().unwrap()),
        ("no_input_filter", base_config().input_filter(false).build().unwrap()),
        (
            "load_sort_store",
            base_config().run_generation(RunGenKind::LoadSortStore).build().unwrap(),
        ),
        ("no_run_limit", base_config().limit_run_size(false).build().unwrap()),
        ("tiny_queue_1KiB", base_config().histogram_memory(1024).build().unwrap()),
        ("filter_off", base_config().filter_enabled(false).build().unwrap()),
    ];

    for (name, config) in variants {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_with(config.clone())));
        });
    }
    g.finish();
}

fn bench_spill_volume_report(c: &mut Criterion) {
    // Not a timing bench: one pass per variant so the spill volumes land in
    // the bench log for EXPERIMENTS.md.
    let mut g = c.benchmark_group("ablations/spill_rows");
    g.sample_size(10);
    g.bench_function("report_once", |b| {
        b.iter(|| {
            let full = run_with(base_config().build().unwrap());
            let no_input = run_with(base_config().input_filter(false).build().unwrap());
            let off = run_with(base_config().filter_enabled(false).build().unwrap());
            // Filtering layers reduce spill volume in aggregate. The
            // input-filter ablation can shift run boundaries a little
            // (doomed rows occupy workspace before dying at spill time),
            // so allow a few percent of noise; the full-off comparison is
            // the order-of-magnitude one.
            assert!(full <= no_input + no_input / 10, "{full} vs {no_input}");
            assert!(no_input <= off, "{no_input} vs {off}");
            assert!(full * 4 < off, "filter barely helped: {full} vs {off}");
            black_box((full, no_input, off))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablations, bench_spill_volume_report);
criterion_main!(benches);
