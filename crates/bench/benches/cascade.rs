//! Cascade merge planner benchmarks.
//!
//! Sweeps the planned cascade over fan_in ∈ {4, 16, 64, 256} × workers
//! ∈ {1, 4} on a 512-run catalog with a *sleeping* throttled backend
//! and fully synchronous merge I/O (no read-ahead, no pool): every
//! storage sleep lands on the pass worker that issued it, so the
//! 4-worker column shows pure latency overlap across the independent
//! merges of a pass, and the fan-in sweep shows how pass count (9
//! passes at fan-in 4, a single pass at 256) trades against per-merge
//! width. The catalog is rebuilt untimed before each iteration — the
//! cascade consumes its input runs.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use histok_sort::{plan_merges_cascade, MergeConfig, MergeTuning};
use histok_storage::{IoStats, MemoryBackend, RunCatalog, ThrottleModel, ThrottledBackend};
use histok_types::{Row, SortOrder};

const RUNS: u64 = 512;
const ROWS_PER_RUN: u64 = 40;
const BLOCK_BYTES: usize = 512;

/// 512 sorted strided runs over a 10µs-per-request sleeping backend:
/// small enough to keep the sweep quick, latency-dominated enough that
/// worker overlap is what the numbers show.
fn build_catalog() -> RunCatalog<u64> {
    let model =
        ThrottleModel { per_op: Duration::from_micros(10), per_byte: Duration::ZERO, sleep: true };
    let cat = RunCatalog::new(
        Arc::new(ThrottledBackend::new(MemoryBackend::new(), model)),
        RunCatalog::<u64>::unique_prefix("casc"),
        SortOrder::Ascending,
        IoStats::new(),
    )
    .with_block_bytes(BLOCK_BYTES)
    .with_spill_pipeline(false);
    for r in 0..RUNS {
        let mut w = cat.start_run().unwrap();
        for j in 0..ROWS_PER_RUN {
            w.append(&Row::key_only(j * RUNS + r)).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
    }
    cat
}

fn bench_cascade_sweep(c: &mut Criterion) {
    let tuning = MergeTuning { readahead_blocks: 0, io_scheduler: None, ..MergeTuning::default() };
    let mut g = c.benchmark_group("cascade/plan_throttled");
    g.throughput(Throughput::Elements(RUNS * ROWS_PER_RUN));
    g.sample_size(10);
    for fan_in in [4usize, 16, 64, 256] {
        for workers in [1usize, 4] {
            g.bench_function(format!("f{fan_in}_w{workers}"), |b| {
                b.iter_batched(
                    build_catalog,
                    |cat| {
                        let config = MergeConfig { fan_in, ..MergeConfig::default() };
                        let (final_runs, stats) =
                            plan_merges_cascade(&cat, &config, None, None, &tuning, workers)
                                .unwrap();
                        assert!(final_runs.len() <= fan_in);
                        black_box(stats)
                    },
                    BatchSize::PerIteration,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_cascade_sweep);
criterion_main!(benches);
