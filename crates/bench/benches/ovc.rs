//! Offset-value coding benchmarks: the same merge and run-generation
//! workloads with OVC duels on and off, so the hot-path win (and any
//! regression in the fallback rate) is directly measurable.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_sort::run_gen::{ReplacementSelection, ResiduePolicy, RunGenerator};
use histok_sort::{IterSource, LoserTree, NoopObserver};
use histok_storage::{IoStats, MemoryBackend, RunCatalog};
use histok_types::{BytesKey, Result, Row, SortKey, SortOrder};

const TOTAL_ROWS: u64 = 100_000;
const FAN_IN: u64 = 64;

type VecSource<K> = IterSource<std::vec::IntoIter<Result<Row<K>>>>;

fn sources<K: SortKey>(n: u64, key: impl Fn(u64) -> K) -> Vec<VecSource<K>> {
    (0..n)
        .map(|i| {
            let rows: Vec<Result<Row<K>>> =
                (0..TOTAL_ROWS / n).map(|j| Ok(Row::key_only(key(j * n + i)))).collect();
            IterSource::new(rows.into_iter())
        })
        .collect()
}

fn bench_merge<K: SortKey>(c: &mut Criterion, group: &str, key: impl Fn(u64) -> K + Copy) {
    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(TOTAL_ROWS));
    g.sample_size(20);
    for (label, ovc) in [("ovc", true), ("full_cmp", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let tree =
                    LoserTree::with_ovc(sources(FAN_IN, key), SortOrder::Ascending, ovc, None)
                        .unwrap();
                let mut count = 0u64;
                for row in tree {
                    black_box(row.unwrap());
                    count += 1;
                }
                assert_eq!(count, TOTAL_ROWS / FAN_IN * FAN_IN);
            })
        });
    }
    g.finish();
}

fn bench_merge_u64(c: &mut Criterion) {
    bench_merge(c, "ovc/merge_u64", |k| k);
}

fn bench_merge_bytes(c: &mut Criterion) {
    // Shared 13-byte prefix: full comparisons must scan it, OVC duels skip
    // it entirely — the workload the coding exists for.
    bench_merge(c, "ovc/merge_bytes", |k| BytesKey::new(format!("shared-prefix-{k:012}")));
}

fn bench_merge_duplicates(c: &mut Criterion) {
    // Heavy duplicates: most duels tie on Ovc::EQUAL and resolve by source
    // index without touching the keys.
    bench_merge(c, "ovc/merge_duplicate_heavy", |k| k % 64);
}

fn bench_run_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ovc/run_generation_bytes");
    g.throughput(Throughput::Elements(20_000));
    g.sample_size(10);
    let keys: Vec<BytesKey> = {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        (0..20_000u64)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                BytesKey::new(format!("shared-prefix-{:012}", state % 100_000))
            })
            .collect()
    };
    for (label, ovc) in [("ovc", true), ("full_cmp", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let catalog = Arc::new(RunCatalog::new(
                    Arc::new(MemoryBackend::new()),
                    RunCatalog::<BytesKey>::unique_prefix("ovcbench"),
                    SortOrder::Ascending,
                    IoStats::new(),
                ));
                let mut gen = ReplacementSelection::new(catalog, 64 * 1024).with_ovc(ovc, None);
                for key in &keys {
                    gen.push(Row::key_only(key.clone()), &mut NoopObserver).unwrap();
                }
                gen.finish(&mut NoopObserver, ResiduePolicy::SpillToRuns).unwrap();
                black_box(gen.cmp_counts())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_merge_u64,
    bench_merge_bytes,
    bench_merge_duplicates,
    bench_run_generation
);
criterion_main!(benches);
