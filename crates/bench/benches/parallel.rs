//! Parallel top-k benchmarks (§4.4): thread scaling with the shared
//! histogram priority queue, and the contention cost of the shared filter.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use histok_core::{ParallelTopK, TopKConfig};
use histok_storage::MemoryBackend;
use histok_types::{F64Key, Row, SortSpec};
use histok_workload::Workload;

const ROWS: u64 = 400_000;
const K: u64 = 8_000;
const MEM_ROWS_PER_WORKER: usize = 2_000;

fn run_parallel(rows: &[Row<F64Key>], threads: usize) -> u64 {
    let config = TopKConfig::builder().memory_budget(MEM_ROWS_PER_WORKER * 64).build().unwrap();
    let mut op: ParallelTopK<F64Key> =
        ParallelTopK::new(SortSpec::ascending(K), config, MemoryBackend::new(), threads).unwrap();
    for row in rows.iter().cloned() {
        op.push(row).unwrap();
    }
    let n = op.finish().unwrap().count() as u64;
    assert_eq!(n, K);
    op.metrics().io.rows_written
}

fn bench_thread_scaling(c: &mut Criterion) {
    let rows: Vec<Row<F64Key>> = Workload::uniform(ROWS, 99).rows().collect();
    let mut g = c.benchmark_group("parallel/thread_scaling");
    g.throughput(Throughput::Elements(ROWS));
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("{threads}_workers"), |b| {
            b.iter(|| black_box(run_parallel(&rows, threads)))
        });
    }
    g.finish();
}

fn bench_shared_filter_bound(c: &mut Criterion) {
    // §4.4's claim rendered as an assertion inside the bench: total spill
    // with 4 workers stays within 3x of a single worker's.
    let rows: Vec<Row<F64Key>> = Workload::uniform(ROWS, 100).rows().collect();
    let single = run_parallel(&rows, 1);
    let mut g = c.benchmark_group("parallel/shared_filter");
    g.sample_size(10);
    g.bench_function("spill_bound_4_workers", |b| {
        b.iter(|| {
            let quad = run_parallel(&rows, 4);
            assert!(quad < single * 3, "shared filter broke: {quad} vs {single}");
            black_box(quad)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_shared_filter_bound);
criterion_main!(benches);
