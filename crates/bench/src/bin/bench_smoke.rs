//! `bench_smoke`: a fast release-mode sanity benchmark for the sort hot
//! path, suitable as a CI step.
//!
//! Runs the loser-tree merge and replacement-selection run generation over
//! fixed workloads twice — offset-value coding on and off — and records
//! wall-clock throughput plus the comparison counters (`ovc_cmps` /
//! `full_cmps`) for each. The result is written to `BENCH_<n>.json` (the
//! first unused index, or `$BENCH_INDEX`), so successive CI runs do not
//! overwrite history.
//!
//! The process exits non-zero if offset-value coding fails to cut the
//! loser-tree's *full* key comparisons by at least 2× on the byte-key
//! merge workload — the regression the counters exist to catch — if
//! OVC-on fails to match or beat OVC-off *wall-clock* on any merge case
//! (including plain u64 keys: comparison savings must not be bought with
//! slower duels), if the overlapped-I/O layer (spill pipeline + merge
//! read-ahead) fails to beat synchronous I/O by at least 1.3× wall-clock
//! on a spill-heavy top-k over a sleeping throttled backend (modelled
//! disaggregated-storage latency), or if the range-partitioned parallel
//! merge fails to beat the serial merge by at least 1.5× wall-clock on
//! the same latency-dominated backend, or if the 64-query `TopKServer`
//! fleet fails to beat serial one-at-a-time execution by at least 1.5×
//! aggregate throughput (with bounded p95 latency, byte-identical
//! per-query results, and ≤ `io_threads` background threads), or if
//! in-sort duplicate folding (DESIGN.md §14) fails to cut spilled bytes
//! by at least 5× on a Zipf(1.2) duplicate-heavy stream over throttled
//! storage versus deduplicating at the sort's output (with the folded
//! results byte-identical to the post-hoc oracle, dedup and grouped
//! COUNT alike).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use histok_core::{
    GroupedAggTopK, HistogramTopK, TopKConfig, TopKOperator, TraditionalExternalTopK,
};
use histok_exec::{Query, ServerConfig, TopKServer};
use histok_sort::run_gen::{ReplacementSelection, ResiduePolicy, RunGenerator};
use histok_sort::{
    merge_runs_partitioned, merge_sources_tuned, open_source, plan_merges_cascade,
    plan_merges_legacy, plan_merges_tuned, CascadeStats, CmpStats, IterSource, LoserTree,
    MergeConfig, MergePolicy, MergeTuning, NoopObserver, DEFAULT_BATCH_ROWS,
};
use histok_storage::{
    IoScheduler, IoSchedulerMetrics, IoStats, MemoryBackend, RunCatalog, StorageBackend,
    ThreadCensus, ThrottleModel, ThrottledBackend,
};
use histok_types::{
    decode_count, AggregateOp, BytesKey, F64Key, JsonValue, Result, Row, RowBatch, SortKey,
    SortOrder, SortSpec,
};
use histok_workload::{Distribution, Workload};

const MERGE_ROWS: u64 = 200_000;
const FAN_IN: u64 = 64;
const RUN_GEN_ROWS: u64 = 50_000;
const REQUIRED_REDUCTION: f64 = 2.0;
const OVERLAP_ROWS: u64 = 30_000;
const REQUIRED_SPEEDUP: f64 = 1.3;
const PARTITION_RUNS: u64 = 4;
const PARTITION_ROWS_PER_RUN: u64 = 8_000;
const PARTITION_THREADS: usize = 4;
const REQUIRED_PARTITION_SPEEDUP: f64 = 1.5;
const STORM_RUNS: u64 = 512;
const STORM_ROWS_PER_RUN: u64 = 400;
const STORM_FAN_IN: usize = 64;
const STORM_THREADS: usize = 4;
const STORM_IO_THREADS: usize = 4;
const STORM_PARITY: f64 = 1.10;
const CONC_QUERIES: u64 = 64;
const CONC_ROWS_PER_QUERY: u64 = 3_000;
const CONC_SMALL_K: u64 = 10;
const CONC_SPILL_K: u64 = 400;
const CONC_QUERY_BUDGET: usize = 16 * 1024;
const CONC_POOL_BYTES: usize = 256 * 1024;
const CONC_IO_THREADS: usize = 4;
const REQUIRED_CONC_SPEEDUP: f64 = 1.5;
/// p95 per-query latency (admission wait + execution) in the concurrent
/// fleet must stay under this fraction of the serial wall — concurrency
/// must not be bought by starving individual queries.
const CONC_P95_FRACTION: f64 = 0.75;
const CASCADE_RUNS: u64 = 512;
const CASCADE_ROWS_PER_RUN: u64 = 500;
const CASCADE_FAN_IN: usize = 64;
const CASCADE_WORKERS: usize = 4;
const REQUIRED_CASCADE_SPEEDUP: f64 = 1.4;
/// Zipf dedup workload (DESIGN.md §14): i.i.d. Zipf(s) ranks over a key
/// space much smaller than the row count, so duplicates dominate.
const ZIPF_ROWS: u64 = 60_000;
const ZIPF_DISTINCT: u64 = 2_000;
const ZIPF_S: f64 = 1.2;
/// Distinct groups the dedup query retains.
const ZIPF_K: u64 = 500;
/// Groups the COUNT-aggregate query ranks by group size.
const ZIPF_GROUP_K: u64 = 50;
const ZIPF_BUDGET: usize = 8 * 1024;
/// In-sort folding must cut spilled bytes by at least this factor vs.
/// carrying every duplicate through the sort and deduplicating at the
/// output.
const REQUIRED_FOLD_REDUCTION: f64 = 5.0;
/// Timed merge cases keep the fastest of this many repetitions (wall-clock
/// gates must not trip on scheduler noise).
const MERGE_REPS: usize = 7;
/// OVC-on must not run slower than this × the OVC-off wall on any merge
/// case. On exact-prefix keys both modes duel on one integer compare, so
/// the structural expectation is parity (medians run 0.94–1.01×); the
/// margin absorbs per-process code-layout variance, which shifts a tight
/// merge loop ±10% between otherwise identical invocations. The gate's
/// job is the old failure class — the 1.7× regression of BENCH_3 — not a
/// ten-percent layout lottery.
const OVC_WALL_PARITY: f64 = 1.15;

fn rate(rows: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        rows as f64 / (wall_ns as f64 / 1e9)
    }
}

struct CaseResult {
    rows: u64,
    wall_ns: u64,
    ovc_cmps: u64,
    full_cmps: u64,
}

impl CaseResult {
    fn rows_per_sec(&self) -> f64 {
        rate(self.rows, self.wall_ns)
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("rows".to_owned(), JsonValue::from(self.rows)),
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("rows_per_sec".to_owned(), JsonValue::from(self.rows_per_sec())),
            ("ovc_cmps".to_owned(), JsonValue::from(self.ovc_cmps)),
            ("full_cmps".to_owned(), JsonValue::from(self.full_cmps)),
        ])
    }
}

/// One wall-clock measurement of the spill-heavy top-k, with the I/O-wait
/// accounting split the overlap layer maintains.
struct OverlapRun {
    rows: u64,
    wall_ns: u64,
    io_wait_ns: u64,
    overlapped_io_ns: u64,
    /// Order-sensitive digest of the output keys: both modes must agree.
    checksum: u64,
}

impl OverlapRun {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("rows".to_owned(), JsonValue::from(self.rows)),
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("rows_per_sec".to_owned(), JsonValue::from(rate(self.rows, self.wall_ns))),
            ("io_wait_ns".to_owned(), JsonValue::from(self.io_wait_ns)),
            ("overlapped_io_ns".to_owned(), JsonValue::from(self.overlapped_io_ns)),
        ])
    }
}

/// Spill-heavy top-k over a *sleeping* throttled backend modelling
/// disaggregated-storage latency (a fixed per-request cost, no bandwidth
/// term). `k = rows` so the merge reads every spilled block back. With the
/// overlap layer on, spill writes land on the pipeline thread and the final
/// merge prefetches all ~10 runs concurrently, so the per-request sleeps
/// parallelize across sources; synchronously they serialize on the compute
/// thread.
fn overlap_case(overlap: bool) -> OverlapRun {
    let model =
        ThrottleModel { per_op: Duration::from_micros(150), per_byte: Duration::ZERO, sleep: true };
    let backend: Arc<dyn histok_storage::StorageBackend> =
        Arc::new(ThrottledBackend::new(MemoryBackend::new(), model));
    let config = TopKConfig::builder()
        .memory_budget(240 * 1024) // ~10 runs of 30k rows
        .block_bytes(1024)
        .spill_pipeline(overlap)
        .readahead_blocks(if overlap { 2 } else { 0 })
        .build()
        .expect("overlap config");
    let mut op: TraditionalExternalTopK<u64> =
        TraditionalExternalTopK::with_config(SortSpec::ascending(OVERLAP_ROWS), &config, backend)
            .expect("overlap operator");
    let started = Instant::now();
    for i in 0..OVERLAP_ROWS {
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        op.push(Row::new(key, key.to_le_bytes().repeat(2))).expect("push");
    }
    let mut rows = 0u64;
    let mut checksum = 0u64;
    for row in op.finish().expect("finish") {
        let row = row.expect("row");
        checksum = checksum.wrapping_mul(31).wrapping_add(row.key);
        rows += 1;
    }
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let io = op.metrics().io;
    OverlapRun {
        rows,
        wall_ns,
        io_wait_ns: io.io_wait_ns,
        overlapped_io_ns: io.overlapped_io_ns,
        checksum,
    }
}

/// One wall-clock measurement of the final merge only (runs are written
/// untimed), serial vs. range-partitioned across worker threads.
struct PartitionRun {
    rows: u64,
    wall_ns: u64,
    partitions: u64,
    blocks_skipped: u64,
    checksum: u64,
}

impl PartitionRun {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("rows".to_owned(), JsonValue::from(self.rows)),
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("rows_per_sec".to_owned(), JsonValue::from(rate(self.rows, self.wall_ns))),
            ("partitions".to_owned(), JsonValue::from(self.partitions)),
            ("blocks_skipped".to_owned(), JsonValue::from(self.blocks_skipped)),
        ])
    }
}

/// Few wide runs over the same sleeping throttled backend as
/// `overlap_case`: the serial merge keeps only `PARTITION_RUNS` requests
/// in flight (one prefetch stream per run), while the partitioned merge
/// keeps `threads ×` that many — range-scoped readers skip straight to
/// their partition — so the per-request sleeps divide by the partition
/// count even on a single core.
fn partition_case(threads: usize) -> PartitionRun {
    let model =
        ThrottleModel { per_op: Duration::from_micros(150), per_byte: Duration::ZERO, sleep: true };
    let stats = IoStats::new();
    let catalog: Arc<RunCatalog<u64>> = Arc::new(
        RunCatalog::new(
            Arc::new(ThrottledBackend::new(MemoryBackend::new(), model)),
            RunCatalog::<u64>::unique_prefix("pmerge"),
            SortOrder::Ascending,
            stats.clone(),
        )
        .with_block_bytes(1024),
    );
    for r in 0..PARTITION_RUNS {
        let mut w = catalog.start_run().expect("start run");
        for j in 0..PARTITION_ROWS_PER_RUN {
            let key = j * PARTITION_RUNS + r;
            w.append(&Row::new(key, key.to_le_bytes().repeat(2))).expect("append");
        }
        catalog.register(w.finish().expect("finish run")).expect("register");
    }
    let runs = catalog.runs();
    let tuning = MergeTuning {
        ovc: true,
        stats: None,
        readahead_blocks: 2,
        io_scheduler: None,
        batch_rows: DEFAULT_BATCH_ROWS,
        fold: None,
    };
    let skipped_before = stats.snapshot().blocks_skipped;
    let started = Instant::now();
    let mut rows = 0u64;
    let mut checksum = 0u64;
    let mut drain = |iter: &mut dyn Iterator<Item = Result<Row<u64>>>| {
        for row in iter {
            let row = row.expect("row");
            checksum = checksum.wrapping_mul(31).wrapping_add(row.key);
            rows += 1;
        }
    };
    let partitions = if threads >= 2 {
        let merge = merge_runs_partitioned(&catalog, &runs, vec![], threads, None, &tuning)
            .expect("plan")
            .partitioned()
            .expect("partitionable");
        let partitions = merge.partitions() as u64;
        drain(&mut { merge });
        partitions
    } else {
        let sources: Vec<_> =
            runs.iter().map(|m| open_source(&catalog, m, &tuning).expect("open source")).collect();
        let tree = merge_sources_tuned(sources, SortOrder::Ascending, &tuning).expect("merge");
        drain(&mut { tree });
        1
    };
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    PartitionRun {
        rows,
        wall_ns,
        partitions,
        blocks_skipped: stats.snapshot().blocks_skipped - skipped_before,
        checksum,
    }
}

/// One wall-clock measurement of the spill storm: 512 runs merged at
/// fan-in 64 (one intermediate pass of 8 merges, each holding 64 prefetch
/// sources and one spill writer open at once) followed by a partitioned
/// final merge — all over a sleeping throttled backend.
struct StormRun {
    rows: u64,
    wall_ns: u64,
    /// Peak background-I/O threads alive during the merges (pool workers
    /// in scheduled mode; pipeline + prefetch threads in legacy mode).
    peak_io_threads: usize,
    io_wait_ns: u64,
    overlapped_io_ns: u64,
    sched: Option<IoSchedulerMetrics>,
    checksum: u64,
}

impl StormRun {
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("rows".to_owned(), JsonValue::from(self.rows)),
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("rows_per_sec".to_owned(), JsonValue::from(rate(self.rows, self.wall_ns))),
            ("peak_io_threads".to_owned(), JsonValue::from(self.peak_io_threads as u64)),
            ("io_wait_ns".to_owned(), JsonValue::from(self.io_wait_ns)),
            ("overlapped_io_ns".to_owned(), JsonValue::from(self.overlapped_io_ns)),
        ];
        if let Some(m) = &self.sched {
            fields.push((
                "scheduler".to_owned(),
                JsonValue::Obj(vec![
                    ("jobs_merge_readahead".to_owned(), JsonValue::from(m.completed[0])),
                    ("jobs_prefetch".to_owned(), JsonValue::from(m.completed[1])),
                    ("jobs_spill_write".to_owned(), JsonValue::from(m.completed[2])),
                    ("queue_depth_peak".to_owned(), JsonValue::from(m.queue_depth_peak as u64)),
                ]),
            ));
        }
        JsonValue::Obj(fields)
    }
}

/// The tentpole's gate workload: without a shared pool, the intermediate
/// merges hold ~65 background threads alive at once (64 prefetch sources
/// plus the output spill pipeline); with `io_threads = 4` the same merges
/// must run on 4 pool workers at wall-clock parity, byte-identical.
/// `io_threads = 0` is the legacy thread-per-source baseline.
fn spill_storm_case(io_threads: usize) -> StormRun {
    let model =
        ThrottleModel { per_op: Duration::from_micros(2), per_byte: Duration::ZERO, sleep: true };
    let stats = IoStats::new();
    let scheduler = (io_threads > 0).then(|| IoScheduler::new(io_threads));
    let catalog: Arc<RunCatalog<BytesKey>> = Arc::new(
        RunCatalog::new(
            Arc::new(ThrottledBackend::new(MemoryBackend::new(), model)),
            RunCatalog::<BytesKey>::unique_prefix("storm"),
            SortOrder::Ascending,
            stats.clone(),
        )
        .with_block_bytes(8192)
        .with_io_scheduler(scheduler.clone()),
    );
    // 512 sorted strided runs, written untimed: run r holds keys
    // r, r+512, r+1024, … so every run overlaps every key range and the
    // merges cannot shortcut.
    for r in 0..STORM_RUNS {
        let mut w = catalog.start_run().expect("start storm run");
        for j in 0..STORM_ROWS_PER_RUN {
            let k = j * STORM_RUNS + r;
            w.append(&Row::key_only(BytesKey::new(format!("storm-key-{k:012}")))).expect("append");
        }
        catalog.register(w.finish().expect("finish storm run")).expect("register");
    }
    let tuning = MergeTuning {
        ovc: true,
        stats: None,
        readahead_blocks: 2,
        io_scheduler: scheduler.clone(),
        batch_rows: DEFAULT_BATCH_ROWS,
        fold: None,
    };
    let merge = MergeConfig { fan_in: STORM_FAN_IN, policy: MergePolicy::SmallestFirst };
    let io_before = stats.snapshot();
    ThreadCensus::reset_peak();
    let started = Instant::now();
    // Intermediate passes: 512 runs → 8 at fan-in 64.
    let final_runs = plan_merges_tuned(&catalog, &merge, None, None, &tuning).expect("plan");
    let mut rows = 0u64;
    let mut checksum = 0u64;
    let attempt =
        merge_runs_partitioned(&catalog, &final_runs, vec![], STORM_THREADS, None, &tuning)
            .expect("partition plan");
    match attempt.partitioned() {
        Some(merge) => {
            for row in merge {
                let row = row.expect("row");
                for b in row.key.as_slice() {
                    checksum = checksum.wrapping_mul(31).wrapping_add(u64::from(*b));
                }
                rows += 1;
            }
        }
        None => panic!("storm final merge did not partition"),
    }
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let peak_io_threads = ThreadCensus::peak();
    let io = stats.snapshot().since(&io_before);
    StormRun {
        rows,
        wall_ns,
        peak_io_threads,
        io_wait_ns: io.io_wait_ns,
        overlapped_io_ns: io.overlapped_io_ns,
        sched: scheduler.as_ref().map(IoScheduler::metrics),
        checksum,
    }
}

/// One wall-clock measurement of the cascade gate: 512 strided runs
/// reduced to the fan-in over a sleeping throttled backend with fully
/// synchronous I/O, so the planned-parallel cascade's speedup comes
/// from overlapping storage sleeps across pass workers — exactly the
/// latency-bound regime DESIGN.md §11 targets.
struct CascadeRun {
    rows: u64,
    wall_ns: u64,
    final_runs: u64,
    peak_io_threads: usize,
    stats: CascadeStats,
    /// Order-sensitive digest of the fully drained output: both
    /// planners must agree byte for byte.
    checksum: u64,
}

impl CascadeRun {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("rows".to_owned(), JsonValue::from(self.rows)),
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("final_runs".to_owned(), JsonValue::from(self.final_runs)),
            ("peak_io_threads".to_owned(), JsonValue::from(self.peak_io_threads as u64)),
            ("merge_passes".to_owned(), JsonValue::from(self.stats.merge_passes)),
            ("intermediate_merges".to_owned(), JsonValue::from(self.stats.intermediate_merges)),
            ("runs_pruned".to_owned(), JsonValue::from(self.stats.runs_pruned)),
            ("cascade_wait_ns".to_owned(), JsonValue::from(self.stats.cascade_wait_ns)),
            ("checksum".to_owned(), JsonValue::from(self.checksum)),
        ])
    }
}

/// Runs the cascade workload once: `parallel = false` is the greedy
/// serial baseline ([`plan_merges_legacy`]); `parallel = true` the
/// planned cascade on [`CASCADE_WORKERS`] pass workers. Run drain for
/// the checksum happens untimed after the wall measurement.
fn cascade_case(parallel: bool) -> CascadeRun {
    let model =
        ThrottleModel { per_op: Duration::from_micros(100), per_byte: Duration::ZERO, sleep: true };
    let stats = IoStats::new();
    let catalog: RunCatalog<u64> = RunCatalog::new(
        Arc::new(ThrottledBackend::new(MemoryBackend::new(), model)),
        RunCatalog::<u64>::unique_prefix("cascade"),
        SortOrder::Ascending,
        stats.clone(),
    )
    .with_block_bytes(4096)
    .with_spill_pipeline(false);
    // 512 sorted strided runs, written untimed: run r holds keys
    // r, r+512, r+1024, … so every run overlaps every key range and no
    // merge can shortcut.
    for r in 0..CASCADE_RUNS {
        let mut w = catalog.start_run().expect("start cascade run");
        for j in 0..CASCADE_ROWS_PER_RUN {
            w.append(&Row::key_only(j * CASCADE_RUNS + r)).expect("append");
        }
        catalog.register(w.finish().expect("finish cascade run")).expect("register");
    }
    // Fully synchronous I/O: no read-ahead, no pipeline, no pool — every
    // storage sleep lands on the merge thread that issued it, so worker
    // overlap is the only latency hiding available.
    let tuning = MergeTuning {
        ovc: true,
        stats: None,
        readahead_blocks: 0,
        io_scheduler: None,
        batch_rows: DEFAULT_BATCH_ROWS,
        fold: None,
    };
    let merge = MergeConfig { fan_in: CASCADE_FAN_IN, policy: MergePolicy::LowestKeyFirst };
    ThreadCensus::reset_peak();
    let started = Instant::now();
    let (final_runs, cascade_stats) = if parallel {
        plan_merges_cascade(&catalog, &merge, None, None, &tuning, CASCADE_WORKERS).expect("plan")
    } else {
        let runs = plan_merges_legacy(&catalog, &merge, None, None, &tuning).expect("legacy plan");
        (runs, CascadeStats::default())
    };
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let peak_io_threads = ThreadCensus::peak();
    // Untimed correctness drain: content preservation is the invariant
    // (limit is None), so both planners must yield the same key stream.
    let sources =
        final_runs.iter().map(|m| open_source(&catalog, m, &tuning).expect("open")).collect();
    let tree = merge_sources_tuned(sources, SortOrder::Ascending, &tuning).expect("drain tree");
    let mut rows = 0u64;
    let mut checksum = 0u64;
    for row in tree {
        let row = row.expect("row");
        checksum = checksum.wrapping_mul(31).wrapping_add(row.key);
        rows += 1;
    }
    CascadeRun {
        rows,
        wall_ns,
        final_runs: final_runs.len() as u64,
        peak_io_threads,
        stats: cascade_stats,
        checksum,
    }
}

type VecSource<K> = IterSource<std::vec::IntoIter<Result<Row<K>>>>;

/// One query of the mixed fleet: odd indices spill (k = 400 under a
/// 16 KiB workspace), even indices stay in memory (k = 10). Merge reads
/// stay synchronous on the query thread (`readahead_blocks = 0`): the
/// serial baseline pays every storage sleep in sequence, while the fleet
/// overlaps them across query threads — the latency-bound regime the
/// shared server targets on any core count.
fn fleet_query(i: u64) -> Query<F64Key> {
    let k = if i.is_multiple_of(2) { CONC_SMALL_K } else { CONC_SPILL_K };
    let config = TopKConfig::builder()
        .memory_budget(CONC_QUERY_BUDGET)
        .block_bytes(4096)
        .spill_pipeline(true)
        .readahead_blocks(0)
        .io_threads(CONC_IO_THREADS)
        .build()
        .expect("fleet config");
    Query::scan(
        Workload::uniform(CONC_ROWS_PER_QUERY, 0xC0FFEE ^ i).with_payload_bytes(32).rows(),
        SortSpec::ascending(k),
    )
    .config(config)
}

/// Order-sensitive checksum over keys *and* payloads: byte-identical
/// per-query results regardless of lease sizing is a gate.
fn fleet_checksum(rows: &[Row<F64Key>]) -> u64 {
    let mut sum = 0u64;
    for row in rows {
        sum = sum.wrapping_mul(0x100000001b3).wrapping_add(row.key.get().to_bits());
        for b in row.payload.as_ref() {
            sum = sum.wrapping_mul(31).wrapping_add(u64::from(*b));
        }
    }
    sum
}

fn fleet_backend() -> Arc<dyn StorageBackend> {
    let model =
        ThrottleModel { per_op: Duration::from_micros(25), per_byte: Duration::ZERO, sleep: true };
    Arc::new(ThrottledBackend::new(MemoryBackend::new(), model))
}

struct FleetSerial {
    wall_ns: u64,
    rows_in: u64,
    checksums: Vec<u64>,
}

impl FleetSerial {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("rows_in".to_owned(), JsonValue::from(self.rows_in)),
            ("rows_per_sec".to_owned(), JsonValue::from(rate(self.rows_in, self.wall_ns))),
        ])
    }
}

/// The baseline: the same 64 queries, one at a time, each standalone
/// (private pool, fixed `memory_budget`) on the same throttled backend.
fn concurrent_queries_serial() -> FleetSerial {
    let backend = fleet_backend();
    let started = Instant::now();
    let mut checksums = Vec::with_capacity(CONC_QUERIES as usize);
    for i in 0..CONC_QUERIES {
        let result = fleet_query(i).execute_shared(backend.clone()).expect("serial fleet query");
        checksums.push(fleet_checksum(&result.rows));
    }
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    FleetSerial { wall_ns, rows_in: CONC_QUERIES * CONC_ROWS_PER_QUERY, checksums }
}

struct FleetRun {
    wall_ns: u64,
    rows_in: u64,
    p95_latency_ns: u64,
    queued_ns_total: u64,
    peak_io_threads: usize,
    peak_concurrent: usize,
    peak_leases: usize,
    grants: u64,
    admitted_immediately: u64,
    rebalances: u64,
    revoked_bytes: u64,
    spilled_bytes: u64,
    checksums: Vec<u64>,
}

impl FleetRun {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("rows_in".to_owned(), JsonValue::from(self.rows_in)),
            ("rows_per_sec".to_owned(), JsonValue::from(rate(self.rows_in, self.wall_ns))),
            ("p95_latency_ns".to_owned(), JsonValue::from(self.p95_latency_ns)),
            ("queued_ns_total".to_owned(), JsonValue::from(self.queued_ns_total)),
            ("peak_io_threads".to_owned(), JsonValue::from(self.peak_io_threads as u64)),
            ("peak_concurrent".to_owned(), JsonValue::from(self.peak_concurrent as u64)),
            ("peak_leases".to_owned(), JsonValue::from(self.peak_leases as u64)),
            ("grants".to_owned(), JsonValue::from(self.grants)),
            ("admitted_immediately".to_owned(), JsonValue::from(self.admitted_immediately)),
            ("rebalances".to_owned(), JsonValue::from(self.rebalances)),
            ("revoked_bytes".to_owned(), JsonValue::from(self.revoked_bytes)),
            ("spilled_bytes".to_owned(), JsonValue::from(self.spilled_bytes)),
        ])
    }
}

/// The gate workload: the same 64 queries through one `TopKServer` from
/// 64 client threads — one 256 KiB lease pool (oversubscribed 2× by the
/// spilling queries' desired workspaces) and one 4-worker I/O pool.
fn concurrent_queries_fleet() -> FleetRun {
    let backend = fleet_backend();
    ThreadCensus::reset_peak();
    let server = Arc::new(TopKServer::new(ServerConfig {
        total_memory: CONC_POOL_BYTES,
        io_threads: CONC_IO_THREADS,
        min_lease: 4 * 1024,
        small_query_bytes: 2 * 1024,
        // Estimates must cover the payload-carrying rows, or the small
        // queries' leases run below their k-row heap and force spills.
        row_bytes_hint: 128,
        folded_row_bytes_hint: 32,
    }));
    let started = Instant::now();
    let handles: Vec<_> = (0..CONC_QUERIES)
        .map(|i| {
            let server = server.clone();
            let backend = backend.clone();
            std::thread::spawn(move || {
                let result = server.execute(fleet_query(i), backend).expect("fleet query");
                let latency = result.queued + result.elapsed;
                let latency_ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
                (latency_ns, fleet_checksum(&result.rows))
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(handles.len());
    let mut checksums = Vec::with_capacity(handles.len());
    for h in handles {
        let (latency_ns, checksum) = h.join().expect("fleet query thread");
        latencies.push(latency_ns);
        checksums.push(checksum);
    }
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let peak_io_threads = ThreadCensus::peak();
    latencies.sort_unstable();
    let p95_latency_ns = latencies[(latencies.len() * 95).div_ceil(100).saturating_sub(1)];
    let fleet = server.fleet_metrics();
    FleetRun {
        wall_ns,
        rows_in: CONC_QUERIES * CONC_ROWS_PER_QUERY,
        p95_latency_ns,
        queued_ns_total: fleet.admission.queued_ns_total,
        peak_io_threads,
        peak_concurrent: fleet.peak_concurrent,
        peak_leases: fleet.admission.peak_leases,
        grants: fleet.admission.grants,
        admitted_immediately: fleet.admission.admitted_immediately,
        rebalances: fleet.admission.rebalances,
        revoked_bytes: fleet.admission.revoked_bytes,
        spilled_bytes: fleet.spilled_bytes,
        checksums,
    }
}

fn sources<K: SortKey>(key: &impl Fn(u64) -> K) -> Vec<VecSource<K>> {
    (0..FAN_IN)
        .map(|i| {
            let rows: Vec<Result<Row<K>>> =
                (0..MERGE_ROWS / FAN_IN).map(|j| Ok(Row::key_only(key(j * FAN_IN + i)))).collect();
            IterSource::new(rows.into_iter())
        })
        .collect()
}

/// One timed drain of a fan-in-64 loser tree through the batched
/// `merge_into` path. Both the OVC and the full-comparison run go through
/// the same drain loop, so the wall-clock gate compares duel cost alone.
fn merge_once<K: SortKey>(ovc: bool, key: &impl Fn(u64) -> K) -> CaseResult {
    let stats = CmpStats::new();
    let input = sources(key);
    let started = Instant::now();
    let mut tree = LoserTree::with_ovc(input, SortOrder::Ascending, ovc, Some(stats.clone()))
        .expect("merge tree");
    let mut rows = 0u64;
    let mut batch: RowBatch<K> = RowBatch::with_capacity(DEFAULT_BATCH_ROWS);
    loop {
        tree.merge_into(&mut batch, DEFAULT_BATCH_ROWS).expect("merge batch");
        if batch.is_empty() {
            break;
        }
        rows += batch.len() as u64;
    }
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    drop(tree); // flush the counters
    let snap = stats.snapshot();
    CaseResult { rows, wall_ns, ovc_cmps: snap.ovc_cmps, full_cmps: snap.full_cmps }
}

/// Best wall-clock of [`MERGE_REPS`] runs (counters are deterministic, so
/// any repetition's counts are the counts).
fn merge_case<K: SortKey>(ovc: bool, key: &impl Fn(u64) -> K) -> CaseResult {
    (0..MERGE_REPS)
        .map(|_| merge_once(ovc, key))
        .min_by_key(|r| r.wall_ns)
        .expect("at least one rep")
}

/// Best wall-clock of [`MERGE_REPS`] *interleaved* (OVC, full-comparison)
/// rep pairs. Alternating the modes inside one loop exposes both to the
/// same machine drift (frequency scaling, cache pressure); timing each
/// mode in its own loop lets drift masquerade as a 30%+ duel-cost
/// difference on near-parity cases like u64.
fn merge_pair<K: SortKey>(key: &impl Fn(u64) -> K) -> (CaseResult, CaseResult) {
    let mut best: Option<(CaseResult, CaseResult)> = None;
    for rep in 0..MERGE_REPS {
        // Alternate which mode runs first so allocator/cache warm-up
        // doesn't systematically favor one side.
        let (with_ovc, without) = if rep % 2 == 0 {
            let w = merge_once(true, key);
            (w, merge_once(false, key))
        } else {
            let wo = merge_once(false, key);
            (merge_once(true, key), wo)
        };
        best = Some(match best.take() {
            None => (with_ovc, without),
            Some((bw, bwo)) => (
                if with_ovc.wall_ns < bw.wall_ns { with_ovc } else { bw },
                if without.wall_ns < bwo.wall_ns { without } else { bwo },
            ),
        });
    }
    best.expect("at least one rep")
}

/// The same u64 merge drained row-at-a-time through `Iterator::next` —
/// the baseline the batched `merge_into` loop replaced.
fn merge_row_at_a_time_case() -> CaseResult {
    (0..MERGE_REPS)
        .map(|_| {
            let stats = CmpStats::new();
            let input = sources(&|k| k);
            let started = Instant::now();
            let tree = LoserTree::with_ovc(input, SortOrder::Ascending, true, Some(stats.clone()))
                .expect("merge tree");
            let mut rows = 0u64;
            for row in tree {
                row.expect("merge row");
                rows += 1;
            }
            let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let snap = stats.snapshot();
            CaseResult { rows, wall_ns, ovc_cmps: snap.ovc_cmps, full_cmps: snap.full_cmps }
        })
        .min_by_key(|r| r.wall_ns)
        .expect("at least one rep")
}

fn run_gen_case(ovc: bool, keys: &[BytesKey]) -> CaseResult {
    let stats = CmpStats::new();
    let catalog = Arc::new(RunCatalog::new(
        Arc::new(MemoryBackend::new()),
        RunCatalog::<BytesKey>::unique_prefix("benchsmoke"),
        SortOrder::Ascending,
        IoStats::new(),
    ));
    let started = Instant::now();
    let mut gen = ReplacementSelection::new(catalog, 256 * 1024).with_ovc(ovc, Some(stats.clone()));
    for key in keys {
        gen.push(Row::key_only(key.clone()), &mut NoopObserver).expect("push");
    }
    gen.finish(&mut NoopObserver, ResiduePolicy::SpillToRuns).expect("finish");
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    drop(gen); // flush the heap's locally-buffered counters
    let snap = stats.snapshot();
    CaseResult {
        rows: keys.len() as u64,
        wall_ns,
        ovc_cmps: snap.ovc_cmps,
        full_cmps: snap.full_cmps,
    }
}

/// One workload measured with OVC on and off, plus the headline ratio:
/// how many times fewer *full* key comparisons the coded run needed.
fn case_json(name: &str, with_ovc: &CaseResult, without: &CaseResult) -> (f64, JsonValue) {
    let reduction = if with_ovc.full_cmps == 0 {
        f64::INFINITY
    } else {
        without.full_cmps as f64 / with_ovc.full_cmps as f64
    };
    let json = JsonValue::Obj(vec![
        ("name".to_owned(), JsonValue::from(name)),
        ("ovc".to_owned(), with_ovc.to_json()),
        ("full_cmp".to_owned(), without.to_json()),
        (
            "full_cmp_reduction".to_owned(),
            JsonValue::from(if reduction.is_finite() { reduction } else { f64::MAX }),
        ),
    ]);
    (reduction, json)
}

/// One pass over the Zipf stream: either folding duplicates inside the
/// sort (`dedup` on, k = [`ZIPF_K`] distinct groups) or carrying every
/// duplicate through the full external sort and deduplicating at the
/// output.
struct ZipfRun {
    rows_in: u64,
    wall_ns: u64,
    spilled_bytes: u64,
    rows_spilled: u64,
    rows_folded: u64,
    bytes_folded_pre_spill: u64,
}

impl ZipfRun {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("rows_in".to_owned(), JsonValue::from(self.rows_in)),
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("rows_per_sec".to_owned(), JsonValue::from(rate(self.rows_in, self.wall_ns))),
            ("spilled_bytes".to_owned(), JsonValue::from(self.spilled_bytes)),
            ("rows_spilled".to_owned(), JsonValue::from(self.rows_spilled)),
            ("rows_folded".to_owned(), JsonValue::from(self.rows_folded)),
            ("bytes_folded_pre_spill".to_owned(), JsonValue::from(self.bytes_folded_pre_spill)),
        ])
    }
}

/// The grouped-aggregation leg: top groups by COUNT, verified against a
/// post-hoc hash-count oracle.
struct ZipfGrouped {
    rows_in: u64,
    wall_ns: u64,
    groups: u64,
    top_count: u64,
    rows_folded: u64,
}

impl ZipfGrouped {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("rows_in".to_owned(), JsonValue::from(self.rows_in)),
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            ("groups".to_owned(), JsonValue::from(self.groups)),
            ("top_count".to_owned(), JsonValue::from(self.top_count)),
            ("rows_folded".to_owned(), JsonValue::from(self.rows_folded)),
        ])
    }
}

/// The shared duplicate-heavy stream: i.i.d. Zipf([`ZIPF_S`]) ranks over
/// [`ZIPF_DISTINCT`] keys, [`ZIPF_ROWS`] rows.
fn zipf_stream() -> impl Iterator<Item = F64Key> {
    Workload::uniform(ZIPF_ROWS, 0xD5F0)
        .with_distribution(Distribution::Zipf { s: ZIPF_S, n: ZIPF_DISTINCT })
        .keys()
}

/// All duplicates of a key share one payload, so FIRST is deterministic
/// and byte-comparison against the oracle meaningful.
fn zipf_payload(k: f64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

/// Sleeping throttled backend: spilled bytes carry a modelled
/// disaggregated-storage cost, so the fold's byte savings are also
/// wall-clock savings.
fn zipf_backend() -> Arc<dyn StorageBackend> {
    let model =
        ThrottleModel { per_op: Duration::from_micros(20), per_byte: Duration::ZERO, sleep: true };
    Arc::new(ThrottledBackend::new(MemoryBackend::new(), model))
}

/// Runs the dedup top-k (`dedup = true`) or the dedup-at-output baseline
/// (`dedup = false`: plain full sort of every duplicate; the caller
/// dedups the returned rows). Returns the output rows (key bits,
/// payload) and the run's accounting.
fn zipf_case(dedup: bool) -> (Vec<(u64, Vec<u8>)>, ZipfRun) {
    let config = TopKConfig::builder()
        .memory_budget(ZIPF_BUDGET)
        .block_bytes(4096)
        .dedup(dedup)
        .build()
        .expect("zipf config");
    let spec = if dedup { SortSpec::ascending(ZIPF_K) } else { SortSpec::ascending(ZIPF_ROWS) };
    let mut op: HistogramTopK<F64Key> =
        HistogramTopK::with_arc(spec, config, zipf_backend()).expect("zipf operator");
    let started = Instant::now();
    for k in zipf_stream() {
        let payload = zipf_payload(k.0);
        op.push(Row::new(k, payload)).expect("push");
    }
    let mut out = Vec::new();
    for row in op.finish().expect("finish") {
        let row = row.expect("row");
        out.push((row.key.0.to_bits(), row.payload.to_vec()));
    }
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let m = op.metrics();
    let run = ZipfRun {
        rows_in: m.rows_in,
        wall_ns,
        spilled_bytes: m.io.bytes_written,
        rows_spilled: m.rows_spilled(),
        rows_folded: m.rows_folded,
        bytes_folded_pre_spill: m.bytes_folded_pre_spill,
    };
    (out, run)
}

/// Dedup at the output: keep the first row of each adjacent group of the
/// already-sorted baseline output, truncated to the k distinct groups
/// the in-sort dedup query retains.
fn zipf_posthoc_dedup(rows: &[(u64, Vec<u8>)]) -> Vec<(u64, Vec<u8>)> {
    let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
    for (k, p) in rows {
        if out.last().map(|(last, _)| last == k) != Some(true) {
            out.push((*k, p.clone()));
        }
    }
    out.truncate(ZIPF_K as usize);
    out
}

/// Top [`ZIPF_GROUP_K`] groups by COUNT descending over the same stream,
/// asserted byte-identical (keys, values, accumulator bytes) to a
/// post-hoc hash-count oracle with the same (count, key) descending
/// tie-break.
fn zipf_grouped_case() -> ZipfGrouped {
    let config = TopKConfig::builder()
        .memory_budget(ZIPF_BUDGET)
        .block_bytes(4096)
        .aggregate(AggregateOp::Count)
        .build()
        .expect("zipf grouped config");
    let mut op: GroupedAggTopK<F64Key> =
        GroupedAggTopK::with_arc(ZIPF_GROUP_K, SortOrder::Descending, config, zipf_backend())
            .expect("zipf grouped operator");
    let started = Instant::now();
    for k in zipf_stream() {
        op.push(Row::key_only(k)).expect("push");
    }
    let groups = op.finish().expect("finish");
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;

    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for k in zipf_stream() {
        *counts.entry(k.0.to_bits()).or_insert(0) += 1;
    }
    // Positive-f64 bit patterns order like the values, so (count, bits)
    // descending matches the operator's (value, group key) tie-break.
    let mut want: Vec<(u64, u64)> = counts.iter().map(|(&bits, &c)| (c, bits)).collect();
    want.sort_unstable_by(|a, b| b.cmp(a));
    want.truncate(ZIPF_GROUP_K as usize);
    assert_eq!(groups.len(), want.len(), "grouped COUNT lost groups");
    for (g, &(count, bits)) in groups.iter().zip(&want) {
        assert_eq!(g.key.0.to_bits(), bits, "grouped COUNT ranked the wrong group");
        assert_eq!(g.value, count as f64, "grouped COUNT mis-valued a group");
        assert_eq!(decode_count(&g.acc), count, "grouped COUNT accumulator diverged");
        assert_eq!(
            &g.acc[..],
            &count.to_le_bytes()[..],
            "grouped COUNT accumulator bytes diverged"
        );
    }

    let m = op.metrics();
    ZipfGrouped {
        rows_in: m.rows_in,
        wall_ns,
        groups: groups.len() as u64,
        top_count: want.first().map_or(0, |&(c, _)| c),
        rows_folded: m.rows_folded,
    }
}

fn output_path() -> PathBuf {
    if let Ok(n) = std::env::var("BENCH_INDEX") {
        return PathBuf::from(format!("BENCH_{n}.json"));
    }
    let mut n = 1u32;
    loop {
        let path = PathBuf::from(format!("BENCH_{n}.json"));
        if !path.exists() {
            return path;
        }
        n += 1;
    }
}

fn main() {
    let byte_key = |k: u64| BytesKey::new(format!("shared-prefix-{k:012}"));
    // Run-generation keys vary within their first 8 bytes so the selection
    // heap's normalized-prefix fast path gets a chance to fire (the heap
    // compares prefixes, not full offset-value codes — see DESIGN.md).
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let run_gen_keys: Vec<BytesKey> = (0..RUN_GEN_ROWS)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            BytesKey::new(format!("{:08}-suffix", state % 100_000_000))
        })
        .collect();

    let (u64_ovc, u64_full) = merge_pair(&|k| k);
    let (bytes_ovc, bytes_full) = merge_pair(&byte_key);
    let (dup_ovc, dup_full) = merge_pair(&|k| k % 64);
    let cases: Vec<(&str, CaseResult, CaseResult)> = vec![
        ("merge_u64", u64_ovc, u64_full),
        ("merge_bytes", bytes_ovc, bytes_full),
        ("merge_duplicate_heavy", dup_ovc, dup_full),
        (
            "run_generation_bytes",
            run_gen_case(true, &run_gen_keys),
            run_gen_case(false, &run_gen_keys),
        ),
    ];

    let mut rows = Vec::new();
    let mut byte_merge_reduction = 0.0f64;
    // (name, ovc wall / full-comparison wall) for every merge_* case: the
    // tentpole's wall-clock gate.
    let mut ovc_wall_ratios: Vec<(String, f64)> = Vec::new();
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "case", "ovc rows/s", "base rows/s", "ovc full", "base full", "reduction"
    );
    for (name, with_ovc, without) in &cases {
        let (reduction, json) = case_json(name, with_ovc, without);
        if *name == "merge_bytes" {
            byte_merge_reduction = reduction;
        }
        if name.starts_with("merge") && without.wall_ns > 0 {
            ovc_wall_ratios
                .push(((*name).to_owned(), with_ovc.wall_ns as f64 / without.wall_ns as f64));
        }
        println!(
            "{:<24} {:>12.0} {:>12.0} {:>12} {:>12} {:>9.1}x",
            name,
            with_ovc.rows_per_sec(),
            without.rows_per_sec(),
            with_ovc.full_cmps,
            without.full_cmps,
            reduction
        );
        rows.push(json);
    }

    // Batched vs. row-at-a-time drain of the same u64 merge (OVC on in
    // both): the batched execution win, isolated.
    let batched = merge_case(true, &|k| k);
    let row_at_a_time = merge_row_at_a_time_case();
    assert_eq!(batched.rows, row_at_a_time.rows, "drain mode changed the row count");
    let batch_speedup = if batched.wall_ns == 0 {
        f64::INFINITY
    } else {
        row_at_a_time.wall_ns as f64 / batched.wall_ns as f64
    };
    println!(
        "{:<24} {:>12.0} {:>12.0} {:>12} {:>12} {:>9.2}x",
        "batched_merge",
        batched.rows_per_sec(),
        row_at_a_time.rows_per_sec(),
        "(batch)",
        "(row)",
        batch_speedup
    );
    rows.push(JsonValue::Obj(vec![
        ("name".to_owned(), JsonValue::from("batched_merge")),
        ("batched".to_owned(), batched.to_json()),
        ("row_at_a_time".to_owned(), row_at_a_time.to_json()),
        (
            "speedup".to_owned(),
            JsonValue::from(if batch_speedup.is_finite() { batch_speedup } else { f64::MAX }),
        ),
    ]));

    // Overlapped I/O: same spill-heavy top-k with the pipeline + read-ahead
    // on vs. fully synchronous, over a sleeping throttled backend.
    let piped = overlap_case(true);
    let synchronous = overlap_case(false);
    assert_eq!(piped.rows, synchronous.rows, "overlap changed the row count");
    assert_eq!(piped.checksum, synchronous.checksum, "overlap changed the output order");
    let speedup = if piped.wall_ns == 0 {
        f64::INFINITY
    } else {
        synchronous.wall_ns as f64 / piped.wall_ns as f64
    };
    println!(
        "{:<24} {:>10.0}ms {:>10.0}ms {:>12} {:>12} {:>9.2}x",
        "overlap_topk",
        piped.wall_ns as f64 / 1e6,
        synchronous.wall_ns as f64 / 1e6,
        "(piped)",
        "(sync)",
        speedup
    );
    rows.push(JsonValue::Obj(vec![
        ("name".to_owned(), JsonValue::from("overlap_topk")),
        ("pipelined".to_owned(), piped.to_json()),
        ("synchronous".to_owned(), synchronous.to_json()),
        (
            "speedup".to_owned(),
            JsonValue::from(if speedup.is_finite() { speedup } else { f64::MAX }),
        ),
    ]));

    // Partitioned merge: the same final merge over few wide runs, serial
    // vs. range-partitioned across worker threads.
    let partitioned = partition_case(PARTITION_THREADS);
    let serial = partition_case(1);
    assert_eq!(partitioned.rows, serial.rows, "partitioning changed the row count");
    assert_eq!(partitioned.checksum, serial.checksum, "partitioning changed the output order");
    let partition_speedup = if partitioned.wall_ns == 0 {
        f64::INFINITY
    } else {
        serial.wall_ns as f64 / partitioned.wall_ns as f64
    };
    println!(
        "{:<24} {:>10.0}ms {:>10.0}ms {:>12} {:>12} {:>9.2}x",
        "partitioned_merge",
        partitioned.wall_ns as f64 / 1e6,
        serial.wall_ns as f64 / 1e6,
        format!("(P={})", partitioned.partitions),
        "(serial)",
        partition_speedup
    );
    rows.push(JsonValue::Obj(vec![
        ("name".to_owned(), JsonValue::from("partitioned_merge")),
        ("partitioned".to_owned(), partitioned.to_json()),
        ("serial".to_owned(), serial.to_json()),
        (
            "speedup".to_owned(),
            JsonValue::from(if partition_speedup.is_finite() {
                partition_speedup
            } else {
                f64::MAX
            }),
        ),
    ]));

    // Spill storm: 512 runs merged at fan-in 64, legacy thread-per-source
    // vs. the shared 4-worker I/O pool. The pool must hold the thread
    // count at `io_threads` while staying at wall-clock parity with
    // byte-identical output.
    let storm_legacy = spill_storm_case(0);
    let storm_pooled = spill_storm_case(STORM_IO_THREADS);
    assert_eq!(storm_pooled.rows, storm_legacy.rows, "spill storm changed the row count");
    assert_eq!(
        storm_pooled.checksum, storm_legacy.checksum,
        "spill storm changed the output order"
    );
    let storm_ratio = if storm_legacy.wall_ns == 0 {
        f64::INFINITY
    } else {
        storm_pooled.wall_ns as f64 / storm_legacy.wall_ns as f64
    };
    println!(
        "{:<24} {:>10.0}ms {:>10.0}ms {:>12} {:>12} {:>9.2}x",
        "spill_storm",
        storm_pooled.wall_ns as f64 / 1e6,
        storm_legacy.wall_ns as f64 / 1e6,
        format!("({}thr)", storm_pooled.peak_io_threads),
        format!("({}thr)", storm_legacy.peak_io_threads),
        storm_ratio
    );
    rows.push(JsonValue::Obj(vec![
        ("name".to_owned(), JsonValue::from("spill_storm")),
        ("pooled".to_owned(), storm_pooled.to_json()),
        ("legacy".to_owned(), storm_legacy.to_json()),
        (
            "wall_ratio".to_owned(),
            JsonValue::from(if storm_ratio.is_finite() { storm_ratio } else { f64::MAX }),
        ),
    ]));

    // Cascade gate: 512 runs reduced to fan-in 64 on synchronous
    // throttled I/O — the planned cascade on 4 pass workers vs. the
    // greedy serial baseline, byte-identical with ≥1.4× speedup.
    let cascade_serial = cascade_case(false);
    let cascade_parallel = cascade_case(true);
    assert_eq!(cascade_parallel.rows, cascade_serial.rows, "cascade planner changed the row count");
    assert_eq!(
        cascade_parallel.checksum, cascade_serial.checksum,
        "cascade planner changed the output"
    );
    let cascade_speedup = if cascade_parallel.wall_ns == 0 {
        f64::INFINITY
    } else {
        cascade_serial.wall_ns as f64 / cascade_parallel.wall_ns as f64
    };
    println!(
        "{:<24} {:>10.0}ms {:>10.0}ms {:>12} {:>12} {:>9.2}x",
        "cascade",
        cascade_parallel.wall_ns as f64 / 1e6,
        cascade_serial.wall_ns as f64 / 1e6,
        format!("({}pass)", cascade_parallel.stats.merge_passes),
        format!("({}mrg)", cascade_parallel.stats.intermediate_merges),
        cascade_speedup
    );
    rows.push(JsonValue::Obj(vec![
        ("name".to_owned(), JsonValue::from("cascade")),
        ("planned".to_owned(), cascade_parallel.to_json()),
        ("legacy_serial".to_owned(), cascade_serial.to_json()),
        (
            "speedup".to_owned(),
            JsonValue::from(if cascade_speedup.is_finite() { cascade_speedup } else { f64::MAX }),
        ),
    ]));

    // Concurrent-query fleet: 64 mixed queries through one `TopKServer`
    // (one lease pool, one I/O pool) vs. the same queries serially,
    // standalone. Byte-identical per-query output is a hard assert.
    let fleet_serial = concurrent_queries_serial();
    let fleet = concurrent_queries_fleet();
    assert_eq!(
        fleet.checksums, fleet_serial.checksums,
        "concurrent execution changed some query's result bytes"
    );
    let conc_speedup = if fleet.wall_ns == 0 {
        f64::INFINITY
    } else {
        fleet_serial.wall_ns as f64 / fleet.wall_ns as f64
    };
    println!(
        "{:<24} {:>10.0}ms {:>10.0}ms {:>12} {:>12} {:>9.2}x",
        "concurrent_queries",
        fleet.wall_ns as f64 / 1e6,
        fleet_serial.wall_ns as f64 / 1e6,
        format!("(p95 {:.0}ms)", fleet.p95_latency_ns as f64 / 1e6),
        "(serial)",
        conc_speedup
    );
    rows.push(JsonValue::Obj(vec![
        ("name".to_owned(), JsonValue::from("concurrent_queries")),
        ("fleet".to_owned(), fleet.to_json()),
        ("serial".to_owned(), fleet_serial.to_json()),
        (
            "speedup".to_owned(),
            JsonValue::from(if conc_speedup.is_finite() { conc_speedup } else { f64::MAX }),
        ),
    ]));

    // Zipf dedup: the same duplicate-heavy stream folded inside the sort
    // vs. carried whole through the external sort and deduplicated at the
    // output. The folded result must be byte-identical to the post-hoc
    // oracle; the fold must cut spilled bytes ≥ 5×.
    let (folded_rows, zipf_early) = zipf_case(true);
    let (raw_rows, zipf_at_output) = zipf_case(false);
    assert_eq!(zipf_early.rows_in, zipf_at_output.rows_in, "zipf stream diverged between modes");
    let zipf_oracle = zipf_posthoc_dedup(&raw_rows);
    assert_eq!(folded_rows, zipf_oracle, "in-sort dedup diverged from the post-hoc oracle");
    let fold_reduction = if zipf_early.spilled_bytes == 0 {
        f64::INFINITY
    } else {
        zipf_at_output.spilled_bytes as f64 / zipf_early.spilled_bytes as f64
    };
    let zipf_grouped = zipf_grouped_case();
    println!(
        "{:<24} {:>10.0}ms {:>10.0}ms {:>12} {:>12} {:>9.1}x",
        "zipf_dedup",
        zipf_early.wall_ns as f64 / 1e6,
        zipf_at_output.wall_ns as f64 / 1e6,
        format!("({}kB)", zipf_early.spilled_bytes / 1024),
        format!("({}kB)", zipf_at_output.spilled_bytes / 1024),
        fold_reduction
    );
    rows.push(JsonValue::Obj(vec![
        ("name".to_owned(), JsonValue::from("zipf_dedup")),
        ("dedup_early".to_owned(), zipf_early.to_json()),
        ("dedup_at_output".to_owned(), zipf_at_output.to_json()),
        (
            "spilled_bytes_reduction".to_owned(),
            JsonValue::from(if fold_reduction.is_finite() { fold_reduction } else { f64::MAX }),
        ),
        ("grouped_count".to_owned(), zipf_grouped.to_json()),
    ]));

    let report = JsonValue::Obj(vec![
        ("experiment".to_owned(), JsonValue::from("bench_smoke")),
        (
            "params".to_owned(),
            JsonValue::Obj(vec![
                ("merge_rows".to_owned(), JsonValue::from(MERGE_ROWS)),
                ("fan_in".to_owned(), JsonValue::from(FAN_IN)),
                ("run_gen_rows".to_owned(), JsonValue::from(RUN_GEN_ROWS)),
                ("required_reduction".to_owned(), JsonValue::from(REQUIRED_REDUCTION)),
                ("merge_reps".to_owned(), JsonValue::from(MERGE_REPS as u64)),
                ("ovc_wall_parity".to_owned(), JsonValue::from(OVC_WALL_PARITY)),
                ("batch_rows".to_owned(), JsonValue::from(DEFAULT_BATCH_ROWS as u64)),
                ("overlap_rows".to_owned(), JsonValue::from(OVERLAP_ROWS)),
                ("required_speedup".to_owned(), JsonValue::from(REQUIRED_SPEEDUP)),
                ("partition_runs".to_owned(), JsonValue::from(PARTITION_RUNS)),
                ("partition_rows_per_run".to_owned(), JsonValue::from(PARTITION_ROWS_PER_RUN)),
                ("partition_threads".to_owned(), JsonValue::from(PARTITION_THREADS as u64)),
                (
                    "required_partition_speedup".to_owned(),
                    JsonValue::from(REQUIRED_PARTITION_SPEEDUP),
                ),
                ("storm_runs".to_owned(), JsonValue::from(STORM_RUNS)),
                ("storm_rows_per_run".to_owned(), JsonValue::from(STORM_ROWS_PER_RUN)),
                ("storm_fan_in".to_owned(), JsonValue::from(STORM_FAN_IN as u64)),
                ("storm_io_threads".to_owned(), JsonValue::from(STORM_IO_THREADS as u64)),
                ("storm_parity".to_owned(), JsonValue::from(STORM_PARITY)),
                ("cascade_runs".to_owned(), JsonValue::from(CASCADE_RUNS)),
                ("cascade_rows_per_run".to_owned(), JsonValue::from(CASCADE_ROWS_PER_RUN)),
                ("cascade_fan_in".to_owned(), JsonValue::from(CASCADE_FAN_IN as u64)),
                ("cascade_workers".to_owned(), JsonValue::from(CASCADE_WORKERS as u64)),
                ("required_cascade_speedup".to_owned(), JsonValue::from(REQUIRED_CASCADE_SPEEDUP)),
                ("conc_queries".to_owned(), JsonValue::from(CONC_QUERIES)),
                ("conc_rows_per_query".to_owned(), JsonValue::from(CONC_ROWS_PER_QUERY)),
                ("conc_pool_bytes".to_owned(), JsonValue::from(CONC_POOL_BYTES as u64)),
                ("conc_io_threads".to_owned(), JsonValue::from(CONC_IO_THREADS as u64)),
                ("required_conc_speedup".to_owned(), JsonValue::from(REQUIRED_CONC_SPEEDUP)),
                ("conc_p95_fraction".to_owned(), JsonValue::from(CONC_P95_FRACTION)),
                ("zipf_rows".to_owned(), JsonValue::from(ZIPF_ROWS)),
                ("zipf_distinct".to_owned(), JsonValue::from(ZIPF_DISTINCT)),
                ("zipf_s".to_owned(), JsonValue::from(ZIPF_S)),
                ("zipf_k".to_owned(), JsonValue::from(ZIPF_K)),
                ("zipf_group_k".to_owned(), JsonValue::from(ZIPF_GROUP_K)),
                ("zipf_budget".to_owned(), JsonValue::from(ZIPF_BUDGET as u64)),
                ("required_fold_reduction".to_owned(), JsonValue::from(REQUIRED_FOLD_REDUCTION)),
            ]),
        ),
        ("cases".to_owned(), JsonValue::Arr(rows)),
    ]);
    let path = output_path();
    std::fs::write(&path, report.to_json_pretty(2)).expect("write BENCH json");
    println!("\nreport: {}", path.display());

    let mut failed = false;
    for (name, ratio) in &ovc_wall_ratios {
        if *ratio > OVC_WALL_PARITY {
            eprintln!(
                "FAIL: {name} ran {ratio:.2}x the full-comparison wall with OVC on \
                 (bound {OVC_WALL_PARITY}x)"
            );
            failed = true;
        } else {
            println!(
                "OK: {name} with OVC on ran {ratio:.2}x the full-comparison wall \
                 (bound {OVC_WALL_PARITY}x)"
            );
        }
    }
    if byte_merge_reduction < REQUIRED_REDUCTION {
        eprintln!(
            "FAIL: byte-key merge full comparisons reduced only {byte_merge_reduction:.2}x \
             (required {REQUIRED_REDUCTION}x)"
        );
        failed = true;
    } else {
        println!(
            "OK: byte-key merge full comparisons reduced {byte_merge_reduction:.1}x \
             (required {REQUIRED_REDUCTION}x)"
        );
    }
    if speedup < REQUIRED_SPEEDUP {
        eprintln!(
            "FAIL: overlapped I/O sped the throttled top-k up only {speedup:.2}x \
             (required {REQUIRED_SPEEDUP}x)"
        );
        failed = true;
    } else {
        println!(
            "OK: overlapped I/O sped the throttled top-k up {speedup:.2}x \
             (required {REQUIRED_SPEEDUP}x)"
        );
    }
    if partition_speedup < REQUIRED_PARTITION_SPEEDUP {
        eprintln!(
            "FAIL: partitioned merge sped the throttled final merge up only \
             {partition_speedup:.2}x (required {REQUIRED_PARTITION_SPEEDUP}x)"
        );
        failed = true;
    } else {
        println!(
            "OK: partitioned merge sped the throttled final merge up {partition_speedup:.2}x \
             (required {REQUIRED_PARTITION_SPEEDUP}x)"
        );
    }
    if storm_pooled.peak_io_threads > STORM_IO_THREADS {
        eprintln!(
            "FAIL: spill storm peaked at {} background I/O threads with a {}-worker pool",
            storm_pooled.peak_io_threads, STORM_IO_THREADS
        );
        failed = true;
    } else {
        println!(
            "OK: spill storm held {} background I/O threads (pool of {}; legacy peaked at {})",
            storm_pooled.peak_io_threads, STORM_IO_THREADS, storm_legacy.peak_io_threads
        );
    }
    if storm_ratio > STORM_PARITY {
        eprintln!(
            "FAIL: spill storm on the shared pool ran {storm_ratio:.2}x the legacy wall \
             (parity bound {STORM_PARITY}x)"
        );
        failed = true;
    } else {
        println!(
            "OK: spill storm on the shared pool ran {storm_ratio:.2}x the legacy wall \
             (parity bound {STORM_PARITY}x)"
        );
    }
    if cascade_speedup < REQUIRED_CASCADE_SPEEDUP {
        eprintln!(
            "FAIL: planned-parallel cascade sped the serial cascade up only \
             {cascade_speedup:.2}x (required {REQUIRED_CASCADE_SPEEDUP}x)"
        );
        failed = true;
    } else {
        println!(
            "OK: planned-parallel cascade sped the serial cascade up {cascade_speedup:.2}x \
             (required {REQUIRED_CASCADE_SPEEDUP}x)"
        );
    }
    if cascade_parallel.peak_io_threads > STORM_IO_THREADS {
        eprintln!(
            "FAIL: cascade peaked at {} background I/O threads on synchronous tuning \
             (bound {STORM_IO_THREADS})",
            cascade_parallel.peak_io_threads
        );
        failed = true;
    } else {
        println!(
            "OK: cascade held {} background I/O threads (bound {STORM_IO_THREADS})",
            cascade_parallel.peak_io_threads
        );
    }
    if conc_speedup < REQUIRED_CONC_SPEEDUP {
        eprintln!(
            "FAIL: the concurrent fleet sped the 64-query workload up only {conc_speedup:.2}x \
             (required {REQUIRED_CONC_SPEEDUP}x)"
        );
        failed = true;
    } else {
        println!(
            "OK: the concurrent fleet sped the 64-query workload up {conc_speedup:.2}x \
             (required {REQUIRED_CONC_SPEEDUP}x)"
        );
    }
    let p95_bound_ns = (fleet_serial.wall_ns as f64 * CONC_P95_FRACTION) as u64;
    if fleet.p95_latency_ns > p95_bound_ns {
        eprintln!(
            "FAIL: fleet p95 latency {:.0}ms exceeds {CONC_P95_FRACTION} of the serial wall \
             ({:.0}ms)",
            fleet.p95_latency_ns as f64 / 1e6,
            p95_bound_ns as f64 / 1e6
        );
        failed = true;
    } else {
        println!(
            "OK: fleet p95 latency {:.0}ms within {CONC_P95_FRACTION} of the serial wall \
             ({:.0}ms)",
            fleet.p95_latency_ns as f64 / 1e6,
            p95_bound_ns as f64 / 1e6
        );
    }
    if fleet.peak_io_threads > CONC_IO_THREADS {
        eprintln!(
            "FAIL: the fleet peaked at {} background I/O threads with a {}-worker shared pool",
            fleet.peak_io_threads, CONC_IO_THREADS
        );
        failed = true;
    } else {
        println!(
            "OK: the fleet held {} background I/O threads (shared pool of {})",
            fleet.peak_io_threads, CONC_IO_THREADS
        );
    }
    if fold_reduction < REQUIRED_FOLD_REDUCTION {
        eprintln!(
            "FAIL: in-sort dedup cut spilled bytes only {fold_reduction:.2}x \
             (required {REQUIRED_FOLD_REDUCTION}x)"
        );
        failed = true;
    } else {
        println!(
            "OK: in-sort dedup cut spilled bytes {fold_reduction:.1}x \
             (required {REQUIRED_FOLD_REDUCTION}x; dedup and grouped COUNT byte-identical \
             to the post-hoc oracle; {} rows folded)",
            zipf_early.rows_folded + zipf_grouped.rows_folded
        );
    }
    if failed {
        std::process::exit(1);
    }
}
