//! Regenerates **Table 3** (§3.2.2): varying the output size `k` over a
//! 1,000,000-row uniform input with memory for 1,000 rows. The last
//! experiment runs thrice with 10, 100 and 1,000 buckets per run.

use histok_analysis::table3;
use histok_bench::{banner, fmt_count, MetricsReport};
use histok_types::JsonValue;

/// Paper values: (k, buckets, runs, rows).
const PAPER: [(u64, u32, u64, u64); 7] = [
    (2_000, 10, 20, 14_858),
    (5_000, 10, 39, 34_077),
    (10_000, 10, 67, 62_072),
    (20_000, 10, 113, 109_016),
    (50_000, 10, 222, 218_539),
    (50_000, 100, 204, 200_161),
    (50_000, 1_000, 202, 198_436),
];

fn main() {
    banner(
        "Table 3 — varying output size (idealized model)",
        "1,000,000 uniform rows, memory 1,000 rows",
    );
    println!(
        "{:>8} {:>9} | {:>6} {:>10} {:>10} {:>6} | {:>6} {:>10} (paper)",
        "Output", "#Buckets", "Runs", "Rows", "Cutoff", "Ratio", "Runs", "Rows"
    );
    for (row, (k, b, p_runs, p_rows)) in table3().iter().zip(PAPER) {
        assert_eq!((row.k, row.buckets), (k, b));
        let r = &row.result;
        println!(
            "{:>8} {:>9} | {:>6} {:>10} {:>10} {:>6} | {:>6} {:>10}",
            fmt_count(row.k),
            row.buckets,
            r.runs,
            fmt_count(r.rows_spilled),
            r.final_cutoff.map(|c| format!("{c:.6}")).unwrap_or_else(|| "-".into()),
            r.ratio.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            p_runs,
            fmt_count(p_rows),
        );
    }

    let mut report = MetricsReport::new("table3");
    report.param("input_rows", 1_000_000u64).param("mem_rows", 1_000u64);
    let opt_f64 = |v: Option<f64>| v.map(JsonValue::from).unwrap_or(JsonValue::Null);
    for row in table3() {
        report.push_row(JsonValue::obj([
            ("k", JsonValue::from(row.k)),
            ("buckets", JsonValue::from(row.buckets)),
            ("runs", JsonValue::from(row.result.runs)),
            ("rows_spilled", JsonValue::from(row.result.rows_spilled)),
            ("final_cutoff", opt_f64(row.result.final_cutoff)),
            ("ratio", opt_f64(row.result.ratio)),
        ]));
    }
    report.write();
}
