//! Regenerates the **§5.5 overhead experiment**: an adversarial input
//! whose keys arrive in strictly improving order, so the cutoff filter
//! sharpens constantly yet never eliminates a single row. The histogram
//! operator is compared against itself with the cutoff logic disabled;
//! the paper measured a 3 % overhead.

use histok_bench::{banner, env_u64, env_usize, fmt_count, run_topk, BackendKind, MetricsReport};
use histok_core::TopKConfig;
use histok_exec::Algorithm;
use histok_types::{JsonValue, SortSpec};
use histok_workload::{Distribution, Workload};

fn main() {
    let mem_rows = env_u64("HISTOK_MEM_ROWS", 14_000);
    let k = env_u64("HISTOK_K", mem_rows * 30 / 7);
    let input = env_u64("HISTOK_INPUT_ROWS", 1_000_000);
    let payload = env_usize("HISTOK_PAYLOAD", 0);
    let backend = BackendKind::from_env();
    let repeats = env_u64("HISTOK_REPEATS", 5);
    banner(
        "§5.5 — overhead of the cutoff filter on an adversarial input",
        &format!(
            "{} strictly-improving rows, k = {}, memory {} rows, {} repeats",
            fmt_count(input),
            fmt_count(k),
            fmt_count(mem_rows),
            repeats
        ),
    );

    let w = Workload::uniform(input, 0)
        .with_distribution(Distribution::Adversarial)
        .with_payload_bytes(payload);
    let spec = SortSpec::ascending(k);
    let config = |filter: bool| {
        let row_bytes = 56 + payload;
        TopKConfig::builder()
            .memory_budget(mem_rows as usize * row_bytes)
            .filter_enabled(filter)
            .build()
            .expect("valid config")
    };

    let mut report = MetricsReport::new("overhead");
    report
        .param("input_rows", input)
        .param("k", k)
        .param("mem_rows", mem_rows)
        .param("payload_bytes", payload)
        .param("repeats", repeats)
        .param("backend", format!("{backend:?}"));
    let mut best_on = f64::MAX;
    let mut best_off = f64::MAX;
    let mut spilled = (0, 0);
    for repeat in 0..repeats {
        let on = run_topk(Algorithm::Histogram, &w, spec, config(true), backend).expect("on");
        let off = run_topk(Algorithm::Histogram, &w, spec, config(false), backend).expect("off");
        assert_eq!(on.checksum, off.checksum);
        // Adversarial property: the filter eliminated nothing.
        assert_eq!(on.metrics.eliminated_at_input, 0, "adversarial input was filtered?");
        assert_eq!(on.metrics.eliminated_at_spill, 0);
        best_on = best_on.min(on.total_time().as_secs_f64());
        best_off = best_off.min(off.total_time().as_secs_f64());
        spilled = (on.metrics.rows_spilled(), off.metrics.rows_spilled());
        report.push_outcomes(
            &[("repeat", JsonValue::from(repeat))],
            &[("filter_on", &on), ("filter_off", &off)],
        );
    }

    println!("\nfilter ON : best {:>8.3}s, spilled {} rows", best_on, fmt_count(spilled.0));
    println!("filter OFF: best {:>8.3}s, spilled {} rows", best_off, fmt_count(spilled.1));
    let overhead = (best_on / best_off - 1.0) * 100.0;
    println!("\ncutoff-filter overhead: {overhead:+.1}%  (paper: ~3%)");
    report
        .param("best_on_s", best_on)
        .param("best_off_s", best_off)
        .param("overhead_pct", overhead);
    report.write();
}
