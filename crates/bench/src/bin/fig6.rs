//! Regenerates **Figure 6** (§5.6): the resource-cost comparison between
//! the histogram algorithm (small fixed memory budget, spills) and the
//! in-memory priority-queue top-k (memory provisioned for the whole
//! output). Cost is `memory bytes × execution time`, the pay-as-you-go
//! model of the paper.

use histok_bench::{
    banner, env_u64, env_usize, figure_config, fmt_count, run_topk, BackendKind, MetricsReport,
};
use histok_exec::Algorithm;
use histok_types::{JsonValue, SortSpec};
use histok_workload::Workload;

fn main() {
    let mem_rows = env_u64("HISTOK_MEM_ROWS", 14_000);
    let k = env_u64("HISTOK_K", mem_rows * 30 / 7);
    let base_input = env_u64("HISTOK_INPUT_ROWS", 4_000_000);
    let payload = env_usize("HISTOK_PAYLOAD", 0);
    let backend = BackendKind::from_env();
    let mut report = MetricsReport::new("fig6");
    report
        .param("k", k)
        .param("mem_rows", mem_rows)
        .param("payload_bytes", payload)
        .param("backend", format!("{backend:?}"));
    banner(
        "Figure 6 — resource cost vs the in-memory top-k",
        &format!(
            "k = {}, our memory budget {} rows; in-memory algorithm gets memory for all of k",
            fmt_count(k),
            fmt_count(mem_rows)
        ),
    );

    let inputs: Vec<u64> =
        [2u64, 5, 10, 20].iter().map(|f| base_input / 20 * f).filter(|&n| n > k * 2).collect();

    println!(
        "\n{:>10} | {:>9} {:>12} | {:>9} {:>12} | {:>10} {:>10}",
        "input", "time(h)", "cost(h)", "time(m)", "cost(m)", "cost gain", "slowdown"
    );
    for &input in &inputs {
        let w = Workload::uniform(input, 0xF6).with_payload_bytes(payload);
        let spec = SortSpec::ascending(k);
        let config = figure_config(mem_rows, payload, 50);
        let budget = config.memory_budget;
        let hist = run_topk(Algorithm::Histogram, &w, spec, config, backend).expect("hist");
        let inmem = run_topk(
            Algorithm::InMemory,
            &w,
            spec,
            figure_config(mem_rows, payload, 50),
            BackendKind::Memory,
        )
        .expect("in-memory");
        assert_eq!(hist.checksum, inmem.checksum);
        // Cost = allocated memory × time (GB·s scaled to MB·s here).
        let cost_h = budget as f64 / 1e6 * hist.total_time().as_secs_f64();
        let cost_m =
            inmem.metrics.peak_memory_bytes as f64 / 1e6 * inmem.total_time().as_secs_f64();
        report.push_outcomes(
            &[
                ("input_rows", JsonValue::from(input)),
                ("cost_histogram_mbs", JsonValue::from(cost_h)),
                ("cost_in_memory_mbs", JsonValue::from(cost_m)),
            ],
            &[("histogram", &hist), ("in_memory", &inmem)],
        );
        println!(
            "{:>10} | {:>9} {:>10.2}MBs | {:>9} {:>10.2}MBs | {:>9.2}x {:>9.2}x",
            fmt_count(input),
            histok_bench::fmt_duration(hist.total_time()),
            cost_h,
            histok_bench::fmt_duration(inmem.total_time()),
            cost_m,
            cost_m / cost_h,
            hist.total_time().as_secs_f64() / inmem.total_time().as_secs_f64(),
        );
    }
    println!("\npaper shape: the in-memory algorithm is up to ~4x faster but up to ~3x more");
    println!("expensive; the gap narrows with input size (1.59x slower at 2B rows).");
    report.write();
}
