//! Regenerates **Figure 5** (§5.4): improvement as the histogram size is
//! varied from 0 (no filtering) to 100 buckets per run, at a fixed input
//! size and k.

use histok_bench::{
    banner, env_u64, env_usize, figure_config, fmt_count, run_topk, BackendKind, MetricsReport,
};
use histok_exec::Algorithm;
use histok_types::{JsonValue, SortSpec};
use histok_workload::Workload;

fn main() {
    let mem_rows = env_u64("HISTOK_MEM_ROWS", 14_000);
    let k = env_u64("HISTOK_K", mem_rows * 30 / 7);
    let input = env_u64("HISTOK_INPUT_ROWS", 4_000_000);
    let payload = env_usize("HISTOK_PAYLOAD", 0);
    let backend = BackendKind::from_env();
    let mut report = MetricsReport::new("fig5");
    report
        .param("input_rows", input)
        .param("k", k)
        .param("mem_rows", mem_rows)
        .param("payload_bytes", payload)
        .param("backend", format!("{backend:?}"));
    banner(
        "Figure 5 — varying histogram size",
        &format!(
            "input {} rows, k = {}, memory {} rows, uniform keys",
            fmt_count(input),
            fmt_count(k),
            fmt_count(mem_rows)
        ),
    );

    let w = Workload::uniform(input, 0xF5).with_payload_bytes(payload);
    let spec = SortSpec::ascending(k);
    let base =
        run_topk(Algorithm::Optimized, &w, spec, figure_config(mem_rows, payload, 50), backend)
            .expect("baseline");
    println!(
        "\nbaseline (optimized EMS): spilled {} rows in {}",
        fmt_count(base.metrics.rows_spilled()),
        histok_bench::fmt_duration(base.total_time())
    );
    println!(
        "\n{:>9} | {:>10} {:>8} {:>8} | {:>10} {:>8}",
        "#buckets", "spilled", "reduct.", "speedup", "time", "runs"
    );
    for buckets in [0u32, 1, 2, 5, 10, 20, 50, 100] {
        let hist = run_topk(
            Algorithm::Histogram,
            &w,
            spec,
            figure_config(mem_rows, payload, buckets),
            backend,
        )
        .expect("histogram");
        assert_eq!(hist.checksum, base.checksum, "B={buckets}");
        report.push_outcomes(
            &[("buckets", JsonValue::from(buckets))],
            &[("histogram", &hist), ("optimized", &base)],
        );
        println!(
            "{:>9} | {:>10} {:>7.1}x {:>7.1}x | {:>10} {:>8}",
            buckets,
            fmt_count(hist.metrics.rows_spilled()),
            base.metrics.rows_spilled() as f64 / hist.metrics.rows_spilled().max(1) as f64,
            base.total_time().as_secs_f64() / hist.total_time().as_secs_f64(),
            histok_bench::fmt_duration(hist.total_time()),
            hist.metrics.runs(),
        );
    }
    println!("\npaper shape: size 0 eliminates nothing; benefit grows quickly with the first");
    println!("few buckets and saturates — 50 → 100 buckets adds < 0.1x.");
    report.write();
}
