//! Regenerates **Figure 2** (§5.2): improvement of the histogram algorithm
//! over the optimized-external-merge-sort baseline as the output size `k`
//! grows, for the `uniform` and `fal(z = 1.25)` distributions.
//!
//! Scaled from the paper's 2 B rows / 7 M-row memory: the defaults use
//! 2,000,000 input rows and memory for 14,000, preserving the k : memory
//! and k : input ratios. Top plot = execution-time speedup; bottom plot =
//! spilled-rows reduction; both are printed as one table here.

use histok_analysis::{simulate, ModelParams};
use histok_bench::{
    banner, env_u64, env_usize, figure_config, fmt_count, run_topk, BackendKind, MetricsReport,
    RunOutcome,
};
use histok_exec::Algorithm;
use histok_types::{JsonValue, SortSpec};
use histok_workload::{Distribution, Workload};

fn main() {
    let input = env_u64("HISTOK_INPUT_ROWS", 4_000_000);
    let mem_rows = env_u64("HISTOK_MEM_ROWS", 14_000);
    let payload = env_usize("HISTOK_PAYLOAD", 0);
    let backend = BackendKind::from_env();
    let mut report = MetricsReport::new("fig2");
    report
        .param("input_rows", input)
        .param("mem_rows", mem_rows)
        .param("payload_bytes", payload)
        .param("backend", format!("{backend:?}"));
    banner(
        "Figure 2 — varying output size",
        &format!(
            "input {} rows, memory {} rows, backend {:?} (paper: 2B rows, 7M-row memory)",
            fmt_count(input),
            fmt_count(mem_rows),
            backend
        ),
    );

    let ks: Vec<u64> = [1u64, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|f| mem_rows / 2 * f)
        .filter(|&k| k <= input / 2)
        .collect();

    for dist in [Distribution::Uniform, Distribution::Fal { shape: 1.25 }] {
        println!("\n--- distribution: {} ---", dist.label());
        println!(
            "{:>10} {:>7} | {:>10} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
            "k",
            "k/mem",
            "model(h)",
            "spill(h)",
            "spill(b)",
            "reduct.",
            "time(h)",
            "time(b)",
            "speedup"
        );
        for &k in &ks {
            let w = Workload::uniform(input, 0xF1 + k).with_distribution(dist);
            if payload > 0 {
                // payload applied uniformly to both algorithms
            }
            let w = w.with_payload_bytes(payload);
            let spec = SortSpec::ascending(k);
            let config = figure_config(mem_rows, payload, 50);
            let hist: RunOutcome =
                run_topk(Algorithm::Histogram, &w, spec, config.clone(), backend)
                    .expect("histogram run");
            let base: RunOutcome =
                run_topk(Algorithm::Optimized, &w, spec, config, backend).expect("baseline run");
            assert_eq!(hist.checksum, base.checksum, "algorithms disagree at k={k}");
            let reduction =
                base.metrics.rows_spilled() as f64 / hist.metrics.rows_spilled().max(1) as f64;
            let speedup = base.total_time().as_secs_f64() / hist.total_time().as_secs_f64();
            // The §3.2 analytical model's prediction for this point (the
            // model assumes load-sort-store and spilled residue, so it is
            // a ballpark, not an exact target).
            let model = simulate(ModelParams {
                input_rows: input,
                k,
                memory_rows: mem_rows,
                buckets_per_run: 50,
            });
            report.push_outcomes(
                &[
                    ("distribution", JsonValue::from(dist.label())),
                    ("k", JsonValue::from(k)),
                    ("model_rows_spilled", JsonValue::from(model.rows_spilled)),
                ],
                &[("histogram", &hist), ("optimized", &base)],
            );
            println!(
                "{:>10} {:>7.2} | {:>10} {:>10} {:>10} {:>7.1}x | {:>10} {:>10} {:>7.1}x",
                fmt_count(k),
                k as f64 / mem_rows as f64,
                fmt_count(model.rows_spilled),
                fmt_count(hist.metrics.rows_spilled()),
                fmt_count(base.metrics.rows_spilled()),
                reduction,
                histok_bench::fmt_duration(hist.total_time()),
                histok_bench::fmt_duration(base.total_time()),
                speedup,
            );
        }
    }
    println!("\nmodel(h) is the §3.2 analytical prediction of the histogram operator's");
    println!("spill (it has no in-memory phase, so it over-predicts when k fits memory).");
    println!("\npaper shape: speedup ~1x while k fits memory, rising to ~11x, then");
    println!("declining as k approaches the input size; identical across distributions.");
    report.write();
}
