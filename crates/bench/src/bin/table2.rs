//! Regenerates **Table 2** (§3.2.2): varying the histogram size over the
//! worked example. Columns: buckets per run, runs written, rows spilled,
//! final cutoff, ratio to the ideal cutoff. Paper reference values are
//! printed alongside.

use histok_analysis::table2;
use histok_bench::{banner, fmt_count, MetricsReport};
use histok_types::JsonValue;

/// Paper values: (#buckets, runs, rows, cutoff, ratio).
const PAPER: [(u32, u64, u64, &str, &str); 8] = [
    (0, 1_000, 1_000_000, "-", "200"),
    (1, 66, 62_781, "0.015625", "3.13"),
    (5, 44, 39_150, "0.007373", "1.47"),
    (10, 39, 34_077, "0.0063", "1.26"),
    (20, 37, 31_568, "0.00567", "1.13"),
    (50, 35, 30_156, "0.00532", "1.06"),
    (100, 35, 29_780, "0.005162", "1.03"),
    (1_000, 35, 29_258, "0.005014", "1"),
];

fn main() {
    banner(
        "Table 2 — varying histogram size (idealized model)",
        "top 5,000 of 1,000,000 uniform rows, memory 1,000 rows",
    );
    println!(
        "{:>8} | {:>6} {:>10} {:>10} {:>6} | {:>6} {:>10} (paper)",
        "#Buckets", "Runs", "Rows", "Cutoff", "Ratio", "Runs", "Rows"
    );
    for (row, (b, p_runs, p_rows, _, _)) in table2().iter().zip(PAPER) {
        assert_eq!(row.buckets, b);
        let r = &row.result;
        println!(
            "{:>8} | {:>6} {:>10} {:>10} {:>6} | {:>6} {:>10}",
            row.buckets,
            r.runs,
            fmt_count(r.rows_spilled),
            r.final_cutoff.map(|c| format!("{c:.6}")).unwrap_or_else(|| "-".into()),
            r.ratio.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            p_runs,
            fmt_count(p_rows),
        );
    }
    println!();
    println!("headline checks (paper §3.2.2):");
    let rows = table2();
    let spilled = |b: u32| rows.iter().find(|r| r.buckets == b).unwrap().result.rows_spilled;
    println!(
        "  minimal histogram spills {}x less than the traditional sort (paper: 16x)",
        1_000_000 / spilled(1)
    );
    println!(
        "  100 buckets/run spill {}x less than the traditional sort (paper: 30x)",
        1_000_000 / spilled(100)
    );

    let mut report = MetricsReport::new("table2");
    report.param("input_rows", 1_000_000u64).param("k", 5_000u64).param("mem_rows", 1_000u64);
    let opt_f64 = |v: Option<f64>| v.map(JsonValue::from).unwrap_or(JsonValue::Null);
    for row in table2() {
        report.push_row(JsonValue::obj([
            ("buckets", JsonValue::from(row.buckets)),
            ("runs", JsonValue::from(row.result.runs)),
            ("rows_spilled", JsonValue::from(row.result.rows_spilled)),
            ("final_cutoff", opt_f64(row.result.final_cutoff)),
            ("ratio", opt_f64(row.result.ratio)),
        ]));
    }
    report.write();
}
