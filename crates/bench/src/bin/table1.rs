//! Regenerates **Table 1** (§3.2.1): the run-by-run trace of the worked
//! example — top 5,000 of 1,000,000 uniform rows, memory for 1,000 rows,
//! decile histograms. Prints remaining input, cutoff key before each run,
//! and the quantile keys with the paper's empty cells for eliminated rows.

use histok_analysis::table1;
use histok_bench::{banner, fmt_count, metrics_to_json, MetricsReport};
use histok_core::{
    HistogramTopK, OperatorMetrics, RunGenKind, SizingPolicy, TopKConfig, TopKOperator,
};
use histok_sort::run_gen::ResiduePolicy;
use histok_storage::MemoryBackend;
use histok_types::{JsonValue, SortSpec};
use histok_workload::Workload;

/// Runs the production operator with the model's exact setup (1,000-row
/// memory, load-sort-store, 9 deciles, no tail buckets, residue spilled)
/// on real shuffled keys.
fn real_operator_check() -> OperatorMetrics {
    let config = TopKConfig::builder()
        .memory_budget(1_000 * 56) // key-only rows ≈ 56 bytes charged
        .sizing(SizingPolicy::TargetBuckets(9))
        .tail_buckets(false)
        .run_generation(RunGenKind::LoadSortStore)
        .residue(ResiduePolicy::SpillToRuns)
        .build()
        .expect("static config");
    let mut op = HistogramTopK::new(SortSpec::ascending(5_000), config, MemoryBackend::new())
        .expect("operator");
    for row in Workload::uniform(1_000_000, 1).rows() {
        op.push(row).expect("push");
    }
    let produced = op.finish().expect("finish").count() as u64;
    assert_eq!(produced, 5_000);
    op.metrics()
}

fn main() {
    banner(
        "Table 1 — approximate quantiles and cutoff keys (idealized model)",
        "top 5,000 of 1,000,000 uniform rows, memory 1,000 rows, decile histograms",
    );
    let result = table1();
    println!(
        "{:>4}  {:>12}  {:>10}  {:>9} {:>9} {:>4} {:>9} {:>9} {:>9}",
        "Run", "Remaining", "Cutoff", "10%", "20%", "...", "70%", "80%", "90%"
    );
    let fmt_opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.6}"),
        None => String::new(),
    };
    for (i, t) in result.trace.iter().enumerate() {
        println!(
            "{:>4}  {:>12}  {:>10}  {:>9} {:>9} {:>4} {:>9} {:>9} {:>9}",
            i + 1,
            fmt_count(t.remaining_before),
            t.cutoff_before.map(|c| format!("{c:.6}")).unwrap_or_else(|| "-".into()),
            fmt_opt(t.deciles[0]),
            fmt_opt(t.deciles[1]),
            "...",
            fmt_opt(t.deciles[6]),
            fmt_opt(t.deciles[7]),
            fmt_opt(t.deciles[8]),
        );
    }
    println!();
    println!(
        "total: {} runs, {} rows spilled (paper: 39 runs, <35,000 rows)",
        result.runs,
        fmt_count(result.rows_spilled)
    );
    println!(
        "final cutoff {:.6} vs ideal {:.6} (ratio {:.2})",
        result.final_cutoff.unwrap_or(f64::NAN),
        result.ideal_cutoff,
        result.ratio.unwrap_or(f64::NAN)
    );
    println!("\ncross-check: production operator on real shuffled keys (same setup)...");
    let measured = real_operator_check();
    println!(
        "  measured {} runs, {} rows spilled vs model {} runs, {} rows",
        measured.runs(),
        fmt_count(measured.rows_spilled()),
        result.runs,
        fmt_count(result.rows_spilled)
    );

    let mut report = MetricsReport::new("table1");
    report
        .param("input_rows", 1_000_000u64)
        .param("k", 5_000u64)
        .param("mem_rows", 1_000u64)
        .param("buckets_per_run", 9u64)
        .param("model_runs", result.runs)
        .param("model_rows_spilled", result.rows_spilled)
        .param("model_ideal_cutoff", result.ideal_cutoff);
    let opt_f64 = |v: Option<f64>| v.map(JsonValue::from).unwrap_or(JsonValue::Null);
    for t in &result.trace {
        report.push_row(JsonValue::obj([
            ("remaining_before", JsonValue::from(t.remaining_before)),
            ("cutoff_before", opt_f64(t.cutoff_before)),
            ("deciles", JsonValue::Arr(t.deciles.iter().map(|&d| opt_f64(d)).collect())),
        ]));
    }
    report.push_row(JsonValue::obj([("measured_operator", metrics_to_json(&measured))]));
    report.write();
}
