//! Runs every experiment binary in sequence — the one-command
//! reproduction of the paper's evaluation. Each child's stdout is teed to
//! `results/<name>.txt` (relative to the current directory); each child
//! also writes its own machine-readable `results/<name>.json`, and this
//! driver summarizes the whole batch in `results/all_experiments.json`.
//!
//! ```sh
//! cargo run --release -p histok-bench --bin all_experiments
//! ```

use std::fs;
use std::path::Path;
use std::process::{Command, ExitCode};
use std::time::Instant;

use histok_bench::MetricsReport;
use histok_types::JsonValue;

const EXPERIMENTS: [&str; 12] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5", // §3.2 analysis
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",            // §5 figures
    "overhead",        // §5.5
    "all_done_marker", // replaced below; keeps the array length honest
];

fn main() -> ExitCode {
    let out_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
        .expect("current_exe has a parent directory");

    let total = Instant::now();
    let mut summary = MetricsReport::new("all_experiments");
    for name in EXPERIMENTS.iter().take(EXPERIMENTS.len() - 1) {
        let bin = exe_dir.join(name);
        if !bin.exists() {
            eprintln!(
                "skipping {name}: {} not built (run `cargo build --release -p histok-bench --bins`)",
                bin.display()
            );
            summary.push_row(JsonValue::obj([
                ("experiment", JsonValue::from(*name)),
                ("status", JsonValue::from("skipped")),
            ]));
            continue;
        }
        let start = Instant::now();
        print!("running {name:>9} ... ");
        use std::io::Write;
        std::io::stdout().flush().ok();
        match Command::new(&bin).output() {
            Ok(output) if output.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                if let Err(e) = fs::write(&path, &output.stdout) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("ok in {:.1}s → {}", start.elapsed().as_secs_f64(), path.display());
                let json = out_dir.join(format!("{name}.json"));
                summary.push_row(JsonValue::obj([
                    ("experiment", JsonValue::from(*name)),
                    ("status", JsonValue::from("ok")),
                    ("elapsed_s", JsonValue::from(start.elapsed().as_secs_f64())),
                    ("text_output", JsonValue::from(path.display().to_string())),
                    (
                        "json_output",
                        if json.exists() {
                            JsonValue::from(json.display().to_string())
                        } else {
                            JsonValue::Null
                        },
                    ),
                ]));
            }
            Ok(output) => {
                eprintln!("FAILED ({})", output.status);
                eprintln!("{}", String::from_utf8_lossy(&output.stderr));
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("cannot run {}: {e}", bin.display());
                return ExitCode::FAILURE;
            }
        }
    }
    summary.param("total_s", total.elapsed().as_secs_f64());
    println!(
        "\nall experiments done in {:.1}s; outputs in {}/",
        total.elapsed().as_secs_f64(),
        out_dir.display()
    );
    println!("compare against the paper with EXPERIMENTS.md");
    summary.write();
    ExitCode::SUCCESS
}
