//! Regenerates **Figure 4** (§5.4): the input-size sweep of Figure 3 run
//! with histograms of 1, 5 and 50 buckets per run (the paper's
//! `uniform-size-1`, `uniform-size-5` and `uniform` lines).

use histok_bench::{
    banner, env_u64, env_usize, figure_config, fmt_count, run_topk, BackendKind, MetricsReport,
};
use histok_exec::Algorithm;
use histok_types::{JsonValue, SortSpec};
use histok_workload::Workload;

fn main() {
    let mem_rows = env_u64("HISTOK_MEM_ROWS", 14_000);
    let k = env_u64("HISTOK_K", mem_rows * 30 / 7);
    let base_input = env_u64("HISTOK_INPUT_ROWS", 4_000_000);
    let payload = env_usize("HISTOK_PAYLOAD", 0);
    let backend = BackendKind::from_env();
    let mut report = MetricsReport::new("fig4");
    report
        .param("k", k)
        .param("mem_rows", mem_rows)
        .param("payload_bytes", payload)
        .param("backend", format!("{backend:?}"));
    banner(
        "Figure 4 — varying input size with histogram sizes 1 / 5 / 50",
        &format!("k = {}, memory {} rows, uniform keys", fmt_count(k), fmt_count(mem_rows)),
    );

    let inputs: Vec<u64> =
        [1u64, 3, 10, 20].iter().map(|f| base_input / 20 * f).filter(|&n| n > k * 2).collect();

    println!(
        "\n{:>10} | {:>14} {:>14} {:>14} | vs optimized-EMS baseline",
        "input", "buckets=1", "buckets=5", "buckets=50"
    );
    println!(
        "{:>10} | {:>6} {:>7} {:>6} {:>7} {:>6} {:>7}",
        "", "red.", "speedup", "red.", "speedup", "red.", "speedup"
    );
    for &input in &inputs {
        let w = Workload::uniform(input, 0xF4).with_payload_bytes(payload);
        let spec = SortSpec::ascending(k);
        let base =
            run_topk(Algorithm::Optimized, &w, spec, figure_config(mem_rows, payload, 50), backend)
                .expect("baseline");
        let mut cells = Vec::new();
        let mut hists = Vec::new();
        for buckets in [1u32, 5, 50] {
            let hist = run_topk(
                Algorithm::Histogram,
                &w,
                spec,
                figure_config(mem_rows, payload, buckets),
                backend,
            )
            .expect("histogram");
            assert_eq!(hist.checksum, base.checksum);
            cells.push((
                base.metrics.rows_spilled() as f64 / hist.metrics.rows_spilled().max(1) as f64,
                base.total_time().as_secs_f64() / hist.total_time().as_secs_f64(),
            ));
            hists.push((format!("histogram_b{buckets}"), hist));
        }
        let mut named: Vec<(&str, &histok_bench::RunOutcome)> = vec![("optimized", &base)];
        named.extend(hists.iter().map(|(name, o)| (name.as_str(), o)));
        report.push_outcomes(&[("input_rows", JsonValue::from(input))], &named);
        println!(
            "{:>10} | {:>5.1}x {:>6.1}x {:>5.1}x {:>6.1}x {:>5.1}x {:>6.1}x",
            fmt_count(input),
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1,
            cells[2].0,
            cells[2].1,
        );
    }
    println!("\npaper shape: even 1-bucket histograms reach ~6.6x; 5 buckets close most of");
    println!("the gap to the 50-bucket default.");
    report.write();
}
