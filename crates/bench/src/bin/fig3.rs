//! Regenerates **Figure 3** (§5.3): improvement of the histogram algorithm
//! over the optimized baseline as the *input* size grows, for six key
//! distributions (`uniform`, `lognormal`, `fal` with shapes 0.5, 1.05,
//! 1.25, 1.5). `k` is fixed at ~4.3× the memory capacity, like the paper's
//! k = 30 M over a 7 M-row memory.

use histok_bench::{
    banner, env_u64, env_usize, figure_config, fmt_count, run_topk, BackendKind, MetricsReport,
};
use histok_exec::Algorithm;
use histok_types::{JsonValue, SortSpec};
use histok_workload::{Distribution, Workload};

fn main() {
    let mem_rows = env_u64("HISTOK_MEM_ROWS", 14_000);
    let k = env_u64("HISTOK_K", mem_rows * 30 / 7); // paper: k = 30M, mem = 7M
    let base_input = env_u64("HISTOK_INPUT_ROWS", 4_000_000);
    let payload = env_usize("HISTOK_PAYLOAD", 0);
    let backend = BackendKind::from_env();
    let mut report = MetricsReport::new("fig3");
    report
        .param("k", k)
        .param("mem_rows", mem_rows)
        .param("payload_bytes", payload)
        .param("backend", format!("{backend:?}"));
    banner(
        "Figure 3 — varying input size, multiple distributions",
        &format!(
            "k = {}, memory {} rows, backend {:?} (paper: k=30M, 7M-row memory, 50M-2B rows)",
            fmt_count(k),
            fmt_count(mem_rows),
            backend
        ),
    );

    // Paper sweeps input/memory from ~7x to ~286x.
    let inputs: Vec<u64> =
        [1u64, 3, 10, 20].iter().map(|f| base_input / 20 * f).filter(|&n| n > k * 2).collect();
    let distributions = [
        Distribution::Uniform,
        Distribution::lognormal_default(),
        Distribution::Fal { shape: 0.5 },
        Distribution::Fal { shape: 1.05 },
        Distribution::Fal { shape: 1.25 },
        Distribution::Fal { shape: 1.5 },
    ];

    println!(
        "\n{:>11} {:>10} | {:>10} {:>10} {:>8} {:>8}",
        "distrib.", "input", "spill(h)", "spill(b)", "reduct.", "speedup"
    );
    for dist in distributions {
        for &input in &inputs {
            let w =
                Workload::uniform(input, 0xF3).with_distribution(dist).with_payload_bytes(payload);
            let spec = SortSpec::ascending(k);
            let config = figure_config(mem_rows, payload, 50);
            let hist =
                run_topk(Algorithm::Histogram, &w, spec, config.clone(), backend).expect("hist");
            let base = run_topk(Algorithm::Optimized, &w, spec, config, backend).expect("base");
            assert_eq!(hist.checksum, base.checksum, "{} n={input}", dist.label());
            report.push_outcomes(
                &[
                    ("distribution", JsonValue::from(dist.label())),
                    ("input_rows", JsonValue::from(input)),
                ],
                &[("histogram", &hist), ("optimized", &base)],
            );
            println!(
                "{:>11} {:>10} | {:>10} {:>10} {:>7.1}x {:>7.1}x",
                dist.label(),
                fmt_count(input),
                fmt_count(hist.metrics.rows_spilled()),
                fmt_count(base.metrics.rows_spilled()),
                base.metrics.rows_spilled() as f64 / hist.metrics.rows_spilled().max(1) as f64,
                base.total_time().as_secs_f64() / hist.total_time().as_secs_f64(),
            );
        }
    }
    println!("\npaper shape: small benefit near input ≈ k, rising with input size to ~11x;");
    println!("curves for all six distributions nearly identical.");
    report.write();
}
