//! Regenerates **Table 5** (§3.2.2): varying the input size with minimal
//! histograms — one bucket per run, bounded by the run's median key
//! (k = 5,000, memory 1,000 rows).

use histok_analysis::table5;
use histok_bench::{banner, fmt_count, MetricsReport};
use histok_types::JsonValue;

/// Paper values: (input, runs, rows).
const PAPER: [(u64, u64, u64); 15] = [
    (6_000, 6, 6_000),
    (7_000, 7, 7_000),
    (10_000, 10, 9_500),
    (20_000, 15, 14_500),
    (50_000, 25, 24_000),
    (100_000, 34, 32_250),
    (200_000, 44, 41_125),
    (500_000, 56, 53_437),
    (1_000_000, 66, 62_781),
    (2_000_000, 76, 72_203),
    (5_000_000, 90, 85_499),
    (10_000_000, 100, 94_999),
    (20_000_000, 110, 104_500),
    (50_000_000, 123, 116_209),
    (100_000_000, 133, 125_708),
];

fn main() {
    banner(
        "Table 5 — varying input size, minimal histograms (idealized model)",
        "k = 5,000, memory 1,000 rows, 1 bucket per run (the median key)",
    );
    println!(
        "{:>12} | {:>5} {:>8} {:>10} {:>10} {:>6} | {:>5} {:>8} (paper)",
        "Input size", "Runs", "Rows", "Cutoff", "Ideal", "Ratio", "Runs", "Rows"
    );
    for (row, (input, p_runs, p_rows)) in table5().iter().zip(PAPER) {
        assert_eq!(row.input, input);
        let r = &row.result;
        println!(
            "{:>12} | {:>5} {:>8} {:>10} {:>10} {:>6} | {:>5} {:>8}",
            fmt_count(row.input),
            r.runs,
            fmt_count(r.rows_spilled),
            r.final_cutoff.map(|c| format!("{c:.6}")).unwrap_or_else(|| "-".into()),
            format!("{:.6}", r.ideal_cutoff),
            r.ratio.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            p_runs,
            fmt_count(p_rows),
        );
    }
    println!();
    let rows = table5();
    let largest = &rows.last().unwrap().result;
    println!(
        "largest input spills {:.3}% of its rows (paper: 1/8 % = 0.125%)",
        largest.rows_spilled as f64 / 1e8 * 100.0
    );

    let mut report = MetricsReport::new("table5");
    report.param("k", 5_000u64).param("mem_rows", 1_000u64).param("buckets_per_run", 1u64);
    let opt_f64 = |v: Option<f64>| v.map(JsonValue::from).unwrap_or(JsonValue::Null);
    for row in rows {
        report.push_row(JsonValue::obj([
            ("input_rows", JsonValue::from(row.input)),
            ("runs", JsonValue::from(row.result.runs)),
            ("rows_spilled", JsonValue::from(row.result.rows_spilled)),
            ("final_cutoff", opt_f64(row.result.final_cutoff)),
            ("ideal_cutoff", JsonValue::from(row.result.ideal_cutoff)),
            ("ratio", opt_f64(row.result.ratio)),
        ]));
    }
    report.write();
}
