//! Regenerates **Table 4** (§3.2.2): varying the input size from 6,000 to
//! 100,000,000 rows (k = 5,000, memory 1,000 rows, 10 buckets per run).

use histok_analysis::table4;
use histok_bench::{banner, fmt_count, MetricsReport};
use histok_types::JsonValue;

/// Paper values: (input, runs, rows).
const PAPER: [(u64, u64, u64); 15] = [
    (6_000, 6, 5_900),
    (7_000, 7, 6_699),
    (10_000, 9, 8_332),
    (20_000, 13, 11_840),
    (50_000, 19, 16_690),
    (100_000, 24, 20_627),
    (200_000, 28, 24_638),
    (500_000, 35, 30_008),
    (1_000_000, 39, 34_077),
    (2_000_000, 44, 38_188),
    (5_000_000, 50, 43_565),
    (10_000_000, 55, 47_683),
    (20_000_000, 60, 51_735),
    (50_000_000, 66, 57_182),
    (100_000_000, 71, 61_235),
];

fn main() {
    banner(
        "Table 4 — varying input size (idealized model)",
        "k = 5,000, memory 1,000 rows, 10 buckets per run",
    );
    println!(
        "{:>12} | {:>5} {:>8} {:>10} {:>10} {:>6} | {:>5} {:>8} (paper)",
        "Input size", "Runs", "Rows", "Cutoff", "Ideal", "Ratio", "Runs", "Rows"
    );
    for (row, (input, p_runs, p_rows)) in table4().iter().zip(PAPER) {
        assert_eq!(row.input, input);
        let r = &row.result;
        println!(
            "{:>12} | {:>5} {:>8} {:>10} {:>10} {:>6} | {:>5} {:>8}",
            fmt_count(row.input),
            r.runs,
            fmt_count(r.rows_spilled),
            r.final_cutoff.map(|c| format!("{c:.6}")).unwrap_or_else(|| "-".into()),
            format!("{:.6}", r.ideal_cutoff),
            r.ratio.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            p_runs,
            fmt_count(p_rows),
        );
    }

    let mut report = MetricsReport::new("table4");
    report.param("k", 5_000u64).param("mem_rows", 1_000u64).param("buckets_per_run", 10u64);
    let opt_f64 = |v: Option<f64>| v.map(JsonValue::from).unwrap_or(JsonValue::Null);
    for row in table4() {
        report.push_row(JsonValue::obj([
            ("input_rows", JsonValue::from(row.input)),
            ("runs", JsonValue::from(row.result.runs)),
            ("rows_spilled", JsonValue::from(row.result.rows_spilled)),
            ("final_cutoff", opt_f64(row.result.final_cutoff)),
            ("ideal_cutoff", JsonValue::from(row.result.ideal_cutoff)),
            ("ratio", opt_f64(row.result.ratio)),
        ]));
    }
    report.write();
}
