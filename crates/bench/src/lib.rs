//! # histok-bench
//!
//! The experiment harness. One binary per paper table/figure regenerates
//! the corresponding rows/series (see `DESIGN.md` §4 for the index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1`…`table5` | the §3.2 analysis tables |
//! | `fig2` | §5.2 varying output size (speedup + spill reduction) |
//! | `fig3` | §5.3 varying input size, six key distributions |
//! | `fig4` | §5.4 histogram sizes 1/5/50 over the input sweep |
//! | `fig5` | §5.4 histogram-size sweep |
//! | `fig6` | §5.6 memory-cost vs the in-memory top-k |
//! | `overhead` | §5.5 adversarial filter overhead |
//!
//! Experiments are scaled ~500× down from the paper's testbed with the
//! input : memory : k *ratios* preserved (see `DESIGN.md` §5). Environment
//! variables adjust the scale:
//!
//! * `HISTOK_INPUT_ROWS` — base input size (figures default to 4,000,000);
//! * `HISTOK_PAYLOAD` — payload bytes per row (default 0 = key-only);
//! * `HISTOK_BACKEND` — `throttled` (default: memory objects plus the
//!   disaggregated-storage cost model), `memory`, or `file`.

#![deny(missing_docs)]

pub mod report;

pub use report::{metrics_to_json, outcome_to_json, MetricsReport};

use std::time::Duration;

use histok_core::{OperatorMetrics, SizingPolicy, TopKConfig};
use histok_exec::query::Algorithm;
use histok_exec::Query;
use histok_storage::{FileBackend, MemoryBackend, ThrottleModel, ThrottledBackend};
use histok_types::{Result, SortSpec};
use histok_workload::Workload;

/// Where experiment spills go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// In-memory objects: measures pure CPU + row volumes.
    Memory,
    /// Real buffered files in a temp directory.
    File,
    /// In-memory objects with the disaggregated-storage cost model; the
    /// modelled I/O time is added to the reported time. The figures'
    /// default: the paper's environment is I/O-bound (speedup and spill
    /// reduction are "perfectly correlated", §5).
    #[default]
    Throttled,
}

impl BackendKind {
    /// Parses `HISTOK_BACKEND` (`memory` / `file` / `throttled`).
    pub fn from_env() -> Self {
        match std::env::var("HISTOK_BACKEND").as_deref() {
            Ok("file") => BackendKind::File,
            Ok("memory") => BackendKind::Memory,
            _ => BackendKind::Throttled,
        }
    }
}

/// Outcome of one algorithm execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm name as reported by the operator.
    pub algorithm: &'static str,
    /// Operator metrics (I/O, eliminations, memory).
    pub metrics: OperatorMetrics,
    /// Wall-clock time of the execution.
    pub wall: Duration,
    /// Modelled I/O time (only nonzero for [`BackendKind::Throttled`]).
    pub modelled_io: Duration,
    /// Number of output rows.
    pub output_rows: u64,
    /// Order-insensitive fingerprint of the output keys, used to verify
    /// that two algorithms produced the same answer.
    pub checksum: u64,
}

impl RunOutcome {
    /// Wall time plus modelled I/O — the figure of merit in the
    /// disaggregated-storage model.
    pub fn total_time(&self) -> Duration {
        self.wall + self.modelled_io
    }
}

/// Runs `algorithm` over `workload` with the given clause and config.
pub fn run_topk(
    algorithm: Algorithm,
    workload: &Workload,
    spec: SortSpec,
    config: TopKConfig,
    backend: BackendKind,
) -> Result<RunOutcome> {
    let query = Query::scan(workload.rows(), spec).config(config).algorithm(algorithm);
    let (result, modelled_io) = match backend {
        BackendKind::Memory => (query.execute(MemoryBackend::new())?, Duration::ZERO),
        BackendKind::File => (query.execute(FileBackend::temp()?)?, Duration::ZERO),
        BackendKind::Throttled => {
            let be = ThrottledBackend::new(MemoryBackend::new(), ThrottleModel::disaggregated());
            let handle = be.clone();
            let result = query.execute(be)?;
            (result, handle.virtual_io_time())
        }
    };
    let checksum = result
        .rows
        .iter()
        .fold(0u64, |acc, row| acc.wrapping_add(row.key.get().to_bits().rotate_left(7)));
    Ok(RunOutcome {
        algorithm: result.algorithm,
        metrics: result.metrics,
        wall: result.elapsed,
        modelled_io,
        output_rows: result.rows.len() as u64,
        checksum,
    })
}

/// The standard experiment configuration for a memory budget of
/// `mem_rows` key-only rows (the figures' scaled stand-in for the paper's
/// "1 GB ≈ 7 million rows").
pub fn figure_config(mem_rows: u64, payload_bytes: usize, buckets: u32) -> TopKConfig {
    // Estimated charge per buffered row (key-only rows are ~56 bytes with
    // bookkeeping; payload adds its length).
    let row_bytes = 56 + payload_bytes;
    let sizing =
        if buckets == 0 { SizingPolicy::Disabled } else { SizingPolicy::TargetBuckets(buckets) };
    TopKConfig::builder()
        .memory_budget(mem_rows as usize * row_bytes)
        .sizing(sizing)
        .build()
        .expect("static config is valid")
}

/// Reads a `u64` experiment parameter from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a `usize` experiment parameter from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Formats a `Duration` in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Formats a row count with thousands separators, paper-style.
pub fn fmt_count(n: u64) -> String {
    let digits: Vec<u8> = n.to_string().into_bytes();
    let mut out = String::new();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*d as char);
    }
    out
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, detail: &str) {
    println!("================================================================");
    println!("{title}");
    println!("{detail}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_groups_thousands() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
    }

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
    }

    #[test]
    fn run_topk_smoke_all_backends() {
        let w = Workload::uniform(5_000, 1);
        let spec = SortSpec::ascending(200);
        let config = figure_config(50, 0, 50);
        let mem =
            run_topk(Algorithm::Histogram, &w, spec, config.clone(), BackendKind::Memory).unwrap();
        let file =
            run_topk(Algorithm::Histogram, &w, spec, config.clone(), BackendKind::File).unwrap();
        let throttled =
            run_topk(Algorithm::Histogram, &w, spec, config, BackendKind::Throttled).unwrap();
        assert_eq!(mem.output_rows, 200);
        assert_eq!(mem.checksum, file.checksum);
        assert_eq!(mem.checksum, throttled.checksum);
        assert!(throttled.modelled_io > Duration::ZERO);
        assert_eq!(mem.modelled_io, Duration::ZERO);
    }

    #[test]
    fn algorithms_agree_via_checksum() {
        let w = Workload::uniform(20_000, 2);
        let spec = SortSpec::ascending(400);
        let config = figure_config(100, 0, 50);
        let mut sums = Vec::new();
        for algo in [
            Algorithm::Histogram,
            Algorithm::InMemory,
            Algorithm::Traditional,
            Algorithm::Optimized,
        ] {
            let out = run_topk(algo, &w, spec, config.clone(), BackendKind::Memory).unwrap();
            assert_eq!(out.output_rows, 400, "{algo:?}");
            sums.push(out.checksum);
        }
        assert!(sums.windows(2).all(|p| p[0] == p[1]), "algorithms disagree: {sums:?}");
    }
}
