//! Machine-readable JSON reports for the experiment binaries.
//!
//! Every `fig*`/`table*` binary (and `all_experiments`) writes a
//! `results/<name>.json` next to its human-readable text output, so plots
//! and regression dashboards can consume the numbers without scraping
//! stdout. The format is hand-rolled on [`JsonValue`] — the build
//! environment has no serde — and the serializer is round-trip tested
//! against [`JsonValue::parse`].
//!
//! Schema (see `docs/METRICS.md` for the field-by-field reference):
//!
//! ```json
//! {
//!   "experiment": "fig2",
//!   "params": { "input_rows": 4000000, ... },
//!   "rows": [ { "k": 7000, ..., "outcomes": { "histogram": {...} } } ]
//! }
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use histok_core::OperatorMetrics;
use histok_storage::IoStatsSnapshot;
use histok_types::{JsonValue, LatencySnapshot, PhaseTotals};

use crate::RunOutcome;

/// Accumulates one experiment's parameters and per-configuration rows,
/// then serializes them to `results/<experiment>.json`.
pub struct MetricsReport {
    experiment: String,
    params: Vec<(String, JsonValue)>,
    rows: Vec<JsonValue>,
}

impl MetricsReport {
    /// Starts an empty report for `experiment` (also the output file stem).
    pub fn new(experiment: &str) -> Self {
        MetricsReport { experiment: experiment.to_owned(), params: Vec::new(), rows: Vec::new() }
    }

    /// Records a top-level experiment parameter (input size, memory
    /// budget, backend, ...).
    pub fn param(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        self.params.push((key.to_owned(), value.into()));
        self
    }

    /// Appends one data row: the sweep coordinates for this configuration
    /// plus a named [`RunOutcome`] per algorithm that ran at it.
    pub fn push_outcomes(
        &mut self,
        coords: &[(&str, JsonValue)],
        outcomes: &[(&str, &RunOutcome)],
    ) {
        let mut pairs: Vec<(String, JsonValue)> =
            coords.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect();
        pairs.push((
            "outcomes".to_owned(),
            JsonValue::Obj(
                outcomes.iter().map(|(name, o)| ((*name).to_owned(), outcome_to_json(o))).collect(),
            ),
        ));
        self.rows.push(JsonValue::Obj(pairs));
    }

    /// Appends an arbitrary pre-built row (used by the idealized-model
    /// tables, which have no `RunOutcome`).
    pub fn push_row(&mut self, row: JsonValue) {
        self.rows.push(row);
    }

    /// The report as a single JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("experiment".to_owned(), JsonValue::from(self.experiment.as_str())),
            ("params".to_owned(), JsonValue::Obj(self.params.clone())),
            ("rows".to_owned(), JsonValue::Arr(self.rows.clone())),
        ])
    }

    /// Writes the report to `dir/<experiment>.json`, creating `dir` if
    /// needed, and returns the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        fs::write(&path, self.to_json().to_json_pretty(2))?;
        Ok(path)
    }

    /// Writes to `$HISTOK_RESULTS_DIR` (default `results/`), prints the
    /// destination, and never fails the experiment over a report error.
    pub fn write(&self) {
        let dir = std::env::var("HISTOK_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        match self.write_to(Path::new(&dir)) {
            Ok(path) => println!("\nmachine-readable report: {}", path.display()),
            Err(e) => eprintln!("\ncannot write JSON report to {dir}: {e}"),
        }
    }
}

/// Serializes one run: wall/modelled time, output checksum, and the full
/// operator metrics including per-phase timings and I/O latency quantiles.
pub fn outcome_to_json(o: &RunOutcome) -> JsonValue {
    JsonValue::Obj(vec![
        ("algorithm".to_owned(), JsonValue::from(o.algorithm)),
        ("wall_ns".to_owned(), JsonValue::from(o.wall.as_nanos().min(u128::from(u64::MAX)) as u64)),
        (
            "modelled_io_ns".to_owned(),
            JsonValue::from(o.modelled_io.as_nanos().min(u128::from(u64::MAX)) as u64),
        ),
        (
            "total_ns".to_owned(),
            JsonValue::from(o.total_time().as_nanos().min(u128::from(u64::MAX)) as u64),
        ),
        ("output_rows".to_owned(), JsonValue::from(o.output_rows)),
        // Hex string: checksums are opaque 64-bit tags, and a string field
        // sidesteps JSON consumers that mangle integers above 2^53.
        ("checksum".to_owned(), JsonValue::from(format!("{:016x}", o.checksum))),
        ("metrics".to_owned(), metrics_to_json(&o.metrics)),
    ])
}

/// Serializes [`OperatorMetrics`] with nested `io` and `phases` objects.
pub fn metrics_to_json(m: &OperatorMetrics) -> JsonValue {
    JsonValue::Obj(vec![
        ("rows_in".to_owned(), JsonValue::from(m.rows_in)),
        ("queued_ns".to_owned(), JsonValue::from(m.queued_ns)),
        ("eliminated_at_input".to_owned(), JsonValue::from(m.eliminated_at_input)),
        ("eliminated_at_spill".to_owned(), JsonValue::from(m.eliminated_at_spill)),
        ("rows_spilled".to_owned(), JsonValue::from(m.rows_spilled())),
        ("runs".to_owned(), JsonValue::from(m.runs())),
        ("spill_fraction".to_owned(), JsonValue::from(m.spill_fraction())),
        ("spilled".to_owned(), JsonValue::from(m.spilled)),
        ("peak_memory_bytes".to_owned(), JsonValue::from(m.peak_memory_bytes)),
        ("early_merges".to_owned(), JsonValue::from(m.early_merges)),
        ("merge_partitions".to_owned(), JsonValue::from(m.merge_partitions)),
        (
            "partition_rows".to_owned(),
            JsonValue::Arr(m.partition_rows.iter().map(|&r| JsonValue::from(r)).collect()),
        ),
        ("partition_skew".to_owned(), JsonValue::from(m.partition_skew())),
        (
            "cascade".to_owned(),
            JsonValue::Obj(vec![
                ("merge_passes".to_owned(), JsonValue::from(m.cascade.merge_passes)),
                ("intermediate_merges".to_owned(), JsonValue::from(m.cascade.intermediate_merges)),
                ("runs_pruned".to_owned(), JsonValue::from(m.cascade.runs_pruned)),
                ("cascade_wait_ns".to_owned(), JsonValue::from(m.cascade.cascade_wait_ns)),
            ]),
        ),
        (
            "cmp".to_owned(),
            JsonValue::Obj(vec![
                ("ovc_cmps".to_owned(), JsonValue::from(m.cmp.ovc_cmps)),
                ("full_cmps".to_owned(), JsonValue::from(m.cmp.full_cmps)),
                ("total".to_owned(), JsonValue::from(m.cmp.total())),
                ("merge_batches".to_owned(), JsonValue::from(m.cmp.merge_batches)),
            ]),
        ),
        (
            "filter".to_owned(),
            JsonValue::Obj(vec![
                ("buckets_inserted".to_owned(), JsonValue::from(m.filter.buckets_inserted)),
                ("buckets_popped".to_owned(), JsonValue::from(m.filter.buckets_popped)),
                ("refinements".to_owned(), JsonValue::from(m.filter.refinements)),
                ("consolidations".to_owned(), JsonValue::from(m.filter.consolidations)),
            ]),
        ),
        ("io".to_owned(), io_to_json(&m.io)),
        ("phases".to_owned(), phases_to_json(&m.phases)),
    ])
}

/// Serializes the storage counters plus both latency histograms.
pub fn io_to_json(io: &IoStatsSnapshot) -> JsonValue {
    JsonValue::Obj(vec![
        ("runs_created".to_owned(), JsonValue::from(io.runs_created)),
        ("rows_written".to_owned(), JsonValue::from(io.rows_written)),
        ("bytes_written".to_owned(), JsonValue::from(io.bytes_written)),
        ("rows_read".to_owned(), JsonValue::from(io.rows_read)),
        ("bytes_read".to_owned(), JsonValue::from(io.bytes_read)),
        ("write_ops".to_owned(), JsonValue::from(io.write_ops)),
        ("read_ops".to_owned(), JsonValue::from(io.read_ops)),
        ("modelled_io_ns".to_owned(), JsonValue::from(io.modelled_io_ns)),
        ("io_wait_ns".to_owned(), JsonValue::from(io.io_wait_ns)),
        ("overlapped_io_ns".to_owned(), JsonValue::from(io.overlapped_io_ns)),
        ("blocks_skipped".to_owned(), JsonValue::from(io.blocks_skipped)),
        ("bytes_skipped".to_owned(), JsonValue::from(io.bytes_skipped)),
        ("write_latency".to_owned(), latency_to_json(&io.write_latency)),
        ("read_latency".to_owned(), latency_to_json(&io.read_latency)),
    ])
}

/// Serializes a latency histogram as count/total/mean plus p50/p95/max.
pub fn latency_to_json(l: &LatencySnapshot) -> JsonValue {
    let mean = if l.count == 0 { 0.0 } else { l.total_ns as f64 / l.count as f64 };
    JsonValue::Obj(vec![
        ("count".to_owned(), JsonValue::from(l.count)),
        ("total_ns".to_owned(), JsonValue::from(l.total_ns)),
        ("mean_ns".to_owned(), JsonValue::from(mean)),
        ("p50_ns".to_owned(), JsonValue::from(l.quantile_ns(0.50))),
        ("p95_ns".to_owned(), JsonValue::from(l.quantile_ns(0.95))),
        ("max_ns".to_owned(), JsonValue::from(l.max_ns)),
    ])
}

/// Serializes the per-phase wall-clock breakdown.
pub fn phases_to_json(p: &PhaseTotals) -> JsonValue {
    JsonValue::Obj(vec![
        ("in_memory_ns".to_owned(), JsonValue::from(p.in_memory_ns)),
        ("run_generation_ns".to_owned(), JsonValue::from(p.run_generation_ns)),
        ("spill_write_ns".to_owned(), JsonValue::from(p.spill_write_ns)),
        ("final_merge_ns".to_owned(), JsonValue::from(p.final_merge_ns)),
        ("total_ns".to_owned(), JsonValue::from(p.total_ns())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{figure_config, run_topk, BackendKind};
    use histok_exec::Algorithm;
    use histok_types::SortSpec;
    use histok_workload::Workload;

    fn sample_outcome() -> RunOutcome {
        let w = Workload::uniform(40_000, 0xA11CE);
        run_topk(
            Algorithm::Histogram,
            &w,
            SortSpec::ascending(2_000),
            figure_config(1_000, 0, 10),
            BackendKind::Throttled,
        )
        .expect("sample run")
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let outcome = sample_outcome();
        let mut report = MetricsReport::new("unit");
        report.param("input_rows", 40_000u64).param("backend", "throttled");
        report.push_outcomes(&[("k", JsonValue::from(2_000u64))], &[("histogram", &outcome)]);
        let json = report.to_json();
        for text in [json.to_json(), json.to_json_pretty(2)] {
            let back = JsonValue::parse(&text).expect("report parses");
            assert_eq!(back, json, "round trip changed the document");
        }
    }

    #[test]
    fn outcome_json_carries_phases_latency_and_bytes() {
        let outcome = sample_outcome();
        let json = outcome_to_json(&outcome);
        let metrics = json.get("metrics").expect("metrics object");
        let io = metrics.get("io").expect("io object");
        assert!(io.get("bytes_written").and_then(JsonValue::as_u64).unwrap() > 0);
        assert!(io.get("modelled_io_ns").and_then(JsonValue::as_u64).unwrap() > 0);
        let wl = io.get("write_latency").expect("write latency");
        assert!(wl.get("count").and_then(JsonValue::as_u64).unwrap() > 0);
        for q in ["p50_ns", "p95_ns", "max_ns"] {
            assert!(wl.get(q).and_then(JsonValue::as_u64).is_some(), "missing {q}");
        }
        let phases = metrics.get("phases").expect("phases object");
        assert!(phases.get("run_generation_ns").and_then(JsonValue::as_u64).unwrap() > 0);
        let cmp = metrics.get("cmp").expect("cmp object");
        let ovc = cmp.get("ovc_cmps").and_then(JsonValue::as_u64).unwrap();
        let full = cmp.get("full_cmps").and_then(JsonValue::as_u64).unwrap();
        assert!(ovc > 0, "a spilling run must resolve duels on codes");
        assert_eq!(cmp.get("total").and_then(JsonValue::as_u64), Some(ovc + full));
        assert!(
            cmp.get("merge_batches").and_then(JsonValue::as_u64).unwrap() > 0,
            "a spilling run must drain its final merge in batches"
        );
        assert_eq!(
            phases.get("spill_write_ns").and_then(JsonValue::as_u64),
            io.get("write_latency").and_then(|l| l.get("total_ns")).and_then(JsonValue::as_u64),
        );
        assert_eq!(
            json.get("modelled_io_ns").and_then(JsonValue::as_u64),
            io.get("modelled_io_ns").and_then(JsonValue::as_u64),
        );
    }

    #[test]
    fn write_to_emits_a_parseable_file() {
        let outcome = sample_outcome();
        let mut report = MetricsReport::new("write-test");
        report.push_outcomes(&[], &[("histogram", &outcome)]);
        let dir = std::env::temp_dir().join(format!("histok-report-{}", std::process::id()));
        let path = report.write_to(&dir).expect("write report");
        let text = fs::read_to_string(&path).expect("read back");
        let parsed = JsonValue::parse(&text).expect("file parses");
        assert_eq!(parsed.get("experiment").and_then(JsonValue::as_str), Some("write-test"));
        assert_eq!(parsed, report.to_json());
        fs::remove_dir_all(&dir).ok();
    }
}
