//! # histok-workload
//!
//! Seeded, reproducible dataset generators matching the paper's evaluation
//! (§5.1.4):
//!
//! * **uniform** — shuffled distinct keys, like the `L_ORDERKEY` column of
//!   an unsorted TPC-H `lineitem` table;
//! * **fal** — the Faloutsos/Jagadish skewed-value generator
//!   `value(r) = N / r^z` for rank `r`, with shape `z` from near-uniform
//!   (0.5) to hyperbolic (1.5), each rank appearing exactly once, in
//!   random arrival order;
//! * **lognormal** — i.i.d. samples from Lognormal(μ = 0, σ = 2), sampled
//!   with a local Box–Muller transform (the approved crate set has no
//!   `rand_distr`);
//! * **adversarial** — strictly improving keys: the §5.5 worst case where
//!   the cutoff filter sharpens constantly yet never eliminates a row.
//!
//! Payloads are TPC-H `lineitem`-shaped ([`lineitem`]), so rows have the
//! realistic "sort key plus wide payload" profile of the paper's query
//! (`SELECT * FROM lineitem ORDER BY l_orderkey LIMIT k`).

#![deny(missing_docs)]

pub mod distribution;
pub mod lineitem;
pub mod workload;

pub use distribution::Distribution;
pub use lineitem::{Lineitem, LINEITEM_PAYLOAD_BYTES};
pub use workload::{KeyStream, Workload};
