//! TPC-H `lineitem`-shaped payloads.
//!
//! The paper's experiments use "the schema of the *Lineitem* table from the
//! TPC-H benchmark, we sort on the `L_ORDERKEY` column, the remaining
//! columns serve as a payload" (§5.1.1). This module synthesizes those
//! remaining columns so generated rows carry a realistic, wide payload.

use rand::rngs::StdRng;
use rand::Rng;

/// Encoded size of one [`Lineitem`] payload in bytes (fixed-width fields
/// plus the 27-byte comment).
pub const LINEITEM_PAYLOAD_BYTES: usize = 4 + 4 + 1 + 8 + 8 + 8 + 8 + 1 + 1 + 4 + 4 + 4 + 27;

/// The non-key columns of one lineitem row.
#[derive(Debug, Clone, PartialEq)]
pub struct Lineitem {
    /// `L_PARTKEY`.
    pub partkey: u32,
    /// `L_SUPPKEY`.
    pub suppkey: u32,
    /// `L_LINENUMBER` (1–7).
    pub linenumber: u8,
    /// `L_QUANTITY` (1–50).
    pub quantity: f64,
    /// `L_EXTENDEDPRICE`.
    pub extendedprice: f64,
    /// `L_DISCOUNT` (0.00–0.10).
    pub discount: f64,
    /// `L_TAX` (0.00–0.08).
    pub tax: f64,
    /// `L_RETURNFLAG` (`R`, `A` or `N`).
    pub returnflag: u8,
    /// `L_LINESTATUS` (`O` or `F`).
    pub linestatus: u8,
    /// `L_SHIPDATE` as days since epoch.
    pub shipdate: u32,
    /// `L_COMMITDATE` as days since epoch.
    pub commitdate: u32,
    /// `L_RECEIPTDATE` as days since epoch.
    pub receiptdate: u32,
    /// `L_COMMENT`, fixed 27 ASCII bytes.
    pub comment: [u8; 27],
}

impl Lineitem {
    /// Generates a plausible lineitem for `orderkey`.
    pub fn generate(rng: &mut StdRng, orderkey: u64) -> Self {
        let quantity = f64::from(rng.gen_range(1u32..=50));
        let price_per_unit = f64::from(rng.gen_range(90_000u32..=200_000)) / 100.0;
        let shipdate = rng.gen_range(8_766u32..=10_957); // 1994-01-01 .. 1999-12-31
        let mut comment = [b' '; 27];
        const WORDS: &[&str] = &["quick", "final", "pending", "bold", "ironic", "express"];
        let text = format!(
            "{} deposits {} #{}",
            WORDS[rng.gen_range(0..WORDS.len())],
            WORDS[rng.gen_range(0..WORDS.len())],
            orderkey % 1000
        );
        let n = text.len().min(27);
        comment[..n].copy_from_slice(&text.as_bytes()[..n]);
        Lineitem {
            partkey: rng.gen_range(1..=200_000),
            suppkey: rng.gen_range(1..=10_000),
            linenumber: rng.gen_range(1..=7),
            quantity,
            extendedprice: quantity * price_per_unit,
            discount: f64::from(rng.gen_range(0u32..=10)) / 100.0,
            tax: f64::from(rng.gen_range(0u32..=8)) / 100.0,
            returnflag: *[b'R', b'A', b'N'].get(rng.gen_range(0..3)).expect("index < 3"),
            linestatus: if rng.gen_bool(0.5) { b'O' } else { b'F' },
            shipdate,
            commitdate: shipdate + rng.gen_range(1..=60),
            receiptdate: shipdate + rng.gen_range(1..=30),
            comment,
        }
    }

    /// Serializes the payload (fixed width, [`LINEITEM_PAYLOAD_BYTES`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(LINEITEM_PAYLOAD_BYTES);
        buf.extend_from_slice(&self.partkey.to_le_bytes());
        buf.extend_from_slice(&self.suppkey.to_le_bytes());
        buf.push(self.linenumber);
        buf.extend_from_slice(&self.quantity.to_le_bytes());
        buf.extend_from_slice(&self.extendedprice.to_le_bytes());
        buf.extend_from_slice(&self.discount.to_le_bytes());
        buf.extend_from_slice(&self.tax.to_le_bytes());
        buf.push(self.returnflag);
        buf.push(self.linestatus);
        buf.extend_from_slice(&self.shipdate.to_le_bytes());
        buf.extend_from_slice(&self.commitdate.to_le_bytes());
        buf.extend_from_slice(&self.receiptdate.to_le_bytes());
        buf.extend_from_slice(&self.comment);
        debug_assert_eq!(buf.len(), LINEITEM_PAYLOAD_BYTES);
        buf
    }

    /// Decodes a payload produced by [`Lineitem::encode`].
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < LINEITEM_PAYLOAD_BYTES {
            return None;
        }
        let u32_at = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().ok().unwrap());
        let f64_at = |i: usize| f64::from_le_bytes(buf[i..i + 8].try_into().ok().unwrap());
        let mut comment = [0u8; 27];
        comment.copy_from_slice(&buf[55..82]);
        Some(Lineitem {
            partkey: u32_at(0),
            suppkey: u32_at(4),
            linenumber: buf[8],
            quantity: f64_at(9),
            extendedprice: f64_at(17),
            discount: f64_at(25),
            tax: f64_at(33),
            returnflag: buf[41],
            linestatus: buf[42],
            shipdate: u32_at(43),
            commitdate: u32_at(47),
            receiptdate: u32_at(51),
            comment,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for orderkey in 0..100u64 {
            let item = Lineitem::generate(&mut rng, orderkey);
            let buf = item.encode();
            assert_eq!(buf.len(), LINEITEM_PAYLOAD_BYTES);
            let back = Lineitem::decode(&buf).unwrap();
            assert_eq!(back, item);
        }
    }

    #[test]
    fn fields_within_tpch_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        for orderkey in 0..1_000u64 {
            let item = Lineitem::generate(&mut rng, orderkey);
            assert!((1..=7).contains(&item.linenumber));
            assert!((1.0..=50.0).contains(&item.quantity));
            assert!((0.0..=0.10).contains(&item.discount));
            assert!((0.0..=0.08).contains(&item.tax));
            assert!(matches!(item.returnflag, b'R' | b'A' | b'N'));
            assert!(matches!(item.linestatus, b'O' | b'F'));
            assert!(item.commitdate > item.shipdate);
            assert!(item.receiptdate > item.shipdate);
            assert!(item.extendedprice >= item.quantity * 900.0);
        }
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert!(Lineitem::decode(&[0u8; 10]).is_none());
    }
}
