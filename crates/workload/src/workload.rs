//! Row-stream generation: a [`Workload`] describes a dataset, and
//! [`Workload::rows`] streams it deterministically from the seed.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use histok_types::{F64Key, Row};

use crate::distribution::{standard_normal, Distribution};
use crate::lineitem::Lineitem;

/// A reproducible dataset description.
///
/// ```
/// use histok_workload::{Distribution, Workload};
///
/// let w = Workload::uniform(1_000, 42)
///     .with_distribution(Distribution::Fal { shape: 1.25 })
///     .with_payload_bytes(32);
/// let rows: Vec<_> = w.rows().collect();
/// assert_eq!(rows.len(), 1_000);
/// assert_eq!(rows[0].payload.len(), 32);
/// // Same seed, same data:
/// assert_eq!(w.keys().next(), w.keys().next());
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of rows.
    pub rows: u64,
    /// Sort-key distribution.
    pub distribution: Distribution,
    /// Payload bytes per row (0 = key-only rows; otherwise a
    /// `lineitem`-shaped payload truncated/padded to this size).
    pub payload_bytes: usize,
    /// RNG seed: identical workloads produce identical row streams.
    pub seed: u64,
}

impl Workload {
    /// A uniform workload of `rows` rows with key-only payloads.
    pub fn uniform(rows: u64, seed: u64) -> Self {
        Workload { rows, distribution: Distribution::Uniform, payload_bytes: 0, seed }
    }

    /// Sets the payload size per row.
    pub fn with_payload_bytes(mut self, bytes: usize) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Sets the distribution.
    pub fn with_distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// The stream of sort keys (no payload materialization).
    pub fn keys(&self) -> KeyStream {
        KeyStream::new(self)
    }

    /// The stream of full rows. The iterator owns its state, so it can be
    /// handed to operators and threads (`Send + 'static`).
    pub fn rows(&self) -> impl Iterator<Item = Row<F64Key>> + Send + 'static {
        let payload_bytes = self.payload_bytes;
        let mut payload_rng = StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        self.keys().map(move |key| {
            if payload_bytes == 0 {
                Row::key_only(key)
            } else {
                let item = Lineitem::generate(&mut payload_rng, key.get() as u64);
                let mut payload = item.encode();
                payload.resize(payload_bytes, 0);
                Row::new(key, Bytes::from(payload))
            }
        })
    }

    /// The true top-k keys of this workload in the given order — the
    /// oracle the tests compare operator output against. Materializes all
    /// keys; intended for test-sized workloads.
    pub fn expected_top_k(&self, k: usize, ascending: bool) -> Vec<f64> {
        let mut keys: Vec<f64> = self.keys().map(|k| k.get()).collect();
        keys.sort_unstable_by(|a, b| a.total_cmp(b));
        if !ascending {
            keys.reverse();
        }
        keys.truncate(k);
        keys
    }
}

/// Streaming key generator for one [`Workload`].
pub struct KeyStream {
    remaining: u64,
    rows: u64,
    kind: StreamKind,
}

enum StreamKind {
    /// Pre-shuffled distinct values (uniform and fal need a permutation so
    /// each rank appears exactly once in random arrival order).
    Shuffled { values: std::vec::IntoIter<f64> },
    /// I.i.d. lognormal sampling (RNG boxed: `StdRng` is much larger than
    /// the other variants).
    Lognormal { rng: Box<StdRng>, mu: f64, sigma: f64 },
    /// Deterministic strictly improving sequence.
    Adversarial { next: f64, step: f64 },
    /// I.i.d. rank sampling by inverse-CDF binary search over precomputed
    /// cumulative weights (duplicates expected).
    Zipf { rng: Box<StdRng>, cdf: Vec<f64> },
}

impl KeyStream {
    fn new(w: &Workload) -> Self {
        let kind = match w.distribution {
            Distribution::Uniform => {
                let mut rng = StdRng::seed_from_u64(w.seed);
                // Distinct orderkey-style values 1..=N, shuffled; scaled to
                // floats so every distribution shares a key type.
                let mut values: Vec<f64> = (1..=w.rows).map(|i| i as f64).collect();
                values.shuffle(&mut rng);
                StreamKind::Shuffled { values: values.into_iter() }
            }
            Distribution::Fal { shape } => {
                let mut rng = StdRng::seed_from_u64(w.seed);
                let n = w.rows as f64;
                let mut values: Vec<f64> =
                    (1..=w.rows).map(|rank| n / (rank as f64).powf(shape)).collect();
                values.shuffle(&mut rng);
                StreamKind::Shuffled { values: values.into_iter() }
            }
            Distribution::Lognormal { mu, sigma } => {
                StreamKind::Lognormal { rng: Box::new(StdRng::seed_from_u64(w.seed)), mu, sigma }
            }
            Distribution::Adversarial => StreamKind::Adversarial { next: w.rows as f64, step: 1.0 },
            Distribution::Zipf { s, n } => {
                let n = n.max(1);
                let mut acc = 0.0;
                let mut cdf: Vec<f64> = (1..=n)
                    .map(|rank| {
                        acc += (rank as f64).powf(-s);
                        acc
                    })
                    .collect();
                for c in &mut cdf {
                    *c /= acc;
                }
                StreamKind::Zipf { rng: Box::new(StdRng::seed_from_u64(w.seed)), cdf }
            }
            Distribution::NearlySorted { disorder } => {
                let mut rng = StdRng::seed_from_u64(w.seed);
                // Shuffle independent blocks of `disorder` keys: every key
                // stays within `disorder` positions of its sorted place.
                let mut values: Vec<f64> = (1..=w.rows).map(|i| i as f64).collect();
                let d = (disorder as usize).max(1);
                for block in values.chunks_mut(d) {
                    block.shuffle(&mut rng);
                }
                StreamKind::Shuffled { values: values.into_iter() }
            }
        };
        KeyStream { remaining: w.rows, rows: w.rows, kind }
    }

    /// Total rows this stream will yield.
    pub fn len(&self) -> u64 {
        self.rows
    }

    /// True for an empty workload.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }
}

impl Iterator for KeyStream {
    type Item = F64Key;

    fn next(&mut self) -> Option<F64Key> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let key = match &mut self.kind {
            StreamKind::Shuffled { values } => values.next().expect("sized to rows"),
            StreamKind::Lognormal { rng, mu, sigma } => (*mu + *sigma * standard_normal(rng)).exp(),
            StreamKind::Adversarial { next, step } => {
                let k = *next;
                *next -= *step;
                k
            }
            StreamKind::Zipf { rng, cdf } => {
                let u: f64 = rng.gen();
                let rank = cdf.partition_point(|&c| c < u).min(cdf.len() - 1) + 1;
                rank as f64
            }
        };
        Some(F64Key(key))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        for d in [
            Distribution::Uniform,
            Distribution::Fal { shape: 1.25 },
            Distribution::lognormal_default(),
            Distribution::Adversarial,
            Distribution::Zipf { s: 1.2, n: 100 },
        ] {
            let w = Workload::uniform(1_000, 42).with_distribution(d);
            let a: Vec<f64> = w.keys().map(|k| k.get()).collect();
            let b: Vec<f64> = w.keys().map(|k| k.get()).collect();
            assert_eq!(a, b, "{}", d.label());
            let w2 = Workload::uniform(1_000, 43).with_distribution(d);
            let c: Vec<f64> = w2.keys().map(|k| k.get()).collect();
            if d != Distribution::Adversarial {
                assert_ne!(a, c, "{} should differ across seeds", d.label());
            }
        }
    }

    #[test]
    fn uniform_is_a_permutation() {
        let w = Workload::uniform(10_000, 1);
        let mut keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
        keys.sort_unstable_by(|a, b| a.total_cmp(b));
        let expected: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn uniform_is_actually_shuffled() {
        let w = Workload::uniform(10_000, 1);
        let keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
        let ascending_prefix = keys.windows(2).take(100).filter(|p| p[0] < p[1]).count();
        assert!(ascending_prefix < 80, "input looks sorted");
    }

    #[test]
    fn fal_values_follow_the_formula() {
        let n = 1_000u64;
        let shape = 1.25;
        let w = Workload::uniform(n, 5).with_distribution(Distribution::Fal { shape });
        let mut keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
        keys.sort_unstable_by(|a, b| b.total_cmp(a)); // descending = rank order
        for (i, &v) in keys.iter().enumerate().take(50) {
            let rank = (i + 1) as f64;
            let expected = n as f64 / rank.powf(shape);
            assert!((v - expected).abs() < 1e-9, "rank {rank}: {v} vs {expected}");
        }
        // Skew sanity: the top value dwarfs the median.
        assert!(keys[0] / keys[n as usize / 2] > 100.0);
    }

    #[test]
    fn fal_shape_controls_skew() {
        let top_ratio = |shape: f64| {
            let w = Workload::uniform(10_000, 5).with_distribution(Distribution::Fal { shape });
            let mut keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
            keys.sort_unstable_by(|a, b| b.total_cmp(a));
            keys[0] / keys[100]
        };
        assert!(top_ratio(1.5) > top_ratio(0.5));
    }

    #[test]
    fn lognormal_median_near_one() {
        let w = Workload::uniform(50_000, 9).with_distribution(Distribution::lognormal_default());
        let mut keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
        keys.sort_unstable_by(|a, b| a.total_cmp(b));
        let median = keys[keys.len() / 2];
        // Median of Lognormal(0, σ) is e^0 = 1.
        assert!((0.9..1.1).contains(&median), "median {median}");
        assert!(keys.iter().all(|&k| k > 0.0));
    }

    #[test]
    fn nearly_sorted_has_bounded_displacement() {
        let d = 10u64;
        let w = Workload::uniform(2_000, 6)
            .with_distribution(Distribution::NearlySorted { disorder: d });
        let keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
        // Permutation of 1..=n...
        let mut sorted = keys.clone();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        assert_eq!(sorted, (1..=2_000).map(|i| i as f64).collect::<Vec<_>>());
        // ...with every key within d of its sorted position.
        for (pos, &k) in keys.iter().enumerate() {
            let displacement = (k - 1.0 - pos as f64).abs();
            assert!(displacement < d as f64, "key {k} at position {pos}");
        }
        // And not fully sorted.
        assert!(keys.windows(2).any(|p| p[0] > p[1]));
    }

    #[test]
    fn adversarial_strictly_improves() {
        let w = Workload::uniform(1_000, 0).with_distribution(Distribution::Adversarial);
        let keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
        assert!(keys.windows(2).all(|p| p[1] < p[0]));
    }

    #[test]
    fn zipf_samples_ranks_with_heavy_duplication() {
        let n = 1_000u64;
        let w = Workload::uniform(100_000, 17).with_distribution(Distribution::Zipf { s: 1.2, n });
        let keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
        assert_eq!(keys.len(), 100_000);
        // Every key is a rank in 1..=n.
        assert!(keys.iter().all(|&k| k >= 1.0 && k <= n as f64 && k.fract() == 0.0));
        // 100k draws over 1k ranks: duplicates dominate.
        let distinct: std::collections::BTreeSet<u64> = keys.iter().map(|&k| k as u64).collect();
        assert!(distinct.len() <= n as usize);
        assert!(distinct.len() > 100, "skew should not collapse the key space entirely");
        // Zipf head: rank 1 is ~2^1.2 ≈ 2.3× as frequent as rank 2, and
        // the top-10 ranks carry most of the mass.
        let count = |r: u64| keys.iter().filter(|&&k| k as u64 == r).count() as f64;
        assert!(count(1) / count(2) > 1.8, "rank1/rank2 = {}", count(1) / count(2));
        let head: usize = (1..=10).map(|r| count(r) as usize).sum();
        assert!(head as f64 > 0.4 * keys.len() as f64, "top-10 ranks hold {head} rows");
    }

    #[test]
    fn zipf_s_zero_is_uniform_over_ranks() {
        let w =
            Workload::uniform(50_000, 18).with_distribution(Distribution::Zipf { s: 0.0, n: 10 });
        let keys: Vec<f64> = w.keys().map(|k| k.get()).collect();
        for r in 1..=10u64 {
            let freq = keys.iter().filter(|&&k| k as u64 == r).count() as f64 / keys.len() as f64;
            assert!((freq - 0.1).abs() < 0.01, "rank {r} frequency {freq}");
        }
    }

    #[test]
    fn payloads_have_requested_size() {
        let w = Workload::uniform(100, 3).with_payload_bytes(64);
        for row in w.rows() {
            assert_eq!(row.payload.len(), 64);
        }
        let w0 = Workload::uniform(100, 3);
        assert!(w0.rows().all(|r| r.payload.is_empty()));
    }

    #[test]
    fn expected_top_k_oracle() {
        let w = Workload::uniform(1_000, 11);
        assert_eq!(w.expected_top_k(3, true), vec![1.0, 2.0, 3.0]);
        assert_eq!(w.expected_top_k(2, false), vec![1000.0, 999.0]);
    }

    #[test]
    fn size_hint_is_exact() {
        let w = Workload::uniform(123, 0);
        let s = w.keys();
        assert_eq!(s.len(), 123);
        assert_eq!(s.size_hint(), (123, Some(123)));
        assert_eq!(w.keys().count(), 123);
    }
}
