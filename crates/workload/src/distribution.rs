//! Key distributions of the paper's evaluation (§5.1.4).

use rand::rngs::StdRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;

/// A key distribution for a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Shuffled distinct keys `1..=N` (the `L_ORDERKEY` column of an
    /// unsorted `lineitem` table) — the paper's *uniform* dataset.
    Uniform,
    /// The Faloutsos/Jagadish generator: `value(rank) = N / rank^shape`,
    /// each rank once, arrival order random. The paper uses shapes
    /// 0.5, 1.05, 1.25 and 1.5.
    Fal {
        /// The shape parameter `z` controlling skew (0 = uniform values,
        /// larger = more hyperbolic).
        shape: f64,
    },
    /// I.i.d. samples from `exp(μ + σ·N(0,1))`; the paper uses μ = 0,
    /// σ = 2.
    Lognormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Strictly improving keys (descending for an ascending top-k):
    /// every row beats all previous rows, so a cutoff filter keeps
    /// sharpening but never eliminates anything — the §5.5 adversarial
    /// overhead workload.
    Adversarial,
    /// Ascending keys with bounded local disorder: each key sits within
    /// `disorder` positions of its sorted position. Replacement selection
    /// turns such inputs into very few, very long runs (§2.5) — the
    /// workload that separates it from load-sort-store.
    NearlySorted {
        /// Maximum displacement of a key from its sorted position.
        disorder: u64,
    },
    /// I.i.d. Zipf-distributed ranks: each row samples a rank
    /// `r ∈ 1..=n` with `P(r) ∝ 1/r^s`. Unlike [`Distribution::Fal`]
    /// (every rank exactly once), *duplicates are the point* — the same
    /// hot ranks recur constantly, which is what the in-sort duplicate
    /// folding of DESIGN.md §14 exploits. The dedup benchmarks use
    /// `s = 1.2` over a key space much smaller than the row count.
    Zipf {
        /// Skew exponent (0 = uniform over ranks; larger = heavier head).
        s: f64,
        /// Number of distinct ranks (the key-space size).
        n: u64,
    },
}

impl Distribution {
    /// The paper's lognormal parameterization (μ = 0, σ = 2).
    pub fn lognormal_default() -> Self {
        Distribution::Lognormal { mu: 0.0, sigma: 2.0 }
    }

    /// A short label for reports ("uniform", "fal-1.25", …).
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform => "uniform".to_string(),
            Distribution::Fal { shape } => format!("fal-{shape}"),
            Distribution::Lognormal { .. } => "lognormal".to_string(),
            Distribution::Adversarial => "adversarial".to_string(),
            Distribution::NearlySorted { disorder } => format!("nearly-sorted-{disorder}"),
            Distribution::Zipf { s, n } => format!("zipf-{s}-{n}"),
        }
    }
}

/// Samples one standard normal via the Box–Muller transform.
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    // Draw u1 from (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Distribution::Uniform.label(), "uniform");
        assert_eq!(Distribution::Fal { shape: 1.25 }.label(), "fal-1.25");
        assert_eq!(Distribution::lognormal_default().label(), "lognormal");
        assert_eq!(Distribution::Adversarial.label(), "adversarial");
        assert_eq!(Distribution::Zipf { s: 1.2, n: 1000 }.label(), "zipf-1.2-1000");
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn box_muller_never_yields_nan_or_inf() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100_000 {
            let x = standard_normal(&mut rng);
            assert!(x.is_finite());
        }
    }
}
