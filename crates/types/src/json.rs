//! A tiny dependency-free JSON value, serializer and parser.
//!
//! The build environment cannot fetch serde, and the metrics reports only
//! need a small, predictable subset of JSON: objects with ordered keys,
//! arrays, strings, booleans, null, and numbers (kept as `u64`/`i64` where
//! possible so byte counters above 2⁵³ survive a round trip exactly).
//!
//! [`JsonValue::to_json`] always emits valid JSON; [`JsonValue::parse`]
//! accepts anything the serializer emits (plus ordinary whitespace), which
//! is exactly the round-trip contract the metrics pipeline tests.

use crate::error::{Error, Result};

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (serialized without decimal point).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number. Non-finite values serialize as `null`
    /// (JSON has no NaN/Infinity).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved on serialization.
    Obj(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        if v >= 0 {
            JsonValue::U64(v as u64)
        } else {
            JsonValue::I64(v)
        }
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<I, K, V>(pairs: I) -> JsonValue
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<JsonValue>,
    {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }

    /// Builds an array from values.
    pub fn arr<I, V>(items: I) -> JsonValue
    where
        I: IntoIterator<Item = V>,
        V: Into<JsonValue>,
    {
        JsonValue::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` if numeric (integers convert losslessly where
    /// `f64` permits).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::F64(v) => Some(*v),
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with newlines and `indent`-space indentation.
    pub fn to_json_pretty(&self, indent: usize) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out, Some(indent.max(1)), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::U64(v) => {
                out.push_str(&v.to_string());
            }
            JsonValue::I64(v) => {
                out.push_str(&v.to_string());
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so the
                    // value re-parses as F64 rather than an integer.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module emits, plus ordinary
    /// whitespace). Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<JsonValue> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::Corrupt(format!("trailing JSON at byte {}", p.pos)));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::Corrupt(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::Corrupt(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::Corrupt(format!("unexpected JSON at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a maximal run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::Corrupt("invalid UTF-8 in JSON string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::Corrupt("truncated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::Corrupt("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::Corrupt("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::Corrupt("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::Corrupt("bad \\u escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error::Corrupt(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::Corrupt("unterminated JSON string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(JsonValue::F64)
                .map_err(|_| Error::Corrupt(format!("bad number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(JsonValue::I64)
                .map_err(|_| Error::Corrupt(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(JsonValue::U64)
                .map_err(|_| Error::Corrupt(format!("bad number {text:?}")))
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(Error::Corrupt("expected ',' or ']' in array".into())),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(Error::Corrupt("expected ',' or '}' in object".into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        JsonValue::obj([
            ("algorithm", JsonValue::from("histogram-topk")),
            ("rows_in", JsonValue::from(1_000_000u64)),
            ("big", JsonValue::U64(u64::MAX)),
            ("neg", JsonValue::I64(-42)),
            ("frac", JsonValue::F64(0.25)),
            ("spilled", JsonValue::from(true)),
            ("nothing", JsonValue::Null),
            ("name with \"quotes\"\n", JsonValue::from("tab\there")),
            ("empty_arr", JsonValue::Arr(vec![])),
            ("empty_obj", JsonValue::Obj(vec![])),
            (
                "nested",
                JsonValue::arr([
                    JsonValue::obj([("p50_ns", JsonValue::from(1024u64))]),
                    JsonValue::from(3.5f64),
                ]),
            ),
        ])
    }

    #[test]
    fn roundtrip_compact() {
        let v = sample();
        let text = v.to_json();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_pretty() {
        let v = sample();
        let text = v.to_json_pretty(2);
        assert!(text.contains('\n'));
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_max_survives_exactly() {
        let text = JsonValue::U64(u64::MAX).to_json();
        assert_eq!(text, u64::MAX.to_string());
        assert_eq!(JsonValue::parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        let text = JsonValue::F64(2.0).to_json();
        assert_eq!(text, "2.0");
        assert_eq!(JsonValue::parse(&text).unwrap(), JsonValue::F64(2.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn get_and_accessors() {
        let v = sample();
        assert_eq!(v.get("algorithm").and_then(JsonValue::as_str), Some("histogram-topk"));
        assert_eq!(v.get("rows_in").and_then(JsonValue::as_u64), Some(1_000_000));
        assert_eq!(v.get("frac").and_then(JsonValue::as_f64), Some(0.25));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("123 junk").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v, JsonValue::obj([("a", JsonValue::arr([1u64, 2])), ("b", JsonValue::Null),]));
    }

    #[test]
    fn unicode_roundtrips() {
        let v = JsonValue::from("κεραυνός ⚡ \u{1}");
        let back = JsonValue::parse(&v.to_json()).unwrap();
        assert_eq!(back, v);
    }
}
