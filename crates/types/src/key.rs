//! Sort-key trait and the key types shipped with `histok`.
//!
//! A [`SortKey`] is the value of the query's sort expression for one row.
//! The top-k machinery only ever needs three things from it: a total order
//! (`Ord`), a stable binary encoding (so keys can live in spilled runs), and
//! a heap-size estimate (so the memory budget can account for it).
//!
//! Keys are encoded with a self-describing length so run files can be
//! decoded without external schema information.

use bytes::{Buf, BufMut};
use std::cmp::Ordering;
use std::fmt::Debug;

use crate::error::{Error, Result};
use crate::memsize::HeapSize;

/// A value of the sort expression, as required by every `histok` operator.
///
/// The trait bundles the total order with a binary codec. The codec writes a
/// key to a growable buffer and reads it back from a [`Buf`]; implementations
/// must round-trip exactly (`decode(encode(k)) == k`).
pub trait SortKey: Clone + Ord + Debug + Send + Sync + HeapSize + 'static {
    /// Number of bytes [`SortKey::encode`] will append for `self`.
    fn encoded_len(&self) -> usize;

    /// Appends the binary representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one key from the front of `buf`, consuming its bytes.
    ///
    /// Returns [`Error::Corrupt`] if the buffer is too short or the payload
    /// is malformed.
    fn decode(buf: &mut impl Buf) -> Result<Self>;
}

/// Checks that `buf` has at least `n` readable bytes before a fixed-width
/// decode.
fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(Error::Corrupt(format!(
            "truncated key: need {n} bytes for {what}, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

macro_rules! int_sort_key {
    ($t:ty, $get:ident, $put:ident, $len:expr) => {
        impl SortKey for $t {
            fn encoded_len(&self) -> usize {
                $len
            }
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.$put(*self);
            }
            fn decode(buf: &mut impl Buf) -> Result<Self> {
                need(buf, $len, stringify!($t))?;
                Ok(buf.$get())
            }
        }
    };
}

int_sort_key!(u32, get_u32_le, put_u32_le, 4);
int_sort_key!(u64, get_u64_le, put_u64_le, 8);
int_sort_key!(i32, get_i32_le, put_i32_le, 4);
int_sort_key!(i64, get_i64_le, put_i64_le, 8);

/// An `f64` sort key with a *total* order.
///
/// IEEE-754 comparison is partial (`NaN` compares to nothing), which rules
/// out raw `f64` as a sort key. `F64Key` uses [`f64::total_cmp`], placing
/// `-NaN < -inf < ... < -0.0 < 0.0 < ... < inf < NaN`. The paper's analysis
/// (§3.2) works on uniformly distributed `[0, 1]` floats, so this is the key
/// type used by the analytical model and the uniform-float workloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct F64Key(pub f64);

impl F64Key {
    /// Returns the wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64Key {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for F64Key {}
impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64Key {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl From<f64> for F64Key {
    fn from(v: f64) -> Self {
        F64Key(v)
    }
}

impl SortKey for F64Key {
    fn encoded_len(&self) -> usize {
        8
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_f64_le(self.0);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        need(buf, 8, "F64Key")?;
        Ok(F64Key(buf.get_f64_le()))
    }
}

/// A variable-length byte-string sort key (lexicographic order).
///
/// Useful for string sort columns; the encoding is a `u32` length prefix
/// followed by the bytes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct BytesKey(pub Vec<u8>);

impl BytesKey {
    /// Creates a key from anything byte-like.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        BytesKey(bytes.into())
    }
    /// The raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl From<&str> for BytesKey {
    fn from(s: &str) -> Self {
        BytesKey(s.as_bytes().to_vec())
    }
}

impl SortKey for BytesKey {
    fn encoded_len(&self) -> usize {
        4 + self.0.len()
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(self.0.len() as u32);
        buf.extend_from_slice(&self.0);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        need(buf, 4, "BytesKey length")?;
        let len = buf.get_u32_le() as usize;
        need(buf, len, "BytesKey payload")?;
        let mut v = vec![0u8; len];
        buf.copy_to_slice(&mut v);
        Ok(BytesKey(v))
    }
}

/// A composite key of two sort columns, ordered lexicographically.
///
/// Multi-column `ORDER BY a, b` clauses map to `KeyPair<A, B>`; deeper
/// nesting (`KeyPair<A, KeyPair<B, C>>`) covers arbitrary arity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct KeyPair<A, B>(pub A, pub B);

impl<A: SortKey, B: SortKey> SortKey for KeyPair<A, B> {
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let a = A::decode(buf)?;
        let b = B::decode(buf)?;
        Ok(KeyPair(a, b))
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for KeyPair<A, B> {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<K: SortKey>(k: &K) -> K {
        let mut buf = Vec::new();
        k.encode(&mut buf);
        assert_eq!(buf.len(), k.encoded_len(), "encoded_len must match encode");
        let mut slice = &buf[..];
        let back = K::decode(&mut slice).expect("decode");
        assert_eq!(slice.len(), 0, "decode must consume exactly encoded_len");
        back
    }

    #[test]
    fn integer_keys_roundtrip() {
        assert_eq!(roundtrip(&42u64), 42u64);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&-7i64), -7i64);
        assert_eq!(roundtrip(&7u32), 7u32);
        assert_eq!(roundtrip(&i32::MIN), i32::MIN);
    }

    #[test]
    fn f64_key_total_order_handles_nan_and_zero() {
        let nan = F64Key(f64::NAN);
        let inf = F64Key(f64::INFINITY);
        let one = F64Key(1.0);
        assert!(one < inf);
        assert!(inf < nan);
        assert_eq!(nan, nan); // total order: NaN equals itself
        assert!(F64Key(-0.0) < F64Key(0.0)); // total_cmp distinguishes zeros
    }

    #[test]
    fn f64_key_roundtrips_special_values() {
        for v in [0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, f64::INFINITY] {
            assert_eq!(roundtrip(&F64Key(v)), F64Key(v));
        }
        // NaN round-trips bit-exactly under total order equality.
        assert_eq!(roundtrip(&F64Key(f64::NAN)), F64Key(f64::NAN));
    }

    #[test]
    fn bytes_key_orders_lexicographically() {
        let a = BytesKey::from("apple");
        let b = BytesKey::from("banana");
        let ab = BytesKey::from("apple2");
        assert!(a < b);
        assert!(a < ab);
        assert_eq!(roundtrip(&a), a);
        assert_eq!(roundtrip(&BytesKey::new(Vec::new())), BytesKey::new(Vec::new()));
    }

    #[test]
    fn key_pair_orders_by_first_then_second() {
        let k1 = KeyPair(1u64, F64Key(9.0));
        let k2 = KeyPair(1u64, F64Key(10.0));
        let k3 = KeyPair(2u64, F64Key(0.0));
        assert!(k1 < k2);
        assert!(k2 < k3);
        assert_eq!(roundtrip(&k1), k1);
    }

    #[test]
    fn truncated_buffers_yield_corrupt_errors() {
        let mut buf = Vec::new();
        42u64.encode(&mut buf);
        let mut short = &buf[..4];
        assert!(matches!(u64::decode(&mut short), Err(Error::Corrupt(_))));

        let mut buf = Vec::new();
        BytesKey::from("hello").encode(&mut buf);
        let mut short = &buf[..6]; // length says 5, only 2 payload bytes present
        assert!(matches!(BytesKey::decode(&mut short), Err(Error::Corrupt(_))));
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v in any::<u64>()) {
            prop_assert_eq!(roundtrip(&v), v);
        }

        #[test]
        fn prop_f64_roundtrip(v in any::<f64>()) {
            let k = F64Key(v);
            prop_assert_eq!(roundtrip(&k), k);
        }

        #[test]
        fn prop_bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..256)) {
            let k = BytesKey(v);
            prop_assert_eq!(roundtrip(&k), k.clone());
        }

        #[test]
        fn prop_f64_order_matches_float_order(a in -1.0e9..1.0e9f64, b in -1.0e9..1.0e9f64) {
            let (ka, kb) = (F64Key(a), F64Key(b));
            prop_assert_eq!(ka < kb, a < b);
        }

        #[test]
        fn prop_pair_order_is_lexicographic(a1 in any::<u32>(), b1 in any::<u32>(),
                                            a2 in any::<u32>(), b2 in any::<u32>()) {
            let k1 = KeyPair(a1, b1);
            let k2 = KeyPair(a2, b2);
            prop_assert_eq!(k1.cmp(&k2), (a1, b1).cmp(&(a2, b2)));
        }
    }
}
