//! Sort-key trait and the key types shipped with `histok`.
//!
//! A [`SortKey`] is the value of the query's sort expression for one row.
//! The top-k machinery only ever needs three things from it: a total order
//! (`Ord`), a stable binary encoding (so keys can live in spilled runs), and
//! a heap-size estimate (so the memory budget can account for it).
//!
//! Keys are encoded with a self-describing length so run files can be
//! decoded without external schema information.

use bytes::{Buf, BufMut};
use std::cmp::Ordering;
use std::fmt::Debug;

use crate::error::{Error, Result};
use crate::memsize::HeapSize;

/// A value of the sort expression, as required by every `histok` operator.
///
/// The trait bundles the total order with two binary codecs:
///
/// * the *storage* codec ([`SortKey::encode`]/[`SortKey::decode`]), which
///   must round-trip exactly (`decode(encode(k)) == k`) so keys can live in
///   spilled runs;
/// * the *normalized* encoding ([`SortKey::norm_encode`]), an
///   order-preserving byte string: for any two keys,
///   `norm(a).cmp(&norm(b)) == a.cmp(&b)`. Normalized keys never need
///   decoding — they exist so the sort hot path (loser-tree merging,
///   offset-value codes, cutoff checks) can compare keys with `memcmp` and,
///   most of the time, with a single `u64` comparison on
///   [`SortKey::norm_prefix`]. The encoding must also be prefix-free across
///   distinct keys, so concatenations (pair keys) stay order-preserving.
pub trait SortKey: Clone + Ord + Debug + Send + Sync + HeapSize + 'static {
    /// Byte length of [`SortKey::norm_encode`]'s output when it is the same
    /// for every value of the type; `None` for variable-width keys.
    const NORM_WIDTH: Option<usize>;

    /// Number of bytes [`SortKey::encode`] will append for `self`.
    fn encoded_len(&self) -> usize;

    /// Appends the binary representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one key from the front of `buf`, consuming its bytes.
    ///
    /// Returns [`Error::Corrupt`] if the buffer is too short or the payload
    /// is malformed.
    fn decode(buf: &mut impl Buf) -> Result<Self>;

    /// Appends the order-preserving normalized encoding of `self` to `buf`.
    fn norm_encode(&self, buf: &mut Vec<u8>);

    /// The first eight bytes of the normalized encoding, zero-padded and
    /// read big-endian, so that *differing* prefixes order two keys exactly
    /// like their full normalized strings (equal prefixes are
    /// inconclusive unless [`SortKey::norm_prefix_is_exact`]).
    ///
    /// Implementations must not allocate for fixed-width keys; this is the
    /// per-row fast path of the cutoff filter and the selection heap.
    fn norm_prefix(&self) -> u64;

    /// True if the prefix *is* the whole normalized key for every value of
    /// the type, making equal prefixes mean equal keys.
    #[inline]
    fn norm_prefix_is_exact() -> bool {
        matches!(Self::NORM_WIDTH, Some(w) if w <= 8)
    }

    /// The normalized encoding as a fresh buffer (tests and cold paths).
    fn norm_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.norm_encode(&mut buf);
        buf
    }
}

/// Reads up to the first eight bytes of `bytes` as a zero-padded big-endian
/// `u64` — the generic way to compute [`SortKey::norm_prefix`] from an
/// already-normalized string.
#[inline]
pub fn prefix_of_norm(bytes: &[u8]) -> u64 {
    let mut out = [0u8; 8];
    let n = bytes.len().min(8);
    out[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(out)
}

/// Checks that `buf` has at least `n` readable bytes before a fixed-width
/// decode.
fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(Error::Corrupt(format!(
            "truncated key: need {n} bytes for {what}, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

macro_rules! int_sort_key {
    ($t:ty, $get:ident, $put:ident, $len:expr, |$v:ident| $to_unsigned:expr) => {
        impl SortKey for $t {
            const NORM_WIDTH: Option<usize> = Some($len);
            fn encoded_len(&self) -> usize {
                $len
            }
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.$put(*self);
            }
            fn decode(buf: &mut impl Buf) -> Result<Self> {
                need(buf, $len, stringify!($t))?;
                Ok(buf.$get())
            }
            fn norm_encode(&self, buf: &mut Vec<u8>) {
                let $v = *self;
                buf.extend_from_slice(&($to_unsigned).to_be_bytes());
            }
            #[inline]
            fn norm_prefix(&self) -> u64 {
                let $v = *self;
                u64::from($to_unsigned) << (8 * (8 - $len))
            }
        }
    };
}

// Unsigned integers normalize to their big-endian bytes; signed ones flip
// the sign bit first (xor with MIN), mapping the `Ord` range monotonically
// onto the unsigned range.
int_sort_key!(u32, get_u32_le, put_u32_le, 4, |v| v);
int_sort_key!(u64, get_u64_le, put_u64_le, 8, |v| v);
int_sort_key!(i32, get_i32_le, put_i32_le, 4, |v| (v ^ i32::MIN) as u32);
int_sort_key!(i64, get_i64_le, put_i64_le, 8, |v| (v ^ i64::MIN) as u64);

/// An `f64` sort key with a *total* order.
///
/// IEEE-754 comparison is partial (`NaN` compares to nothing), which rules
/// out raw `f64` as a sort key. `F64Key` uses [`f64::total_cmp`], placing
/// `-NaN < -inf < ... < -0.0 < 0.0 < ... < inf < NaN`. The paper's analysis
/// (§3.2) works on uniformly distributed `[0, 1]` floats, so this is the key
/// type used by the analytical model and the uniform-float workloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct F64Key(pub f64);

impl F64Key {
    /// Returns the wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64Key {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for F64Key {}
impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64Key {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl From<f64> for F64Key {
    fn from(v: f64) -> Self {
        F64Key(v)
    }
}

impl SortKey for F64Key {
    const NORM_WIDTH: Option<usize> = Some(8);
    fn encoded_len(&self) -> usize {
        8
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_f64_le(self.0);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        need(buf, 8, "F64Key")?;
        Ok(F64Key(buf.get_f64_le()))
    }
    fn norm_encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.norm_prefix().to_be_bytes());
    }
    /// The classic total-order bit trick: negative floats (sign bit set,
    /// including -NaN) have all bits complemented, non-negative ones only
    /// the sign bit flipped. The resulting `u64` order equals
    /// [`f64::total_cmp`].
    #[inline]
    fn norm_prefix(&self) -> u64 {
        let bits = self.0.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }
}

/// A variable-length byte-string sort key (lexicographic order).
///
/// Useful for string sort columns; the encoding is a `u32` length prefix
/// followed by the bytes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct BytesKey(pub Vec<u8>);

impl BytesKey {
    /// Creates a key from anything byte-like.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        BytesKey(bytes.into())
    }
    /// The raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl From<&str> for BytesKey {
    fn from(s: &str) -> Self {
        BytesKey(s.as_bytes().to_vec())
    }
}

impl SortKey for BytesKey {
    const NORM_WIDTH: Option<usize> = None;
    fn encoded_len(&self) -> usize {
        4 + self.0.len()
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(self.0.len() as u32);
        buf.extend_from_slice(&self.0);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        need(buf, 4, "BytesKey length")?;
        let len = buf.get_u32_le() as usize;
        need(buf, len, "BytesKey payload")?;
        let mut v = vec![0u8; len];
        buf.copy_to_slice(&mut v);
        Ok(BytesKey(v))
    }
    /// Escape-and-terminate normalization (the standard order-preserving
    /// encoding for variable-length strings under concatenation): every
    /// `0x00` content byte becomes `0x00 0xFF`, and the string ends with
    /// `0x00 0x00`. The terminator sorts before every escaped or plain
    /// content byte, so prefixes sort first and the encoding is prefix-free
    /// across distinct keys.
    fn norm_encode(&self, buf: &mut Vec<u8>) {
        if !self.0.contains(&0) {
            // Hot path: nothing to escape, bulk-copy the content.
            buf.extend_from_slice(&self.0);
        } else {
            for &b in &self.0 {
                if b == 0 {
                    buf.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    buf.push(b);
                }
            }
        }
        buf.extend_from_slice(&[0x00, 0x00]);
    }
    #[inline]
    fn norm_prefix(&self) -> u64 {
        let mut out = [0u8; 8];
        let mut at = 0;
        let mut content = self.0.iter();
        while at < 8 {
            match content.next() {
                Some(0) => {
                    out[at] = 0x00;
                    if at + 1 < 8 {
                        out[at + 1] = 0xFF;
                    }
                    at += 2;
                }
                Some(&b) => {
                    out[at] = b;
                    at += 1;
                }
                // Terminator; the rest stays zero, matching norm_encode.
                None => break,
            }
        }
        u64::from_be_bytes(out)
    }
}

/// A composite key of two sort columns, ordered lexicographically.
///
/// Multi-column `ORDER BY a, b` clauses map to `KeyPair<A, B>`; deeper
/// nesting (`KeyPair<A, KeyPair<B, C>>`) covers arbitrary arity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct KeyPair<A, B>(pub A, pub B);

impl<A: SortKey, B: SortKey> SortKey for KeyPair<A, B> {
    const NORM_WIDTH: Option<usize> = match (A::NORM_WIDTH, B::NORM_WIDTH) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    };
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let a = A::decode(buf)?;
        let b = B::decode(buf)?;
        Ok(KeyPair(a, b))
    }
    /// Concatenation of the components' normalizations — order-preserving
    /// because each component encoding is prefix-free.
    fn norm_encode(&self, buf: &mut Vec<u8>) {
        self.0.norm_encode(buf);
        self.1.norm_encode(buf);
    }
    fn norm_prefix(&self) -> u64 {
        match A::NORM_WIDTH {
            Some(w) if w >= 8 => self.0.norm_prefix(),
            // Fixed-width first component: splice the second component's
            // prefix in after the first's `w` bytes, no allocation.
            Some(w) => self.0.norm_prefix() | (self.1.norm_prefix() >> (8 * w)),
            // Variable-width first component: normalize into a scratch
            // buffer (cold path; only pairs with byte-string majors).
            None => crate::key::prefix_of_norm(&self.norm_bytes()),
        }
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for KeyPair<A, B> {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<K: SortKey>(k: &K) -> K {
        let mut buf = Vec::new();
        k.encode(&mut buf);
        assert_eq!(buf.len(), k.encoded_len(), "encoded_len must match encode");
        let mut slice = &buf[..];
        let back = K::decode(&mut slice).expect("decode");
        assert_eq!(slice.len(), 0, "decode must consume exactly encoded_len");
        back
    }

    #[test]
    fn integer_keys_roundtrip() {
        assert_eq!(roundtrip(&42u64), 42u64);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&-7i64), -7i64);
        assert_eq!(roundtrip(&7u32), 7u32);
        assert_eq!(roundtrip(&i32::MIN), i32::MIN);
    }

    #[test]
    fn f64_key_total_order_handles_nan_and_zero() {
        let nan = F64Key(f64::NAN);
        let inf = F64Key(f64::INFINITY);
        let one = F64Key(1.0);
        assert!(one < inf);
        assert!(inf < nan);
        assert_eq!(nan, nan); // total order: NaN equals itself
        assert!(F64Key(-0.0) < F64Key(0.0)); // total_cmp distinguishes zeros
    }

    #[test]
    fn f64_key_roundtrips_special_values() {
        for v in [0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, f64::INFINITY] {
            assert_eq!(roundtrip(&F64Key(v)), F64Key(v));
        }
        // NaN round-trips bit-exactly under total order equality.
        assert_eq!(roundtrip(&F64Key(f64::NAN)), F64Key(f64::NAN));
    }

    #[test]
    fn bytes_key_orders_lexicographically() {
        let a = BytesKey::from("apple");
        let b = BytesKey::from("banana");
        let ab = BytesKey::from("apple2");
        assert!(a < b);
        assert!(a < ab);
        assert_eq!(roundtrip(&a), a);
        assert_eq!(roundtrip(&BytesKey::new(Vec::new())), BytesKey::new(Vec::new()));
    }

    #[test]
    fn key_pair_orders_by_first_then_second() {
        let k1 = KeyPair(1u64, F64Key(9.0));
        let k2 = KeyPair(1u64, F64Key(10.0));
        let k3 = KeyPair(2u64, F64Key(0.0));
        assert!(k1 < k2);
        assert!(k2 < k3);
        assert_eq!(roundtrip(&k1), k1);
    }

    #[test]
    fn truncated_buffers_yield_corrupt_errors() {
        let mut buf = Vec::new();
        42u64.encode(&mut buf);
        let mut short = &buf[..4];
        assert!(matches!(u64::decode(&mut short), Err(Error::Corrupt(_))));

        let mut buf = Vec::new();
        BytesKey::from("hello").encode(&mut buf);
        let mut short = &buf[..6]; // length says 5, only 2 payload bytes present
        assert!(matches!(BytesKey::decode(&mut short), Err(Error::Corrupt(_))));
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v in any::<u64>()) {
            prop_assert_eq!(roundtrip(&v), v);
        }

        #[test]
        fn prop_f64_roundtrip(v in any::<f64>()) {
            let k = F64Key(v);
            prop_assert_eq!(roundtrip(&k), k);
        }

        #[test]
        fn prop_bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..256)) {
            let k = BytesKey(v);
            prop_assert_eq!(roundtrip(&k), k.clone());
        }

        #[test]
        fn prop_f64_order_matches_float_order(a in -1.0e9..1.0e9f64, b in -1.0e9..1.0e9f64) {
            let (ka, kb) = (F64Key(a), F64Key(b));
            prop_assert_eq!(ka < kb, a < b);
        }

        #[test]
        fn prop_pair_order_is_lexicographic(a1 in any::<u32>(), b1 in any::<u32>(),
                                            a2 in any::<u32>(), b2 in any::<u32>()) {
            let k1 = KeyPair(a1, b1);
            let k2 = KeyPair(a2, b2);
            prop_assert_eq!(k1.cmp(&k2), (a1, b1).cmp(&(a2, b2)));
        }
    }

    /// Core normalization law: byte-wise comparison of `norm_bytes` must
    /// agree with the key's `Ord`, and `norm_prefix` must be the zero-padded
    /// first 8 bytes of `norm_bytes`.
    fn check_norm<K: SortKey>(a: &K, b: &K) {
        assert_eq!(
            a.norm_bytes().cmp(&b.norm_bytes()),
            a.cmp(b),
            "normalization must preserve Ord"
        );
        for k in [a, b] {
            assert_eq!(
                k.norm_prefix(),
                prefix_of_norm(&k.norm_bytes()),
                "norm_prefix must match the full normalization's first 8 bytes"
            );
            if let Some(w) = K::NORM_WIDTH {
                assert_eq!(k.norm_bytes().len(), w, "NORM_WIDTH must match encoding length");
            }
        }
    }

    #[test]
    fn norm_handles_integer_extremes() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            for w in [i64::MIN, -1, 0, 1, i64::MAX] {
                check_norm(&v, &w);
            }
        }
        check_norm(&u32::MIN, &u32::MAX);
        check_norm(&i32::MIN, &i32::MAX);
    }

    #[test]
    fn norm_handles_f64_special_values() {
        let specials = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.5,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        for &a in &specials {
            for &b in &specials {
                check_norm(&F64Key(a), &F64Key(b));
            }
        }
    }

    #[test]
    fn norm_bytes_key_escapes_embedded_zeros() {
        // 0x00 must sort before any other byte but the terminator must not
        // make a shorter string sort after its extension.
        let empty = BytesKey::new(Vec::new());
        let zero = BytesKey::new(vec![0]);
        let zero_zero = BytesKey::new(vec![0, 0]);
        let zero_one = BytesKey::new(vec![0, 1]);
        let one = BytesKey::new(vec![1]);
        let keys = [&empty, &zero, &zero_zero, &zero_one, &one];
        for &a in &keys {
            for &b in &keys {
                check_norm(a, b);
            }
        }
    }

    #[test]
    fn norm_pair_concatenation_preserves_order_across_first_key_boundary() {
        // ("a", "bc") vs ("ab", "c") — raw concatenation would collide;
        // the terminator keeps them ordered by the first component.
        let k1 = KeyPair(BytesKey::from("a"), BytesKey::from("bc"));
        let k2 = KeyPair(BytesKey::from("ab"), BytesKey::from("c"));
        check_norm(&k1, &k2);
        assert_eq!(k1.norm_bytes().cmp(&k2.norm_bytes()), k1.cmp(&k2));
    }

    proptest! {
        #[test]
        fn prop_norm_preserves_order_u64(a in any::<u64>(), b in any::<u64>()) {
            check_norm(&a, &b);
        }

        #[test]
        fn prop_norm_preserves_order_i64(a in any::<i64>(), b in any::<i64>()) {
            check_norm(&a, &b);
        }

        #[test]
        fn prop_norm_preserves_order_f64(a in any::<f64>(), b in any::<f64>()) {
            check_norm(&F64Key(a), &F64Key(b));
        }

        #[test]
        fn prop_norm_preserves_order_bytes(
            a in proptest::collection::vec(0u8..4, 0..12),
            b in proptest::collection::vec(0u8..4, 0..12),
        ) {
            check_norm(&BytesKey(a), &BytesKey(b));
        }

        #[test]
        fn prop_norm_preserves_order_pair(
            a1 in 0u32..4, b1 in proptest::collection::vec(0u8..4, 0..6),
            a2 in 0u32..4, b2 in proptest::collection::vec(0u8..4, 0..6),
        ) {
            check_norm(&KeyPair(a1, BytesKey(b1)), &KeyPair(a2, BytesKey(b2)));
        }

        #[test]
        fn prop_norm_preserves_order_bytes_major_pair(
            a1 in proptest::collection::vec(0u8..3, 0..6), b1 in any::<u32>(),
            a2 in proptest::collection::vec(0u8..3, 0..6), b2 in any::<u32>(),
        ) {
            check_norm(&KeyPair(BytesKey(a1), b1), &KeyPair(BytesKey(a2), b2));
        }
    }
}
