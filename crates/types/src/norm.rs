//! Order-preserving key normalization and offset-value codes (OVCs).
//!
//! Every [`SortKey`](crate::SortKey) can render itself as a *normalized*
//! byte string: an encoding chosen so that plain unsigned byte comparison
//! (`memcmp`) of two normalized strings agrees exactly with the key type's
//! `Ord`. Integers become big-endian with the sign bit flipped, floats use
//! the classic total-order bit trick, byte strings are escaped and
//! terminated so they stay order-preserving under concatenation, and pairs
//! simply concatenate their components.
//!
//! On top of normalization sits **offset-value coding** (Conner 1977; Do &
//! Graefe, "Robust and Efficient Sorting with Offset-Value Coding"): given a
//! *base* key known to sort at-or-before a key `X`, the pair
//! `(offset, value)` — the index of the first normalized byte where `X`
//! differs from the base, and that byte's value — is packed into a single
//! `u64` such that, for two keys coded against the *same* base, comparing
//! the two `u64`s resolves their order whenever the codes differ. Equal
//! codes mean the keys agree with the base (and each other) up to the
//! offset, so only the normalized suffixes need comparing. A tournament
//! tree maintaining codes against "the key each entry last lost to" thus
//! replaces almost every full key comparison with one integer comparison;
//! see `histok-sort`'s loser tree.
//!
//! All codes and comparisons here work in **output order**: for descending
//! sorts the value byte is complemented, so a larger code always means
//! "sorts later in the requested output" regardless of direction.

use std::cmp::Ordering;

use crate::order::SortOrder;

/// Offsets at or above this cap collapse into one code slot; comparisons
/// between keys that agree on `OFFSET_CAP` normalized bytes fall back to a
/// full comparison. 2^55 − 1 leaves room for the 8-bit value below and the
/// "equal to base" sentinel above every real offset.
pub const OFFSET_CAP: u64 = (1 << 55) - 1;

/// A packed offset-value code: `(OFFSET_CAP − offset) << 8 | value`.
///
/// Smaller codes sort earlier in output order. [`Ovc::EQUAL`] (zero) is the
/// code of a key identical to its base. Codes are only comparable when both
/// keys were coded against the same base key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ovc(u64);

impl Ovc {
    /// The code of a key equal to its base: minimal, because an equal key
    /// sorts no later than any key that differs from the base.
    pub const EQUAL: Ovc = Ovc(0);

    /// Packs an explicit `(offset, value)` pair (offset clamped to
    /// [`OFFSET_CAP`]).
    #[inline]
    pub fn pack(offset: usize, value: u8) -> Ovc {
        let off = (offset as u64).min(OFFSET_CAP - 1);
        Ovc((OFFSET_CAP - off) << 8 | u64::from(value))
    }

    /// The raw packed code (for metrics and tests).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The byte offset this code was taken at, or `None` for
    /// [`Ovc::EQUAL`].
    #[inline]
    pub fn offset(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some((OFFSET_CAP - (self.0 >> 8)) as usize)
        }
    }

    /// Derives the code of `key` against `base`, both as normalized byte
    /// strings, where `base` is known to sort at-or-before `key` in output
    /// order. Debug builds assert that precondition.
    pub fn derive(base: &[u8], key: &[u8], order: SortOrder) -> Ovc {
        debug_assert!(
            norm_cmp(base, key, order) != Ordering::Greater,
            "OVC base must sort at-or-before the coded key"
        );
        match first_difference(base, key) {
            None => Ovc::EQUAL,
            Some(at) => Ovc::pack(at, value_at(key, at, order)),
        }
    }
}

/// Compares two normalized byte strings in output order: plain `memcmp`
/// for ascending, reversed for descending.
#[inline]
pub fn norm_cmp(a: &[u8], b: &[u8], order: SortOrder) -> Ordering {
    match order {
        SortOrder::Ascending => a.cmp(b),
        SortOrder::Descending => b.cmp(a),
    }
}

/// Index of the first byte where `a` and `b` differ (a length difference
/// counts as a difference at the shorter length), or `None` when equal.
#[inline]
fn first_difference(a: &[u8], b: &[u8]) -> Option<usize> {
    let n = a.len().min(b.len());
    match a[..n].iter().zip(&b[..n]).position(|(x, y)| x != y) {
        Some(i) => Some(i),
        None if a.len() == b.len() => None,
        None => Some(n),
    }
}

/// The value byte of `key` at `at` in output order: the raw byte for
/// ascending, its complement for descending, and an end-of-string sentinel
/// when `at` is past the end (only reachable when the other key is longer).
///
/// The sentinel is 0 ascending / 255 descending: a key that *ends* where
/// another continues sorts before it bytewise, and the sentinel must
/// likewise sort before every continuation byte. Normalized encodings of
/// *distinct* keys are prefix-free, so the sentinel never collides with a
/// real byte of the same key.
#[inline]
fn value_at(key: &[u8], at: usize, order: SortOrder) -> u8 {
    let raw = key.get(at).copied();
    match order {
        SortOrder::Ascending => raw.unwrap_or(0),
        SortOrder::Descending => raw.map_or(255, |b| !b),
    }
}

/// The outcome of an OVC-tie resolution: the full ordering plus the fresh
/// code of the later-sorting key against the earlier one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OvcResolution {
    /// Output-order comparison of `a` against `b`.
    pub ordering: Ordering,
    /// Code of the loser (the later-sorting key) against the winner; for
    /// equal keys this is [`Ovc::EQUAL`].
    pub loser_ovc: Ovc,
}

/// Resolves an OVC tie: `a` and `b` are normalized keys that agree on their
/// first `from` bytes (the tied code's offset plus one, or 0). Returns the
/// ordering in output order and the loser's new code against the winner.
pub fn ovc_resolve(a: &[u8], b: &[u8], from: usize, order: SortOrder) -> OvcResolution {
    let skip = from.min(a.len()).min(b.len());
    debug_assert_eq!(a[..skip], b[..skip], "keys must agree below the tied offset");
    match first_difference(&a[skip..], &b[skip..]) {
        None => OvcResolution { ordering: Ordering::Equal, loser_ovc: Ovc::EQUAL },
        Some(rel) => {
            let at = skip + rel;
            let va = value_at(a, at, order);
            let vb = value_at(b, at, order);
            if va < vb {
                OvcResolution { ordering: Ordering::Less, loser_ovc: Ovc::pack(at, vb) }
            } else {
                OvcResolution { ordering: Ordering::Greater, loser_ovc: Ovc::pack(at, va) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{BytesKey, F64Key, KeyPair, SortKey};
    use proptest::prelude::*;

    fn norm<K: SortKey>(k: &K) -> Vec<u8> {
        let mut buf = Vec::new();
        k.norm_encode(&mut buf);
        buf
    }

    /// The fundamental OVC theorem this module exists for: for keys `x`,
    /// `y` at-or-after a common base, differing codes resolve their order.
    fn check_ovc_orders<K: SortKey>(base: &K, x: &K, y: &K, order: SortOrder) {
        let (nb, nx, ny) = (norm(base), norm(x), norm(y));
        if norm_cmp(&nb, &nx, order) == Ordering::Greater
            || norm_cmp(&nb, &ny, order) == Ordering::Greater
        {
            return; // precondition not met for this sample
        }
        let cx = Ovc::derive(&nb, &nx, order);
        let cy = Ovc::derive(&nb, &ny, order);
        let truth = norm_cmp(&nx, &ny, order);
        match cx.cmp(&cy) {
            Ordering::Less => assert_eq!(truth, Ordering::Less, "{x:?} vs {y:?} base {base:?}"),
            Ordering::Greater => {
                assert_eq!(truth, Ordering::Greater, "{x:?} vs {y:?} base {base:?}")
            }
            Ordering::Equal => {
                // Tie: resolve from the shared offset and check both the
                // ordering and the loser's refreshed code.
                let from = cx.offset().map_or(0, |o| o + 1);
                let res = ovc_resolve(&nx, &ny, from, order);
                assert_eq!(res.ordering, truth);
                let (w, l) = if truth == Ordering::Greater { (&ny, &nx) } else { (&nx, &ny) };
                assert_eq!(res.loser_ovc, Ovc::derive(w, l, order));
            }
        }
    }

    #[test]
    fn equal_code_is_minimal() {
        assert_eq!(Ovc::EQUAL.raw(), 0);
        assert!(Ovc::EQUAL < Ovc::pack(1_000_000, 0));
        assert_eq!(Ovc::EQUAL.offset(), None);
        assert_eq!(Ovc::pack(3, 7).offset(), Some(3));
    }

    #[test]
    fn earlier_difference_codes_larger() {
        // Differing earlier from the base means sorting later: the code
        // must be larger.
        assert!(Ovc::pack(0, 1) > Ovc::pack(1, 255));
        assert!(Ovc::pack(5, 0) > Ovc::pack(6, 255));
        // Same offset: value decides.
        assert!(Ovc::pack(2, 9) < Ovc::pack(2, 10));
    }

    #[test]
    fn derive_matches_manual_codes() {
        let base = [1u8, 2, 3];
        assert_eq!(Ovc::derive(&base, &[1, 2, 3], SortOrder::Ascending), Ovc::EQUAL);
        assert_eq!(Ovc::derive(&base, &[1, 2, 9], SortOrder::Ascending), Ovc::pack(2, 9));
        assert_eq!(Ovc::derive(&base, &[1, 5, 0], SortOrder::Ascending), Ovc::pack(1, 5));
        // Longer key differing only by continuation.
        assert_eq!(Ovc::derive(&base, &[1, 2, 3, 4], SortOrder::Ascending), Ovc::pack(3, 4));
    }

    #[test]
    fn descending_codes_complement_the_value() {
        let base = [9u8, 5];
        // Descending: base sorts at-or-before means base ≥ key bytewise.
        assert_eq!(Ovc::derive(&base, &[9, 5], SortOrder::Descending), Ovc::EQUAL);
        assert_eq!(Ovc::derive(&base, &[9, 3], SortOrder::Descending), Ovc::pack(1, !3u8));
        assert_eq!(Ovc::derive(&base, &[4, 200], SortOrder::Descending), Ovc::pack(0, !4u8));
    }

    #[test]
    fn resolve_reports_equal_keys() {
        let r = ovc_resolve(&[1, 2, 3], &[1, 2, 3], 1, SortOrder::Ascending);
        assert_eq!(r.ordering, Ordering::Equal);
        assert_eq!(r.loser_ovc, Ovc::EQUAL);
    }

    proptest! {
        #[test]
        fn prop_u64_ovc_orders(base in any::<u64>(), x in any::<u64>(), y in any::<u64>()) {
            check_ovc_orders(&base, &x, &y, SortOrder::Ascending);
            check_ovc_orders(&base, &x, &y, SortOrder::Descending);
        }

        #[test]
        fn prop_f64_ovc_orders(base in any::<f64>(), x in any::<f64>(), y in any::<f64>()) {
            check_ovc_orders(&F64Key(base), &F64Key(x), &F64Key(y), SortOrder::Ascending);
            check_ovc_orders(&F64Key(base), &F64Key(x), &F64Key(y), SortOrder::Descending);
        }

        #[test]
        fn prop_bytes_ovc_orders(
            base in proptest::collection::vec(0u8..4, 0..6),
            x in proptest::collection::vec(0u8..4, 0..6),
            y in proptest::collection::vec(0u8..4, 0..6),
        ) {
            // Tiny alphabet and short strings force shared prefixes, ties
            // and length-only differences.
            let (b, x, y) = (BytesKey(base), BytesKey(x), BytesKey(y));
            check_ovc_orders(&b, &x, &y, SortOrder::Ascending);
            check_ovc_orders(&b, &x, &y, SortOrder::Descending);
        }

        #[test]
        fn prop_pair_ovc_orders(
            b1 in 0u32..4, b2 in proptest::collection::vec(0u8..3, 0..4),
            x1 in 0u32..4, x2 in proptest::collection::vec(0u8..3, 0..4),
            y1 in 0u32..4, y2 in proptest::collection::vec(0u8..3, 0..4),
        ) {
            let base = KeyPair(b1, BytesKey(b2));
            let x = KeyPair(x1, BytesKey(x2));
            let y = KeyPair(y1, BytesKey(y2));
            check_ovc_orders(&base, &x, &y, SortOrder::Ascending);
            check_ovc_orders(&base, &x, &y, SortOrder::Descending);
        }
    }
}
