//! Sort direction and the top-k clause specification.
//!
//! The paper's `SortInfo` ("sorting columns and direction", Algorithm 1) maps
//! to [`SortOrder`]; the full `ORDER BY … LIMIT k OFFSET o` clause maps to
//! [`SortSpec`]. Every comparison in the code base goes through
//! [`SortOrder::cmp_keys`] so each algorithm is written once and works for
//! both ascending ("bottom-k") and descending ("top-k largest") queries.

use std::cmp::Ordering;

use crate::error::{Error, Result};

/// Direction of the query's `ORDER BY` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SortOrder {
    /// Smallest keys first — the paper's running example
    /// (`ORDER BY l_orderkey LIMIT k`).
    #[default]
    Ascending,
    /// Largest keys first.
    Descending,
}

impl SortOrder {
    /// Compares two keys in *output order*: `Less` means `a` is produced
    /// before `b` (i.e. `a` is "better" and survives a cutoff that `b` may
    /// not).
    #[inline]
    pub fn cmp_keys<K: Ord>(&self, a: &K, b: &K) -> Ordering {
        match self {
            SortOrder::Ascending => a.cmp(b),
            SortOrder::Descending => b.cmp(a),
        }
    }

    /// True if `a` sorts strictly before `b` in output order.
    #[inline]
    pub fn precedes<K: Ord>(&self, a: &K, b: &K) -> bool {
        self.cmp_keys(a, b) == Ordering::Less
    }

    /// True if `a` sorts strictly after `b` in output order — the test the
    /// cutoff filter uses to eliminate rows (`key` strictly after `cutoff`).
    #[inline]
    pub fn follows<K: Ord>(&self, a: &K, b: &K) -> bool {
        self.cmp_keys(a, b) == Ordering::Greater
    }

    /// The opposite direction. The histogram priority queue "sorts in the
    /// inverse direction compared to the requested output" (§3.1.2); it is
    /// built with `order.reverse()`.
    #[inline]
    pub fn reverse(&self) -> SortOrder {
        match self {
            SortOrder::Ascending => SortOrder::Descending,
            SortOrder::Descending => SortOrder::Ascending,
        }
    }

    /// Of two keys, the one that sorts first in output order.
    #[inline]
    pub fn better<'a, K: Ord>(&self, a: &'a K, b: &'a K) -> &'a K {
        if self.precedes(a, b) {
            a
        } else {
            b
        }
    }

    /// Of two keys, the one that sorts last in output order.
    #[inline]
    pub fn worse<'a, K: Ord>(&self, a: &'a K, b: &'a K) -> &'a K {
        if self.follows(a, b) {
            a
        } else {
            b
        }
    }
}

/// The complete top-k clause: direction, limit and optional offset.
///
/// This is the paper's `(k, SortInfo)` pair extended with the `OFFSET`
/// support of §2.7 ("pause-and-resume" result paging): the operator must
/// internally retain `offset + limit` rows and skip the first `offset` of
/// them when producing output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortSpec {
    /// Sort direction.
    pub order: SortOrder,
    /// `LIMIT k` — number of output rows requested.
    pub limit: u64,
    /// `OFFSET` — rows to skip before producing output (0 = plain top-k).
    pub offset: u64,
}

impl SortSpec {
    /// Ascending top-k with no offset — the common case.
    pub fn ascending(limit: u64) -> Self {
        SortSpec { order: SortOrder::Ascending, limit, offset: 0 }
    }

    /// Descending top-k with no offset.
    pub fn descending(limit: u64) -> Self {
        SortSpec { order: SortOrder::Descending, limit, offset: 0 }
    }

    /// Adds an `OFFSET` clause.
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// Total rows the operator must track: `offset + limit`.
    ///
    /// Every internal `k` in the algorithms is this value; the offset rows
    /// are discarded only at output time.
    #[inline]
    pub fn retained(&self) -> u64 {
        self.offset.saturating_add(self.limit)
    }

    /// Validates the clause (`limit` must be positive and `offset + limit`
    /// must not overflow).
    pub fn validate(&self) -> Result<()> {
        if self.limit == 0 {
            return Err(Error::InvalidConfig("LIMIT must be at least 1".into()));
        }
        if self.offset.checked_add(self.limit).is_none() {
            return Err(Error::InvalidConfig("OFFSET + LIMIT overflows u64".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_cmp_matches_ord() {
        let o = SortOrder::Ascending;
        assert_eq!(o.cmp_keys(&1, &2), Ordering::Less);
        assert!(o.precedes(&1, &2));
        assert!(o.follows(&2, &1));
        assert!(!o.follows(&2, &2));
    }

    #[test]
    fn descending_cmp_reverses_ord() {
        let o = SortOrder::Descending;
        assert_eq!(o.cmp_keys(&1, &2), Ordering::Greater);
        assert!(o.precedes(&2, &1));
        assert!(o.follows(&1, &2));
    }

    #[test]
    fn reverse_is_involutive() {
        assert_eq!(SortOrder::Ascending.reverse(), SortOrder::Descending);
        assert_eq!(SortOrder::Ascending.reverse().reverse(), SortOrder::Ascending);
    }

    #[test]
    fn better_and_worse_pick_ends() {
        let o = SortOrder::Ascending;
        assert_eq!(*o.better(&3, &5), 3);
        assert_eq!(*o.worse(&3, &5), 5);
        let d = SortOrder::Descending;
        assert_eq!(*d.better(&3, &5), 5);
        assert_eq!(*d.worse(&3, &5), 3);
    }

    #[test]
    fn ties_prefer_second_argument_consistency() {
        // `better` on equal keys returns the second (not-preceding) one;
        // all that matters is the value equality.
        let o = SortOrder::Ascending;
        assert_eq!(*o.better(&4, &4), 4);
    }

    #[test]
    fn spec_retained_adds_offset() {
        let s = SortSpec::ascending(100).with_offset(20);
        assert_eq!(s.retained(), 120);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn spec_rejects_zero_limit_and_overflow() {
        assert!(SortSpec::ascending(0).validate().is_err());
        let s = SortSpec::ascending(u64::MAX).with_offset(1);
        assert!(s.validate().is_err());
        assert_eq!(s.retained(), u64::MAX); // saturates rather than panicking
    }
}
