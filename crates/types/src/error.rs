//! Crate-wide error type.
//!
//! A single enum covers the failure modes of the whole stack: storage I/O,
//! corrupt run files, configuration mistakes, and memory-budget violations.
//! Keeping one error type avoids a mesh of `From` conversions between the
//! substrate crates.

use std::fmt;

/// The error type used across all `histok` crates.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed (file-backed storage).
    Io(std::io::Error),
    /// A run file or block failed validation while being decoded.
    Corrupt(String),
    /// An operator or builder was configured inconsistently
    /// (e.g. `k == 0`, zero memory budget, fan-in < 2).
    InvalidConfig(String),
    /// A memory budget was exceeded where the implementation cannot spill
    /// (e.g. the purely in-memory baseline asked to hold more than its
    /// allocation).
    MemoryExceeded {
        /// Bytes the operation needed.
        needed: usize,
        /// Bytes the budget allows.
        budget: usize,
    },
    /// A fault injected by a test backend (failure-injection harness).
    Injected(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corrupt(msg) => write!(f, "corrupt run data: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::MemoryExceeded { needed, budget } => {
                write!(f, "memory budget exceeded: needed {needed} bytes, budget {budget} bytes")
            }
            Error::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias used across all `histok` crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = Error::Corrupt("bad magic".into());
        assert_eq!(e.to_string(), "corrupt run data: bad magic");
        let e = Error::MemoryExceeded { needed: 10, budget: 5 };
        assert!(e.to_string().contains("needed 10"));
        assert!(e.to_string().contains("budget 5"));
        let e = Error::InvalidConfig("k must be > 0".into());
        assert!(e.to_string().contains("k must be > 0"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::other("disk on fire");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let e = Error::Injected("boom".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
