//! The row type flowing through operators, runs and merges.

use bytes::{Buf, Bytes};

use crate::error::{Error, Result};
use crate::key::SortKey;
use crate::memsize::HeapSize;

/// One input/output row: the sort key plus an opaque payload.
///
/// The evaluation queries project *all* columns of the table (§5.1.1), so a
/// row is "key + everything else". `histok` never interprets the payload; it
/// is carried as [`Bytes`] so cloning a row while it sits in a priority
/// queue or merge buffer is cheap (refcount bump), matching how a columnar
/// engine would pass row references around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row<K> {
    /// Value of the sort expression for this row.
    pub key: K,
    /// The remaining columns, already serialized by the producer.
    pub payload: Bytes,
}

impl<K: SortKey> Row<K> {
    /// Creates a row from a key and payload bytes.
    pub fn new(key: K, payload: impl Into<Bytes>) -> Self {
        Row { key, payload: payload.into() }
    }

    /// A row with an empty payload — handy in tests and analysis where only
    /// keys matter.
    pub fn key_only(key: K) -> Self {
        Row { key, payload: Bytes::new() }
    }

    /// Bytes this row occupies in a run file: key encoding plus a `u32`
    /// payload-length prefix plus the payload.
    pub fn encoded_len(&self) -> usize {
        self.key.encoded_len() + 4 + self.payload.len()
    }

    /// Appends the run-file encoding of this row to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        self.key.encode(buf);
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.payload);
    }

    /// Decodes one row from the front of `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self> {
        let key = K::decode(buf)?;
        if buf.remaining() < 4 {
            return Err(Error::Corrupt("truncated row: missing payload length".into()));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(Error::Corrupt(format!(
                "truncated row: payload claims {len} bytes, {} available",
                buf.remaining()
            )));
        }
        let payload = buf.copy_to_bytes(len);
        Ok(Row { key, payload })
    }
}

impl<K: HeapSize> HeapSize for Row<K> {
    fn heap_size(&self) -> usize {
        self.key.heap_size() + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::F64Key;

    #[test]
    fn row_roundtrips_through_encoding() {
        let row = Row::new(42u64, vec![1u8, 2, 3]);
        let mut buf = Vec::new();
        row.encode(&mut buf);
        assert_eq!(buf.len(), row.encoded_len());
        let mut slice = &buf[..];
        let back: Row<u64> = Row::decode(&mut slice).unwrap();
        assert_eq!(back, row);
        assert!(slice.is_empty());
    }

    #[test]
    fn key_only_row_has_empty_payload() {
        let row = Row::key_only(F64Key(0.5));
        assert!(row.payload.is_empty());
        assert_eq!(row.encoded_len(), 8 + 4);
    }

    #[test]
    fn multiple_rows_decode_sequentially() {
        let rows: Vec<Row<u64>> = (0..10).map(|i| Row::new(i, vec![i as u8; i as usize])).collect();
        let mut buf = Vec::new();
        for r in &rows {
            r.encode(&mut buf);
        }
        let mut slice = &buf[..];
        for expected in &rows {
            let got: Row<u64> = Row::decode(&mut slice).unwrap();
            assert_eq!(&got, expected);
        }
        assert!(slice.is_empty());
    }

    #[test]
    fn truncated_payload_is_corrupt() {
        let row = Row::new(7u64, vec![9u8; 16]);
        let mut buf = Vec::new();
        row.encode(&mut buf);
        let mut short = &buf[..buf.len() - 1];
        assert!(matches!(Row::<u64>::decode(&mut short), Err(Error::Corrupt(_))));
        let mut no_len = &buf[..10]; // key present, length prefix truncated
        assert!(matches!(Row::<u64>::decode(&mut no_len), Err(Error::Corrupt(_))));
    }

    #[test]
    fn heap_size_counts_payload() {
        let row = Row::new(1u64, vec![0u8; 100]);
        assert_eq!(row.heap_size(), 100);
    }
}
