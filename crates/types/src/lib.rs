//! # histok-types
//!
//! Foundational value types shared by every `histok` crate:
//!
//! * [`SortKey`] — the trait a sort-column value must implement to flow
//!   through run generation, histograms and merging. Implementations are
//!   provided for the integer types, a total-ordered `f64` wrapper
//!   ([`F64Key`]), byte strings ([`BytesKey`]) and pairs of keys.
//! * [`Row`] — a sort key plus an opaque payload, the unit of data the
//!   top-k operators consume and produce.
//! * [`SortOrder`] / [`SortSpec`] — the direction requested by the query's
//!   `ORDER BY ... LIMIT k` clause. All operators are direction-agnostic;
//!   comparisons always go through [`SortOrder::cmp_keys`].
//! * [`Error`] / [`Result`] — the crate-wide error type.
//! * [`HeapSize`] — byte-level memory accounting used by the operators'
//!   memory budgets.
//! * [`PhaseTimer`] / [`LatencyHistogram`] — std-only observability
//!   primitives: per-phase wall-clock attribution and log₂-bucketed I/O
//!   latency histograms, shared by the storage and operator layers.
//! * [`JsonValue`] — a dependency-free JSON value used by the benchmark
//!   harness to emit machine-readable metrics reports.
//! * [`Ovc`] — offset-value codes over the keys' order-preserving
//!   normalized byte strings ([`SortKey::norm_encode`]), letting merge
//!   loops decide most comparisons with a single `u64` compare.
//! * [`Aggregator`] / [`AggregateOp`] — payload folding for in-sort
//!   duplicate removal and grouped aggregation.

#![deny(missing_docs)]

pub mod agg;
pub mod batch;
pub mod error;
pub mod json;
pub mod key;
pub mod memsize;
pub mod norm;
pub mod order;
pub mod row;
pub mod timing;

pub use agg::{decode_count, decode_f64, encode_f64, AggregateOp, Aggregator};
pub use batch::RowBatch;
pub use bytes::Bytes;
pub use error::{Error, Result};
pub use json::JsonValue;
pub use key::{prefix_of_norm, BytesKey, F64Key, KeyPair, SortKey};
pub use memsize::HeapSize;
pub use norm::{norm_cmp, ovc_resolve, Ovc, OvcResolution};
pub use order::{SortOrder, SortSpec};
pub use row::Row;
pub use timing::{LatencyHistogram, LatencySnapshot, Phase, PhaseTimer, PhaseTotals};
