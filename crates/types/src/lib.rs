//! # histok-types
//!
//! Foundational value types shared by every `histok` crate:
//!
//! * [`SortKey`] — the trait a sort-column value must implement to flow
//!   through run generation, histograms and merging. Implementations are
//!   provided for the integer types, a total-ordered `f64` wrapper
//!   ([`F64Key`]), byte strings ([`BytesKey`]) and pairs of keys.
//! * [`Row`] — a sort key plus an opaque payload, the unit of data the
//!   top-k operators consume and produce.
//! * [`SortOrder`] / [`SortSpec`] — the direction requested by the query's
//!   `ORDER BY ... LIMIT k` clause. All operators are direction-agnostic;
//!   comparisons always go through [`SortOrder::cmp_keys`].
//! * [`Error`] / [`Result`] — the crate-wide error type.
//! * [`HeapSize`] — byte-level memory accounting used by the operators'
//!   memory budgets.

#![deny(missing_docs)]

pub mod error;
pub mod key;
pub mod memsize;
pub mod order;
pub mod row;

pub use error::{Error, Result};
pub use key::{BytesKey, F64Key, KeyPair, SortKey};
pub use memsize::HeapSize;
pub use order::{SortOrder, SortSpec};
pub use row::Row;
