//! Columnar row batches for the batched merge / run-generation hot path.
//!
//! A [`RowBatch`] is a vector of rows plus a parallel *code column*: the
//! 8-byte normalized prefix ([`SortKey::norm_prefix`]) of every row's key,
//! computed once when the batch is built (at block-decode time for spilled
//! runs) and reused by every consumer — loser-tree duels, cutoff filtering,
//! radix run generation and run-writer order checks all read the `u64`
//! column instead of touching key bytes.
//!
//! The prefix column stores the *raw* (ascending-order) prefix; descending
//! consumers complement it (`!p`) at the point of comparison, so one batch
//! layout serves both directions.

use crate::key::SortKey;
use crate::row::Row;

/// A batch of rows with a pre-computed normalized-prefix column.
///
/// Invariant: `prefixes.len() == rows.len()` and
/// `prefixes[i] == rows[i].key.norm_prefix()` at all times.
#[derive(Debug, Clone, Default)]
pub struct RowBatch<K> {
    /// The rows, in batch order.
    pub rows: Vec<Row<K>>,
    /// `rows[i].key.norm_prefix()` for every row — the merge code column.
    pub prefixes: Vec<u64>,
}

impl<K: SortKey> RowBatch<K> {
    /// An empty batch.
    pub fn new() -> Self {
        RowBatch { rows: Vec::new(), prefixes: Vec::new() }
    }

    /// An empty batch with room for `cap` rows in both columns.
    pub fn with_capacity(cap: usize) -> Self {
        RowBatch { rows: Vec::with_capacity(cap), prefixes: Vec::with_capacity(cap) }
    }

    /// Builds a batch from rows, computing the prefix column in one pass.
    pub fn from_rows(rows: Vec<Row<K>>) -> Self {
        let prefixes = rows.iter().map(|r| r.key.norm_prefix()).collect();
        RowBatch { rows, prefixes }
    }

    /// Number of rows in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row, computing its prefix.
    #[inline]
    pub fn push(&mut self, row: Row<K>) {
        self.prefixes.push(row.key.norm_prefix());
        self.rows.push(row);
    }

    /// Appends a row whose prefix the caller already knows (e.g. taken from
    /// another batch's code column). Debug-asserts the invariant.
    #[inline]
    pub fn push_with_prefix(&mut self, row: Row<K>, prefix: u64) {
        debug_assert_eq!(prefix, row.key.norm_prefix());
        self.prefixes.push(prefix);
        self.rows.push(row);
    }

    /// Clears both columns, keeping their allocations.
    #[inline]
    pub fn clear(&mut self) {
        self.rows.clear();
        self.prefixes.clear();
    }

    /// Reserves room for `additional` more rows in both columns.
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
        self.prefixes.reserve(additional);
    }

    /// Truncates the batch to its first `len` rows.
    pub fn truncate(&mut self, len: usize) {
        self.rows.truncate(len);
        self.prefixes.truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{BytesKey, F64Key};

    #[test]
    fn from_rows_computes_prefix_column() {
        let rows: Vec<Row<u64>> = vec![Row::key_only(3), Row::key_only(1)];
        let batch = RowBatch::from_rows(rows);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.prefixes, vec![3u64.norm_prefix(), 1u64.norm_prefix()]);
    }

    #[test]
    fn push_maintains_invariant_for_every_key_type() {
        let mut b = RowBatch::with_capacity(4);
        b.push(Row::key_only(BytesKey::from("apple")));
        b.push(Row::key_only(BytesKey::from("")));
        assert_eq!(b.prefixes[0], BytesKey::from("apple").norm_prefix());
        assert_eq!(b.prefixes[1], BytesKey::from("").norm_prefix());

        let mut f = RowBatch::new();
        f.push(Row::key_only(F64Key(-1.5)));
        assert_eq!(f.prefixes[0], F64Key(-1.5).norm_prefix());
    }

    #[test]
    fn clear_and_truncate_keep_columns_aligned() {
        let mut b = RowBatch::from_rows(vec![Row::key_only(1u64), Row::key_only(2u64)]);
        b.truncate(1);
        assert_eq!(b.rows.len(), b.prefixes.len());
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.prefixes.len(), 0);
    }
}
