//! Phase timing and latency accounting for operators and storage.
//!
//! Observability primitives shared by every layer:
//!
//! * [`PhaseTimer`] / [`PhaseTotals`] — wall-clock attribution of an
//!   operator's lifetime to its coarse execution phases (in-memory
//!   accumulation, run generation, spill writes, final merge). A phase
//!   transition costs exactly one `Instant::now()` call; nothing here runs
//!   per row.
//! * [`LatencyHistogram`] / [`LatencySnapshot`] — fixed-size log₂-bucketed
//!   request-latency histograms for storage I/O, cheap enough to record on
//!   every block request (one atomic add per bucket/count/sum plus a
//!   `fetch_max`).
//!
//! All snapshot types are `Copy + Send` so they can be embedded in operator
//! metrics structs and diffed between points in time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The coarse execution phases of a top-k operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1: rows accumulate in the in-memory priority queue.
    InMemory,
    /// Phase 2: run generation (includes filtering and spilling decisions).
    RunGeneration,
    /// Final merge: reading runs back and producing output rows.
    FinalMerge,
}

/// Accumulated nanoseconds per phase.
///
/// `spill_write_ns` is not driven by [`PhaseTimer`] (spill writes happen
/// *inside* run generation); operators populate it from the storage layer's
/// write-latency histogram so the breakdown still sums sensibly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Time spent in the in-memory priority-queue phase.
    pub in_memory_ns: u64,
    /// Time spent in the run-generation phase (spill writes included).
    pub run_generation_ns: u64,
    /// Time spent issuing spill-write requests (subset of run generation,
    /// measured by the storage layer).
    pub spill_write_ns: u64,
    /// Time spent producing the final merged output stream.
    pub final_merge_ns: u64,
}

impl PhaseTotals {
    /// Sum of the timer-driven phases (spill writes excluded — they are a
    /// subset of run generation, not an additional phase).
    pub fn total_ns(&self) -> u64 {
        self.in_memory_ns.saturating_add(self.run_generation_ns).saturating_add(self.final_merge_ns)
    }

    /// Element-wise sum, used when aggregating per-worker totals.
    pub fn merged(&self, other: &PhaseTotals) -> PhaseTotals {
        PhaseTotals {
            in_memory_ns: self.in_memory_ns.saturating_add(other.in_memory_ns),
            run_generation_ns: self.run_generation_ns.saturating_add(other.run_generation_ns),
            spill_write_ns: self.spill_write_ns.saturating_add(other.spill_write_ns),
            final_merge_ns: self.final_merge_ns.saturating_add(other.final_merge_ns),
        }
    }
}

/// Attributes wall-clock time to [`Phase`]s.
///
/// One phase is live at a time; [`PhaseTimer::enter`] closes the previous
/// phase and opens the next with a single `Instant::now()` call, so the
/// instrumentation cost is independent of row count.
#[derive(Debug)]
pub struct PhaseTimer {
    current: Option<(Phase, Instant)>,
    totals: PhaseTotals,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// An idle timer with zero totals.
    pub fn new() -> Self {
        PhaseTimer { current: None, totals: PhaseTotals::default() }
    }

    /// A timer already running `phase` (convenience for operators that are
    /// born in a phase).
    pub fn started(phase: Phase) -> Self {
        let mut t = Self::new();
        t.enter(phase);
        t
    }

    fn credit(&mut self, phase: Phase, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let slot = match phase {
            Phase::InMemory => &mut self.totals.in_memory_ns,
            Phase::RunGeneration => &mut self.totals.run_generation_ns,
            Phase::FinalMerge => &mut self.totals.final_merge_ns,
        };
        *slot = slot.saturating_add(ns);
    }

    /// Closes the live phase (if any) and opens `phase`. Re-entering the
    /// live phase banks its elapsed time and restarts it.
    pub fn enter(&mut self, phase: Phase) {
        let now = Instant::now();
        if let Some((prev, since)) = self.current.take() {
            self.credit(prev, now - since);
        }
        self.current = Some((phase, now));
    }

    /// Closes the live phase without opening another.
    pub fn stop(&mut self) {
        let now = Instant::now();
        if let Some((prev, since)) = self.current.take() {
            self.credit(prev, now - since);
        }
    }

    /// The phase currently being timed.
    pub fn current_phase(&self) -> Option<Phase> {
        self.current.map(|(p, _)| p)
    }

    /// Totals including the live phase's elapsed-so-far, without stopping.
    pub fn snapshot(&self) -> PhaseTotals {
        let mut totals = self.totals;
        if let Some((phase, since)) = self.current {
            let ns = since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let slot = match phase {
                Phase::InMemory => &mut totals.in_memory_ns,
                Phase::RunGeneration => &mut totals.run_generation_ns,
                Phase::FinalMerge => &mut totals.final_merge_ns,
            };
            *slot = slot.saturating_add(ns);
        }
        totals
    }
}

/// Number of log₂ latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 additionally holds 0 ns), so the
/// histogram spans 1 ns to ~4.3 s with the last bucket catching overflow.
pub const LATENCY_BUCKETS: usize = 32;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// A shared, thread-safe log₂-bucketed latency histogram.
///
/// Cloning is cheap (an `Arc` bump); all clones record into the same
/// buckets. Recording is four relaxed atomic operations — affordable per
/// storage block request, which is the intended granularity (never per row).
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    inner: Arc<HistogramInner>,
}

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// Upper edge (exclusive) of bucket `i` in nanoseconds.
fn bucket_upper_ns(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let inner = &*self.inner;
        inner.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.total_ns.fetch_add(ns, Ordering::Relaxed);
        inner.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> LatencySnapshot {
        let inner = &*self.inner;
        LatencySnapshot {
            buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
            count: inner.count.load(Ordering::Relaxed),
            total_ns: inner.total_ns.load(Ordering::Relaxed),
            max_ns: inner.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Sample counts per log₂ bucket (`buckets[i]` covers `[2^i, 2^(i+1))`
    /// ns; bucket 0 also holds zero-latency samples).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample latencies in nanoseconds.
    pub total_ns: u64,
    /// The largest single sample in nanoseconds.
    pub max_ns: u64,
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        LatencySnapshot { buckets: [0; LATENCY_BUCKETS], count: 0, total_ns: 0, max_ns: 0 }
    }
}

impl LatencySnapshot {
    /// The latency (ns) at quantile `q` in `[0, 1]`, estimated as the upper
    /// edge of the bucket where the cumulative count crosses `q · count`
    /// (capped at the observed maximum). Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency estimate in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency estimate in nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// Mean latency in nanoseconds (0 for an empty histogram).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Bucket-wise sum with `other`, used when aggregating sub-operator
    /// histograms (e.g. segments or groups) into one.
    pub fn merged(&self, other: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_add(other.buckets[i])),
            count: self.count.saturating_add(other.count),
            total_ns: self.total_ns.saturating_add(other.total_ns),
            max_ns: self.max_ns.max(other.max_ns),
        }
    }

    /// Bucket-wise difference `self - earlier`, saturating at zero. The
    /// `max_ns` of a diff is `self`'s max (maxima are not subtractable).
    pub fn since(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
            max_ns: self.max_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timer_attributes_time_to_phases() {
        let mut t = PhaseTimer::started(Phase::InMemory);
        std::thread::sleep(Duration::from_millis(5));
        t.enter(Phase::RunGeneration);
        std::thread::sleep(Duration::from_millis(5));
        t.enter(Phase::FinalMerge);
        t.stop();
        let totals = t.snapshot();
        assert!(totals.in_memory_ns >= 4_000_000, "in_memory {}", totals.in_memory_ns);
        assert!(totals.run_generation_ns >= 4_000_000);
        assert_eq!(t.current_phase(), None);
        assert_eq!(
            totals.total_ns(),
            totals.in_memory_ns + totals.run_generation_ns + totals.final_merge_ns
        );
    }

    #[test]
    fn phase_timer_snapshot_includes_live_phase() {
        let mut t = PhaseTimer::new();
        t.enter(Phase::FinalMerge);
        std::thread::sleep(Duration::from_millis(2));
        let snap = t.snapshot();
        assert!(snap.final_merge_ns > 0);
        assert_eq!(t.current_phase(), Some(Phase::FinalMerge));
    }

    #[test]
    fn phase_totals_merge_elementwise() {
        let a = PhaseTotals {
            in_memory_ns: 1,
            run_generation_ns: 2,
            spill_write_ns: 3,
            final_merge_ns: 4,
        };
        let b = PhaseTotals {
            in_memory_ns: 10,
            run_generation_ns: 20,
            spill_write_ns: 30,
            final_merge_ns: 40,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            PhaseTotals {
                in_memory_ns: 11,
                run_generation_ns: 22,
                spill_write_ns: 33,
                final_merge_ns: 44
            }
        );
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        h.record_ns(0); // bucket 0
        h.record_ns(1); // bucket 0
        h.record_ns(2); // bucket 1
        h.record_ns(3); // bucket 1
        h.record_ns(1024); // bucket 10
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.max_ns, 1024);
        assert_eq!(s.total_ns, 1030);
    }

    #[test]
    fn histogram_clones_share_state() {
        let a = LatencyHistogram::new();
        let b = a.clone();
        a.record(Duration::from_micros(3));
        b.record(Duration::from_micros(7));
        assert_eq!(a.snapshot().count, 2);
    }

    #[test]
    fn quantiles_are_monotonic_and_bounded() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record_ns(i * 1000); // 0 .. 999 µs
        }
        let s = h.snapshot();
        let p50 = s.p50_ns();
        let p95 = s.p95_ns();
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        assert!(p95 <= s.max_ns);
        assert!(p50 >= 262_144, "p50 {p50} implausibly low"); // ≥ 2^18 ns
        assert_eq!(s.quantile_ns(1.0), s.max_ns);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.p50_ns(), 0);
        assert_eq!(s.p95_ns(), 0);
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn snapshot_diff_subtracts_counts() {
        let h = LatencyHistogram::new();
        h.record_ns(100);
        let early = h.snapshot();
        h.record_ns(200);
        h.record_ns(300);
        let d = h.snapshot().since(&early);
        assert_eq!(d.count, 2);
        assert_eq!(d.total_ns, 500);
    }

    #[test]
    fn huge_samples_land_in_last_bucket() {
        let h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(s.max_ns, u64::MAX);
    }
}
