//! Byte-level memory accounting.
//!
//! Operators in `histok` run under an explicit memory budget, mirroring the
//! paper's setting where "each thread is only allocated a small fraction of
//! the total main memory" (§2.1, Resource Provisioning). [`HeapSize`]
//! reports the *owned heap* bytes of a value — the bytes that would be freed
//! if the value were dropped — excluding the inline `size_of` portion, which
//! callers add themselves where relevant.

/// Reports how many heap bytes a value owns.
pub trait HeapSize {
    /// Owned heap bytes (excluding `std::mem::size_of::<Self>()`).
    fn heap_size(&self) -> usize;

    /// Total footprint: inline size plus owned heap bytes.
    fn total_size(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_size()
    }
}

macro_rules! zero_heap {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_size(&self) -> usize { 0 }
        })*
    };
}

zero_heap!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char);

impl HeapSize for crate::key::F64Key {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl HeapSize for crate::key::BytesKey {
    #[inline]
    fn heap_size(&self) -> usize {
        self.0.capacity()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

impl HeapSize for bytes::Bytes {
    /// `Bytes` may share its allocation; we attribute the full length to
    /// each handle, which is conservative (over-counts sharing) and
    /// therefore safe for budget enforcement.
    fn heap_size(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_no_heap() {
        assert_eq!(42u64.heap_size(), 0);
        assert_eq!(42u64.total_size(), 8);
        assert_eq!(1.5f64.heap_size(), 0);
    }

    #[test]
    fn vec_counts_capacity_not_len() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.heap_size(), 16 * 8);
    }

    #[test]
    fn nested_vec_counts_inner_heap() {
        let v: Vec<String> = vec![String::from("hello")];
        assert!(v.heap_size() >= std::mem::size_of::<String>() + 5);
    }

    #[test]
    fn option_delegates() {
        let some: Option<String> = Some("abcde".into());
        assert_eq!(some.heap_size(), 5);
        let none: Option<String> = None;
        assert_eq!(none.heap_size(), 0);
    }

    #[test]
    fn bytes_reports_len() {
        let b = bytes::Bytes::from(vec![0u8; 100]);
        assert_eq!(b.heap_size(), 100);
    }
}
