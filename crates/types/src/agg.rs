//! Payload aggregation for in-sort duplicate folding.
//!
//! When a sort runs in *fold* mode, rows with equal keys are combined into
//! one row the moment they meet — inside run generation, at every loser-tree
//! duel, and in the in-memory top-k store — instead of travelling through
//! the pipeline (and onto storage) as duplicates. An [`Aggregator`] decides
//! what "combined" means for the payload bytes: keep the first
//! representative (pure duplicate removal), count, sum, or min/max.
//!
//! The operators feed every raw input payload through [`Aggregator::init`]
//! once, so the sort pipeline only ever folds *accumulators* with
//! accumulators. Folding must therefore be commutative and associative:
//! runs meet in merge order, not input order.

use std::fmt::Debug;
use std::sync::Arc;

use bytes::Bytes;

/// Combines the payloads of equal-key rows during a fold-mode sort.
///
/// Implementations must be commutative and associative over accumulator
/// payloads: the sort gives no guarantee about the order in which
/// duplicates of one key meet.
pub trait Aggregator: Debug + Send + Sync {
    /// Converts one raw input payload into accumulator form. Called exactly
    /// once per input row, before the row enters the sort. The default is
    /// the identity (payloads that already are accumulators).
    fn init(&self, payload: Bytes) -> Bytes {
        payload
    }

    /// Folds the accumulator `dup` into the accumulator `acc`, returning
    /// the combined payload — or `None` to keep `acc` unchanged (the
    /// zero-copy path for FIRST and for min/max folds won by `acc`).
    fn fold(&self, acc: &Bytes, dup: &Bytes) -> Option<Bytes>;

    /// Decodes an accumulator into the numeric aggregate value, for
    /// operators that rank groups by it. `None` when the aggregate has no
    /// numeric reading (FIRST).
    fn value(&self, acc: &Bytes) -> Option<f64> {
        let _ = acc;
        None
    }
}

/// The built-in aggregation functions, selectable from a config.
///
/// The numeric aggregates use fixed 8-byte little-endian accumulators:
/// `Count` holds a `u64`, `Sum`/`Min`/`Max` hold an `f64` (initialize rows
/// with [`encode_f64`]). A malformed (short) accumulator reads as zero
/// rather than failing: folding happens deep inside the sort hot path,
/// where there is no error channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    /// Keep one representative payload per key — pure duplicate removal.
    /// Which duplicate survives is deterministic for a fixed run/merge
    /// plan but is *not* guaranteed to be the first in input order.
    First,
    /// Number of input rows per key (`u64` accumulator; the input payload
    /// is ignored and replaced by a count of 1).
    Count,
    /// Sum of the input payloads read as little-endian `f64`.
    Sum,
    /// Minimum input payload under `f64::total_cmp`.
    Min,
    /// Maximum input payload under `f64::total_cmp`.
    Max,
}

impl AggregateOp {
    /// The aggregator implementing this function.
    pub fn aggregator(self) -> Arc<dyn Aggregator> {
        match self {
            AggregateOp::First => Arc::new(FoldFirst),
            AggregateOp::Count => Arc::new(FoldCount),
            AggregateOp::Sum => Arc::new(FoldSum),
            AggregateOp::Min => Arc::new(FoldMinMax { max: false }),
            AggregateOp::Max => Arc::new(FoldMinMax { max: true }),
        }
    }

    /// A short label for reports ("first", "count", …).
    pub fn label(&self) -> &'static str {
        match self {
            AggregateOp::First => "first",
            AggregateOp::Count => "count",
            AggregateOp::Sum => "sum",
            AggregateOp::Min => "min",
            AggregateOp::Max => "max",
        }
    }
}

/// Encodes an `f64` as a `Sum`/`Min`/`Max` payload/accumulator.
pub fn encode_f64(v: f64) -> Bytes {
    Bytes::copy_from_slice(&v.to_le_bytes())
}

/// Reads an `f64` accumulator (zero when malformed).
pub fn decode_f64(acc: &[u8]) -> f64 {
    match acc.get(..8) {
        Some(b) => f64::from_le_bytes(b.try_into().expect("8 bytes")),
        None => 0.0,
    }
}

/// Reads a `Count` accumulator (zero when malformed).
pub fn decode_count(acc: &[u8]) -> u64 {
    match acc.get(..8) {
        Some(b) => u64::from_le_bytes(b.try_into().expect("8 bytes")),
        None => 0,
    }
}

#[derive(Debug)]
struct FoldFirst;

impl Aggregator for FoldFirst {
    fn fold(&self, _acc: &Bytes, _dup: &Bytes) -> Option<Bytes> {
        None
    }
}

#[derive(Debug)]
struct FoldCount;

impl Aggregator for FoldCount {
    fn init(&self, _payload: Bytes) -> Bytes {
        Bytes::copy_from_slice(&1u64.to_le_bytes())
    }
    fn fold(&self, acc: &Bytes, dup: &Bytes) -> Option<Bytes> {
        let n = decode_count(acc).saturating_add(decode_count(dup));
        Some(Bytes::copy_from_slice(&n.to_le_bytes()))
    }
    fn value(&self, acc: &Bytes) -> Option<f64> {
        Some(decode_count(acc) as f64)
    }
}

#[derive(Debug)]
struct FoldSum;

impl Aggregator for FoldSum {
    fn fold(&self, acc: &Bytes, dup: &Bytes) -> Option<Bytes> {
        Some(encode_f64(decode_f64(acc) + decode_f64(dup)))
    }
    fn value(&self, acc: &Bytes) -> Option<f64> {
        Some(decode_f64(acc))
    }
}

#[derive(Debug)]
struct FoldMinMax {
    max: bool,
}

impl Aggregator for FoldMinMax {
    fn fold(&self, acc: &Bytes, dup: &Bytes) -> Option<Bytes> {
        let keep_acc = match decode_f64(acc).total_cmp(&decode_f64(dup)) {
            std::cmp::Ordering::Less => !self.max,
            std::cmp::Ordering::Equal => true,
            std::cmp::Ordering::Greater => self.max,
        };
        if keep_acc {
            None
        } else {
            Some(dup.clone())
        }
    }
    fn value(&self, acc: &Bytes) -> Option<f64> {
        Some(decode_f64(acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_all(op: AggregateOp, values: &[f64]) -> Bytes {
        let agg = op.aggregator();
        let mut accs: Vec<Bytes> = values.iter().map(|&v| agg.init(encode_f64(v))).collect();
        let mut acc = accs.remove(0);
        for dup in accs {
            if let Some(next) = agg.fold(&acc, &dup) {
                acc = next;
            }
        }
        acc
    }

    #[test]
    fn count_counts_rows() {
        let acc = fold_all(AggregateOp::Count, &[9.0, 9.0, 9.0]);
        assert_eq!(decode_count(&acc), 3);
        assert_eq!(AggregateOp::Count.aggregator().value(&acc), Some(3.0));
    }

    #[test]
    fn sum_adds_values() {
        let acc = fold_all(AggregateOp::Sum, &[1.5, 2.0, 3.25]);
        assert_eq!(decode_f64(&acc), 6.75);
    }

    #[test]
    fn min_max_pick_ends() {
        assert_eq!(decode_f64(&fold_all(AggregateOp::Min, &[3.0, -1.0, 2.0])), -1.0);
        assert_eq!(decode_f64(&fold_all(AggregateOp::Max, &[3.0, -1.0, 2.0])), 3.0);
    }

    #[test]
    fn first_keeps_the_accumulator() {
        let agg = AggregateOp::First.aggregator();
        let a = Bytes::copy_from_slice(b"keep me");
        assert_eq!(agg.fold(&a, &Bytes::copy_from_slice(b"drop me")), None);
        assert_eq!(agg.value(&a), None);
    }

    #[test]
    fn malformed_accumulators_read_as_zero() {
        assert_eq!(decode_f64(b"abc"), 0.0);
        assert_eq!(decode_count(b""), 0);
        let acc = AggregateOp::Sum
            .aggregator()
            .fold(&Bytes::copy_from_slice(b"xy"), &encode_f64(4.0))
            .unwrap();
        assert_eq!(decode_f64(&acc), 4.0);
    }

    #[test]
    fn folds_are_order_insensitive() {
        for op in [AggregateOp::Count, AggregateOp::Sum, AggregateOp::Min, AggregateOp::Max] {
            let fwd = fold_all(op, &[1.0, 5.0, 2.0, 2.0]);
            let rev = fold_all(op, &[2.0, 2.0, 5.0, 1.0]);
            assert_eq!(fwd, rev, "{}", op.label());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AggregateOp::First.label(), "first");
        assert_eq!(AggregateOp::Sum.label(), "sum");
    }
}
