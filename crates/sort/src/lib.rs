//! # histok-sort
//!
//! The sorting substrate under the top-k operators:
//!
//! * [`MemoryBudget`] — byte accounting for an operator's workspace.
//! * [`RunGenerator`] implementations — [`ReplacementSelection`] (the
//!   paper's production choice, §5.1.2: pipelined, no stop-the-world sort,
//!   runs ~2× memory, optional run-size limit) and [`LoadSortStore`]
//!   (quicksort runs — what PostgreSQL does, §5.2).
//! * [`SpillObserver`] — the hook through which the histogram cutoff filter
//!   of `histok-core` watches and vetoes spills (Algorithm 1 lines 8–13).
//! * [`LoserTree`] — the classic tournament merge over any number of
//!   sources, plus multi-level merge planning with the paper's §4.1 top-k
//!   merge policies (lowest-key runs first, early stop at `k` rows or at
//!   the cutoff key).
//! * [`ExternalSorter`] — a complete external merge sort built from those
//!   parts (the traditional baseline's engine).

#![deny(missing_docs)]

pub mod budget;
pub mod cascade;
pub mod cmp_stats;
pub mod external;
pub mod fold;
pub mod heap;
pub mod loser_tree;
pub mod merge;
pub mod observer;
pub mod partition;
pub mod run_gen;
pub mod source;

pub use budget::{row_footprint, BudgetHandle, MemoryBudget};
pub use cascade::{plan_merges_cascade, plan_pass_groups, CascadeStats, SharedCutoff};
pub use cmp_stats::{CmpSnapshot, CmpStats};
pub use external::ExternalSorter;
pub use fold::{FoldSnapshot, FoldSpec, FoldStats};
pub use heap::BinaryHeapBy;
pub use loser_tree::LoserTree;
pub use merge::{
    merge_runs_to_new, merge_runs_to_new_shared, merge_runs_to_new_tuned, merge_sources,
    merge_sources_tuned, open_source, plan_merges, plan_merges_legacy, plan_merges_tuned,
    BatchedMerge, MergeConfig, MergePolicy, MergeSource, MergeTuning,
};
pub use observer::{NoopObserver, SpillObserver};
pub use partition::{
    merge_runs_partitioned, merge_sources_partitioned, plan_partitions, run_overlaps,
    split_sorted_rows, PartitionAttempt, PartitionCounters, PartitionedMerge,
};
pub use run_gen::{BatchSort, LoadSortStore, ReplacementSelection, ResiduePolicy, RunGenerator};
pub use source::{IterSource, RowSource, DEFAULT_BATCH_ROWS};
