//! Cascade merge planning and parallel pass execution.
//!
//! [`plan_merges_cascade`] replaces the greedy one-step reduction loop
//! (kept as [`plan_merges_legacy`](crate::merge::plan_merges_legacy) for
//! baseline benchmarks) with an explicit pass structure:
//!
//! 1. **Plan.** Rank the catalog once per pass and cut it into merge
//!    groups of at most `fan_in` runs ([`plan_pass_groups`]). When one
//!    more reduction pass suffices, the pass merges only the
//!    `excess + merges` best-ranked runs (classic minimal-rewrite
//!    cascade); otherwise it is a full pass of maximal groups. Group 0
//!    always holds the best-ranked runs — under
//!    [`MergePolicy::LowestKeyFirst`] the cutoff-relevant ones — so the
//!    merge most likely to refine the top-k cutoff executes first.
//! 2. **Execute.** The groups of a pass are independent, so up to
//!    `workers` threads drain them concurrently, all sharing the
//!    process [`IoScheduler`](histok_storage::IoScheduler) through the
//!    [`MergeTuning`] and one [`SharedCutoff`] cell. A merge that
//!    completes `limit` rows publishes its last key; merges still in
//!    flight re-read the cell between output batches and truncate at
//!    the tighter key (paper §4.1, generalized to concurrent cascades).
//! 3. **Prune.** Between passes — and again when a worker picks up a
//!    group — any run whose `first_key` sorts strictly after the
//!    refined cutoff is removed from the catalog *without being
//!    opened*; its blocks are booked as skipped I/O.
//!
//! Correctness of the shared cutoff does not depend on timing: a merge
//! that produced `limit` rows ending at key `L` proves at least `limit`
//! rows at or before `L` exist globally, so no row strictly after `L`
//! can be in the top `limit` — whichever merge observes the tightened
//! key, and however late. Pruning a run whose `first_key` strictly
//! follows the cutoff drops exactly the rows cutoff clipping would have
//! dropped (ties survive, [`SortOrder::follows`] is strict), so it is
//! cutoff truncation minus the reads.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use histok_storage::{RunCatalog, RunMeta};
use histok_types::{Error, Result, SortKey, SortOrder};
use parking_lot::{Mutex, RwLock};

#[allow(unused_imports)] // doc links
use crate::merge::MergePolicy;
use crate::merge::{merge_runs_to_new_shared, rank_candidates, MergeConfig, MergeTuning};

/// A top-k cutoff key shared by every merge of a cascade, in flight or
/// not. Readers poll [`SharedCutoff::generation`] (one relaxed atomic
/// load per output batch) and take the read lock only when the
/// generation moved — the same publish-only-on-move discipline as the
/// parallel operator's `Shared` filter cell.
pub struct SharedCutoff<K: SortKey> {
    order: SortOrder,
    generation: AtomicU64,
    key: RwLock<Option<K>>,
}

impl<K: SortKey> SharedCutoff<K> {
    /// A cell seeded with the operator's current cutoff (if any).
    pub fn new(order: SortOrder, initial: Option<K>) -> Self {
        SharedCutoff { order, generation: AtomicU64::new(0), key: RwLock::new(initial) }
    }

    /// The sort order the cell compares candidate keys under.
    pub fn order(&self) -> SortOrder {
        self.order
    }

    /// Bumped every time the cutoff moves; cheap to poll.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The current cutoff key.
    pub fn get(&self) -> Option<K> {
        self.key.read().clone()
    }

    /// Publishes `candidate` iff it is strictly tighter than the current
    /// cutoff. Returns whether the cell moved. Loose candidates don't
    /// touch the write lock (checked under the read lock first).
    pub fn tighten(&self, candidate: &K) -> bool {
        {
            let cur = self.key.read();
            if cur.as_ref().is_some_and(|c| !self.order.precedes(candidate, c)) {
                return false;
            }
        }
        let mut cur = self.key.write();
        let tighter = cur.as_ref().is_none_or(|c| self.order.precedes(candidate, c));
        if tighter {
            *cur = Some(candidate.clone());
            self.generation.fetch_add(1, Ordering::Release);
        }
        tighter
    }
}

/// Counters a cascade accumulates across its passes; surfaced through
/// `OperatorMetrics` (see docs/METRICS.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Intermediate merge passes executed (0 when the catalog already
    /// fit the fan-in).
    pub merge_passes: u64,
    /// Intermediate merges actually drained (groups whose inputs were
    /// all pruned don't count).
    pub intermediate_merges: u64,
    /// Runs deleted without being opened because their `first_key` lay
    /// strictly past the refined cutoff.
    pub runs_pruned: u64,
    /// Nanoseconds the coordinating thread spent blocked joining pass
    /// workers after finishing its own share of the groups.
    pub cascade_wait_ns: u64,
}

impl CascadeStats {
    /// Field-wise sum, for aggregating sub-operator cascades.
    pub fn merged(&self, other: &CascadeStats) -> CascadeStats {
        CascadeStats {
            merge_passes: self.merge_passes + other.merge_passes,
            intermediate_merges: self.intermediate_merges + other.intermediate_merges,
            runs_pruned: self.runs_pruned + other.runs_pruned,
            cascade_wait_ns: self.cascade_wait_ns + other.cascade_wait_ns,
        }
    }
}

/// Cuts `n` ranked runs into the merge groups of one pass, each group a
/// range of at most `fan_in` (and at least 2) indices into the ranked
/// list. Empty when `n` already fits the fan-in.
///
/// When a single reduction pass can finish the cascade, the pass merges
/// only the `excess + merges` best-ranked runs — the minimal rewrite
/// that lands exactly on `fan_in` survivors — in near-equal groups.
/// Otherwise every run participates in maximal `fan_in`-sized groups
/// (a leftover singleton passes through unmerged).
pub fn plan_pass_groups(n: usize, fan_in: usize) -> Vec<Range<usize>> {
    debug_assert!(fan_in >= 2);
    if n <= fan_in {
        return Vec::new();
    }
    let excess = n - fan_in;
    let merges = excess.div_ceil(fan_in - 1);
    let inputs = excess + merges;
    let mut groups = Vec::with_capacity(merges);
    if inputs <= n {
        // Final reduction pass: merge the `inputs` best-ranked runs in
        // `merges` near-equal groups; the rest survive untouched.
        let base = inputs / merges;
        let extra = inputs % merges;
        let mut start = 0;
        for g in 0..merges {
            let len = base + usize::from(g < extra);
            groups.push(start..start + len);
            start += len;
        }
    } else {
        // More than one pass to go: a full pass of maximal groups.
        let mut start = 0;
        while n - start >= 2 {
            let len = (n - start).min(fan_in);
            groups.push(start..start + len);
            start += len;
        }
    }
    groups
}

/// Shared per-pass state: the group dispenser, pass counters, and the
/// first error any worker hit (later workers stop picking up groups).
struct PassState {
    next_group: AtomicUsize,
    merges: AtomicU64,
    pruned: AtomicU64,
    error: Mutex<Option<Error>>,
}

/// What survived one merge group: the merged output run, the lone live
/// member of a group otherwise emptied by pruning, or nothing at all.
/// One slot per group, filled by whichever worker drained it — the pass
/// reassembles the run list from the slots *in group order*, so the
/// cascade's run ordering (and therefore every downstream tie-break) is
/// identical no matter how many workers raced or which finished first.
type GroupSlot<K> = Mutex<Option<Vec<RunMeta<K>>>>;

/// Runs the cascade until at most `config.fan_in` runs remain; returns
/// the final run set and the pass counters.
///
/// `limit`/`cutoff` truncate intermediate outputs — always safe for a
/// top-k (module docs), never used for a full sort. `workers == 1` (or a
/// single group) executes inline on the calling thread with no spawn,
/// byte-for-byte the serial cascade. The run ordering fed to each pass
/// (and returned at the end) is reassembled from per-group slots in
/// group order, never from the catalog's registration order — parallel
/// workers register outputs in completion order, and letting that
/// timing leak into ranking ties or final-merge input order would make
/// tie-breaking among duplicate keys depend on the worker count.
pub fn plan_merges_cascade<K: SortKey>(
    catalog: &RunCatalog<K>,
    config: &MergeConfig,
    limit: Option<u64>,
    cutoff: Option<&K>,
    tuning: &MergeTuning,
    workers: usize,
) -> Result<(Vec<RunMeta<K>>, CascadeStats)> {
    config.validate()?;
    let order = catalog.order();
    let workers = workers.max(1);
    let shared = SharedCutoff::new(order, cutoff.cloned());
    let mut stats = CascadeStats::default();
    let mut runs = catalog.runs();
    loop {
        // Prune cutoff-dead runs before planning, so they neither join
        // a merge group nor occupy a final fan-in slot.
        if let Some(cut) = shared.get() {
            let mut live = Vec::with_capacity(runs.len());
            for meta in runs {
                if run_is_dead(&meta, &cut, order) {
                    prune_run(catalog, &meta)?;
                    stats.runs_pruned += 1;
                } else {
                    live.push(meta);
                }
            }
            runs = live;
        }
        if runs.len() <= config.fan_in {
            return Ok((runs, stats));
        }
        rank_candidates(&mut runs, config.policy, order);
        let groups = plan_pass_groups(runs.len(), config.fan_in);
        stats.merge_passes += 1;
        let pass = PassState {
            next_group: AtomicUsize::new(0),
            merges: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            error: Mutex::new(None),
        };
        let slots: Vec<GroupSlot<K>> = groups.iter().map(|_| Mutex::new(None)).collect();
        let spawn = workers.min(groups.len()).saturating_sub(1);
        if spawn == 0 {
            run_groups(catalog, &runs, &groups, &slots, limit, &shared, tuning, &pass);
        } else {
            let mut idle_at = None;
            std::thread::scope(|s| {
                for _ in 0..spawn {
                    s.spawn(|| {
                        run_groups(catalog, &runs, &groups, &slots, limit, &shared, tuning, &pass)
                    });
                }
                run_groups(catalog, &runs, &groups, &slots, limit, &shared, tuning, &pass);
                idle_at = Some(Instant::now());
            });
            if let Some(t) = idle_at {
                stats.cascade_wait_ns += t.elapsed().as_nanos() as u64;
            }
        }
        stats.intermediate_merges += pass.merges.load(Ordering::Relaxed);
        stats.runs_pruned += pass.pruned.load(Ordering::Relaxed);
        let latched = pass.error.lock().take();
        if let Some(e) = latched {
            return Err(e);
        }
        // Next pass's input, in deterministic order: the ranked runs no
        // group touched, then each group's survivors in group order.
        let covered = groups.last().map_or(0, |g| g.end);
        let mut next = Vec::with_capacity(runs.len());
        next.extend_from_slice(&runs[covered..]);
        for slot in &slots {
            let survivors = slot.lock().take();
            next.extend(survivors.expect("error-free pass fills every group slot"));
        }
        runs = next;
    }
}

/// A run is dead iff every row in it sorts strictly after the cutoff,
/// i.e. its first (best) key already does. Ties survive, exactly like
/// cutoff clipping inside a merge.
fn run_is_dead<K: SortKey>(meta: &RunMeta<K>, cutoff: &K, order: SortOrder) -> bool {
    meta.first_key.as_ref().is_some_and(|f| order.follows(f, cutoff))
}

/// Deletes a dead run without opening it, booking its blocks as skipped
/// I/O (the reads a merge would have issued but never will).
fn prune_run<K: SortKey>(catalog: &RunCatalog<K>, meta: &RunMeta<K>) -> Result<()> {
    for block in &meta.blocks {
        catalog.stats().record_block_skip(block.payload_bytes as u64);
    }
    catalog.remove(&meta.name)
}

/// Worker loop: claim the next unclaimed group, merge it into its slot,
/// repeat until the dispenser is empty or another worker latched an
/// error.
#[allow(clippy::too_many_arguments)]
fn run_groups<K: SortKey>(
    catalog: &RunCatalog<K>,
    ranked: &[RunMeta<K>],
    groups: &[Range<usize>],
    slots: &[GroupSlot<K>],
    limit: Option<u64>,
    shared: &SharedCutoff<K>,
    tuning: &MergeTuning,
    pass: &PassState,
) {
    loop {
        if pass.error.lock().is_some() {
            return;
        }
        let g = pass.next_group.fetch_add(1, Ordering::Relaxed);
        let Some(range) = groups.get(g) else { return };
        match run_group(catalog, &ranked[range.clone()], limit, shared, tuning, pass) {
            Ok(survivors) => *slots[g].lock() = Some(survivors),
            Err(e) => {
                let mut latch = pass.error.lock();
                if latch.is_none() {
                    *latch = Some(e);
                }
                return;
            }
        }
    }
}

/// Merges one group: re-checks each member against the (possibly
/// tightened) shared cutoff first, pruning dead ones; a group left with
/// fewer than two live runs has nothing to merge. Returns the group's
/// survivors — the merged output, or the lone live member, or nothing
/// (everything pruned, or the cutoff clipped the output empty).
fn run_group<K: SortKey>(
    catalog: &RunCatalog<K>,
    members: &[RunMeta<K>],
    limit: Option<u64>,
    shared: &SharedCutoff<K>,
    tuning: &MergeTuning,
    pass: &PassState,
) -> Result<Vec<RunMeta<K>>> {
    let order = shared.order();
    let cut = shared.get();
    let mut live = Vec::with_capacity(members.len());
    for meta in members {
        if cut.as_ref().is_some_and(|c| run_is_dead(meta, c, order)) {
            prune_run(catalog, meta)?;
            pass.pruned.fetch_add(1, Ordering::Relaxed);
        } else {
            live.push(meta.clone());
        }
    }
    if live.len() < 2 {
        return Ok(live);
    }
    let merged = merge_runs_to_new_shared(catalog, &live, limit, shared, tuning)?;
    pass.merges.fetch_add(1, Ordering::Relaxed);
    if let (Some(lim), Some(last)) = (limit, &merged.last_key) {
        if merged.rows >= lim {
            // §4.1: `limit` rows end at `last`, so no later row can beat
            // it — publish for every merge still in flight.
            shared.tighten(last);
        }
    }
    if merged.is_empty() {
        return Ok(Vec::new());
    }
    Ok(vec![merged])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cutoff_moves_only_tighter() {
        let cell: SharedCutoff<u64> = SharedCutoff::new(SortOrder::Ascending, None);
        assert_eq!(cell.generation(), 0);
        assert!(cell.tighten(&50));
        assert_eq!(cell.get(), Some(50));
        let gen = cell.generation();
        assert!(!cell.tighten(&50), "equal key must not republish");
        assert!(!cell.tighten(&80), "looser key must not republish");
        assert_eq!(cell.generation(), gen);
        assert!(cell.tighten(&10));
        assert_eq!(cell.get(), Some(10));
        assert!(cell.generation() > gen);
    }

    #[test]
    fn shared_cutoff_respects_descending_order() {
        let cell: SharedCutoff<u64> = SharedCutoff::new(SortOrder::Descending, Some(50));
        assert!(!cell.tighten(&40), "40 sorts after 50 descending");
        assert!(cell.tighten(&60));
        assert_eq!(cell.get(), Some(60));
    }

    fn check_groups(n: usize, fan_in: usize) {
        let groups = plan_pass_groups(n, fan_in);
        if n <= fan_in {
            assert!(groups.is_empty());
            return;
        }
        let mut covered = 0;
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.start, covered, "groups must tile from the front");
            assert!(g.len() >= 2, "group {i} of {n}/{fan_in} too small: {g:?}");
            assert!(g.len() <= fan_in, "group {i} of {n}/{fan_in} too big: {g:?}");
            covered = g.end;
        }
        assert!(covered <= n);
        // The pass must strictly reduce the run count.
        let consumed: usize = groups.iter().map(|g| g.len()).sum();
        let after = n - consumed + groups.len();
        assert!(after < n, "pass over {n}/{fan_in} makes no progress");
    }

    #[test]
    fn pass_groups_are_well_formed_across_shapes() {
        for n in 2..200 {
            for fan_in in 2..20 {
                check_groups(n, fan_in);
            }
        }
        check_groups(512, 64);
        check_groups(1024, 32);
        check_groups(10_000, 64);
    }

    #[test]
    fn final_reduction_pass_lands_exactly_on_fan_in() {
        // 10 runs, fan-in 4: merging the 8 best in 2 groups of 4 leaves
        // exactly 4 survivors.
        let groups = plan_pass_groups(10, 4);
        assert_eq!(groups, vec![0..4, 4..8]);
        // 512 runs, fan-in 64: one pass of 8 near-equal merges.
        let groups = plan_pass_groups(512, 64);
        assert_eq!(groups.len(), 8);
        let consumed: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(512 - consumed + groups.len(), 64);
    }

    #[test]
    fn oversized_catalog_gets_full_passes() {
        // 6 runs at fan-in 2 can't finish in one pass: 3 maximal pairs.
        assert_eq!(plan_pass_groups(6, 2), vec![0..2, 2..4, 4..6]);
        // Odd count leaves the last run passing through unmerged.
        assert_eq!(plan_pass_groups(5, 2), vec![0..2, 2..4]);
    }

    #[test]
    fn cascade_stats_merge_sums_fields() {
        let a = CascadeStats {
            merge_passes: 1,
            intermediate_merges: 3,
            runs_pruned: 2,
            cascade_wait_ns: 10,
        };
        let b = CascadeStats {
            merge_passes: 2,
            intermediate_merges: 5,
            runs_pruned: 0,
            cascade_wait_ns: 7,
        };
        let m = a.merged(&b);
        assert_eq!(m.merge_passes, 3);
        assert_eq!(m.intermediate_merges, 8);
        assert_eq!(m.runs_pruned, 2);
        assert_eq!(m.cascade_wait_ns, 17);
    }
}
