//! Replacement selection — pipelined run generation.
//!
//! The classic tournament method (Knuth TAOCP vol. 3, §5.4.1): a selection
//! heap holds the memory workspace. The smallest buffered row (in output
//! order) that can still extend the current run is written next; incoming
//! rows smaller than the last written key are tagged for the *next* run.
//! Consumption of input never pauses for a sort — the property the paper
//! calls out as the reason F1 uses it ("does not require stopping the
//! consumption of the input", §3.1.3).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Arc;

use histok_storage::{RunCatalog, RunWriter};
use histok_types::{Result, Row, SortKey, SortOrder};

use crate::budget::{row_footprint, MemoryBudget};
use crate::cmp_stats::CmpStats;
use crate::fold::FoldSpec;
use crate::observer::SpillObserver;
use crate::run_gen::{ResiduePolicy, RunGenerator};

/// Fallback bytes-per-row estimate before any row has been observed.
const FALLBACK_ROW_BYTES: usize = 64;

/// One buffered row plus its run tag, arrival sequence (for stability) and
/// the key's normalized 8-byte prefix (the sift fast path).
struct Entry<K> {
    run: u64,
    key: K,
    /// First 8 normalized key bytes — decides most sift comparisons with
    /// one integer compare (see [`SelectionHeap::before`]).
    prefix: u64,
    seq: u64,
    row: Row<K>,
    footprint: usize,
}

/// A minimal binary min-heap ordered by `(run, key in output order, seq)`.
///
/// Implemented locally because the ordering depends on a runtime
/// [`SortOrder`], which `std::collections::BinaryHeap` cannot capture
/// without allocating comparator wrappers per entry.
///
/// Unlike the loser tree, a sift-based heap has no stable "key each entry
/// last lost to" edge, so it cannot maintain true offset-value codes.
/// Instead each entry caches its normalized key *prefix*: differing
/// prefixes decide a comparison outright, and for fixed-width keys of at
/// most 8 bytes ([`SortKey::norm_prefix_is_exact`]) even equal prefixes
/// are decisive (the keys are equal). Only wider keys with equal prefixes
/// fall back to a full comparison.
struct SelectionHeap<K: SortKey> {
    items: Vec<Entry<K>>,
    order: SortOrder,
    ovc_enabled: bool,
    /// Comparisons decided on prefixes alone (`Cell`: `before` sits on
    /// shared references inside the sift loops).
    ovc_cmps: Cell<u64>,
    /// Comparisons that needed the full key.
    full_cmps: Cell<u64>,
}

impl<K: SortKey> SelectionHeap<K> {
    fn new(order: SortOrder) -> Self {
        SelectionHeap {
            items: Vec::new(),
            order,
            ovc_enabled: true,
            ovc_cmps: Cell::new(0),
            full_cmps: Cell::new(0),
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if `a` should be popped before `b`.
    fn before(&self, a: &Entry<K>, b: &Entry<K>) -> bool {
        match a.run.cmp(&b.run) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if self.ovc_enabled {
                    if a.prefix != b.prefix {
                        self.ovc_cmps.set(self.ovc_cmps.get() + 1);
                        return match self.order {
                            SortOrder::Ascending => a.prefix < b.prefix,
                            SortOrder::Descending => a.prefix > b.prefix,
                        };
                    }
                    if K::norm_prefix_is_exact() {
                        // Equal prefixes of a ≤ 8-byte fixed-width
                        // normalization: the keys are equal.
                        self.ovc_cmps.set(self.ovc_cmps.get() + 1);
                        return a.seq < b.seq;
                    }
                }
                self.full_cmps.set(self.full_cmps.get() + 1);
                match self.order.cmp_keys(&a.key, &b.key) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => a.seq < b.seq,
                }
            }
        }
    }

    fn push(&mut self, entry: Entry<K>) {
        self.items.push(entry);
        let mut i = self.items.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.before(&self.items[i], &self.items[parent]) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<Entry<K>> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let top = self.items.pop();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.items.len() && self.before(&self.items[l], &self.items[best]) {
                best = l;
            }
            if r < self.items.len() && self.before(&self.items[r], &self.items[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.items.swap(i, best);
            i = best;
        }
        top
    }

    fn peek(&self) -> Option<&Entry<K>> {
        self.items.first()
    }
}

/// Pipelined run generation by replacement selection.
pub struct ReplacementSelection<K: SortKey> {
    catalog: Arc<RunCatalog<K>>,
    heap: SelectionHeap<K>,
    budget: MemoryBudget,
    order: SortOrder,
    /// Run tag currently being written.
    current_tag: u64,
    /// Last key written to the open physical run (run-extension test).
    last_written: Option<K>,
    writer: Option<RunWriter<K>>,
    rows_in_run: u64,
    /// Optional cap on physical run length ("limit run size to k").
    run_limit: Option<u64>,
    seq: u64,
    /// Shared sink the heap's comparison counters flush into on drop.
    cmp_stats: Option<CmpStats>,
    /// Fold mode: an incoming row equal to the heap root (same run) is
    /// absorbed into the root instead of entering the heap.
    fold: Option<FoldSpec>,
    /// Rows absorbed by folding; flushed to the spec's stats on drop.
    rows_folded: u64,
    /// Encoded bytes of absorbed rows (write traffic saved before spill).
    bytes_folded: u64,
}

impl<K: SortKey> ReplacementSelection<K> {
    /// Creates a generator writing runs through `catalog` under a budget of
    /// `budget_bytes`.
    pub fn new(catalog: Arc<RunCatalog<K>>, budget_bytes: usize) -> Self {
        Self::with_budget(catalog, MemoryBudget::new(budget_bytes))
    }

    /// Creates a generator charging its workspace against `budget` — use a
    /// budget forked from a shared [`crate::BudgetHandle`] when an external
    /// lease governs the limit.
    pub fn with_budget(catalog: Arc<RunCatalog<K>>, budget: MemoryBudget) -> Self {
        let order = catalog.order();
        ReplacementSelection {
            catalog,
            heap: SelectionHeap::new(order),
            budget,
            order,
            current_tag: 0,
            last_written: None,
            writer: None,
            rows_in_run: 0,
            run_limit: None,
            seq: 0,
            cmp_stats: None,
            fold: None,
            rows_folded: 0,
            bytes_folded: 0,
        }
    }

    /// Caps each physical run at `limit` rows (the [Graefe'08] optimization:
    /// no run needs to be longer than the requested output).
    pub fn with_run_limit(mut self, limit: u64) -> Self {
        self.run_limit = Some(limit.max(1));
        self
    }

    /// Controls the normalized-prefix comparison fast path (on by default)
    /// and optionally attaches a shared counter sink (flushed on drop).
    pub fn with_ovc(mut self, enabled: bool, stats: Option<CmpStats>) -> Self {
        self.heap.ovc_enabled = enabled;
        self.cmp_stats = stats;
        self
    }

    /// Enables equal-key folding on heap insert: a row whose key equals
    /// the current heap root's (and that belongs to the same selection
    /// run) is folded into the root's payload instead of buffering and
    /// later spilling as a duplicate. Opportunistic — duplicates that
    /// never meet the root still spill and are folded at merge time.
    pub fn with_fold(mut self, fold: FoldSpec) -> Self {
        self.fold = Some(fold);
        self
    }

    /// The generator's estimate of the next run's length in rows:
    /// replacement selection produces runs ~2× the memory capacity on
    /// random input (Knuth), capped by the run limit.
    fn estimated_run_rows(&self) -> u64 {
        let cap = 2 * self.budget.capacity_rows(FALLBACK_ROW_BYTES);
        self.run_limit.map_or(cap, |l| l.min(cap)).max(1)
    }

    fn close_run(&mut self, obs: &mut dyn SpillObserver<K>) -> Result<()> {
        if let Some(writer) = self.writer.take() {
            let meta = writer.finish()?;
            self.catalog.register(meta)?;
            obs.run_finished();
        }
        self.last_written = None;
        self.rows_in_run = 0;
        Ok(())
    }

    /// Pops and disposes of exactly one heap entry (write or eliminate).
    fn spill_one(&mut self, obs: &mut dyn SpillObserver<K>) -> Result<()> {
        let entry = self.heap.pop().expect("spill_one on empty heap");
        self.budget.release(entry.footprint);
        if entry.run != self.current_tag {
            debug_assert!(entry.run > self.current_tag);
            self.close_run(obs)?;
            self.current_tag = entry.run;
        }
        // Algorithm 1 line 11: the cutoff may have sharpened since this row
        // was admitted — check again before paying for the write.
        if obs.should_eliminate(&entry.key) {
            return Ok(());
        }
        if self.writer.is_none() {
            self.writer = Some(self.catalog.start_run()?);
            obs.run_started(self.estimated_run_rows());
        }
        let writer = self.writer.as_mut().expect("writer just ensured");
        writer.append(&entry.row)?;
        obs.row_spilled(&entry.key);
        self.last_written = Some(entry.key);
        self.rows_in_run += 1;
        if self.run_limit.is_some_and(|l| self.rows_in_run >= l) {
            // Physical cap reached: seal this run; the same selection run
            // continues into a fresh file.
            self.close_run(obs)?;
        }
        Ok(())
    }
}

impl<K: SortKey> RunGenerator<K> for ReplacementSelection<K> {
    fn push(&mut self, row: Row<K>, obs: &mut dyn SpillObserver<K>) -> Result<()> {
        let footprint = row_footprint(&row);
        // Deferment: a row that cannot extend the current run goes to the
        // next one.
        let tag = match &self.last_written {
            Some(last) if self.order.precedes(&row.key, last) => self.current_tag + 1,
            _ => self.current_tag,
        };
        let key = row.key.clone();
        let prefix = if self.heap.ovc_enabled { key.norm_prefix() } else { 0 };
        let can_fold = self.fold.is_some()
            && match self.heap.peek() {
                Some(root) => {
                    root.run == tag
                        && (!self.heap.ovc_enabled || root.prefix == prefix)
                        && root.key == key
                }
                None => false,
            };
        if can_fold {
            // Fold on insert: the duplicate never enters the heap (and
            // never spills), so no budget is charged for it.
            let agg = self.fold.as_ref().expect("fold checked above").agg.clone();
            self.bytes_folded += row.encoded_len() as u64;
            self.rows_folded += 1;
            let root = &mut self.heap.items[0];
            if let Some(folded) = agg.fold(&root.row.payload, &row.payload) {
                root.row.payload = folded;
                let new_footprint = row_footprint(&root.row);
                self.budget.resize_row(root.footprint, new_footprint);
                root.footprint = new_footprint;
            }
        } else {
            self.heap.push(Entry { run: tag, key, prefix, seq: self.seq, row, footprint });
            self.seq += 1;
            self.budget.charge(footprint);
        }
        while self.budget.used() > self.budget.limit() && self.heap.len() > 1 {
            self.spill_one(obs)?;
        }
        Ok(())
    }

    fn finish(
        &mut self,
        obs: &mut dyn SpillObserver<K>,
        residue: ResiduePolicy,
    ) -> Result<Vec<Vec<Row<K>>>> {
        match residue {
            ResiduePolicy::SpillToRuns => {
                while !self.heap.is_empty() {
                    self.spill_one(obs)?;
                }
                self.close_run(obs)?;
                Ok(Vec::new())
            }
            ResiduePolicy::KeepInMemory => {
                // Drain by tag: each tag's pops come out in output order.
                let mut by_tag: BTreeMap<u64, Vec<Row<K>>> = BTreeMap::new();
                while let Some(entry) = {
                    let _ = self.heap.peek();
                    self.heap.pop()
                } {
                    self.budget.release(entry.footprint);
                    if obs.should_eliminate(&entry.key) {
                        continue;
                    }
                    by_tag.entry(entry.run).or_default().push(entry.row);
                }
                self.close_run(obs)?;
                Ok(by_tag.into_values().filter(|v| !v.is_empty()).collect())
            }
        }
    }

    fn buffered_rows(&self) -> usize {
        self.heap.len()
    }

    fn buffered_bytes(&self) -> usize {
        self.budget.used()
    }

    fn cmp_counts(&self) -> (u64, u64) {
        (self.heap.ovc_cmps.get(), self.heap.full_cmps.get())
    }

    fn set_fold(&mut self, fold: Option<FoldSpec>) {
        self.fold = fold;
    }
}

impl<K: SortKey> Drop for ReplacementSelection<K> {
    fn drop(&mut self) {
        if let Some(stats) = &self.cmp_stats {
            stats.record(self.heap.ovc_cmps.get(), self.heap.full_cmps.get());
        }
        if let Some(spec) = &self.fold {
            spec.flush_pre_spill(self.rows_folded, self.bytes_folded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NoopObserver;
    use histok_storage::{IoStats, MemoryBackend};

    fn catalog(order: SortOrder) -> (MemoryBackend, Arc<RunCatalog<u64>>) {
        let be = MemoryBackend::new();
        let cat = Arc::new(RunCatalog::new(Arc::new(be.clone()), "rs", order, IoStats::new()));
        (be, cat)
    }

    fn read_all(cat: &RunCatalog<u64>) -> Vec<Vec<u64>> {
        cat.runs().iter().map(|m| cat.open(m).unwrap().map(|r| r.unwrap().key).collect()).collect()
    }

    #[test]
    fn sorted_input_yields_one_long_run() {
        let (_be, cat) = catalog(SortOrder::Ascending);
        // Budget for ~10 rows; 100 pre-sorted rows should produce ONE run —
        // the signature behaviour of replacement selection.
        let mut gen = ReplacementSelection::new(cat.clone(), 10 * 60);
        let mut obs = NoopObserver;
        for k in 0..100u64 {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let runs = read_all(&cat);
        assert_eq!(runs.len(), 1, "sorted input must form a single run");
        assert_eq!(runs[0], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_input_yields_memory_sized_runs() {
        let (_be, cat) = catalog(SortOrder::Ascending);
        let mut gen = ReplacementSelection::new(cat.clone(), 10 * 60);
        let mut obs = NoopObserver;
        for k in (0..100u64).rev() {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let runs = read_all(&cat);
        // Reverse input defeats replacement selection: every arrival is
        // smaller than the last write, so runs are ~memory-sized.
        assert!(runs.len() >= 5, "expected many runs, got {}", runs.len());
        // Each run individually sorted; union == input.
        let mut all: Vec<u64> = runs.iter().flatten().copied().collect();
        for run in &runs {
            assert!(run.windows(2).all(|w| w[0] <= w[1]));
        }
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fold_at_insert_collapses_root_duplicates() {
        use crate::fold::{FoldSpec, FoldStats};
        use histok_types::{decode_count, AggregateOp, Bytes};
        let (_be, cat) = catalog(SortOrder::Ascending);
        let agg = AggregateOp::Count.aggregator();
        let stats = FoldStats::new();
        // Budget for ~4 rows — a constant key folds at the root instead of
        // spilling, so the whole stream fits without a single flush.
        let row_bytes = row_footprint(&Row::new(0u64, agg.init(Bytes::new())));
        let mut gen = ReplacementSelection::new(cat.clone(), 4 * row_bytes)
            .with_fold(FoldSpec::new(agg.clone()).with_stats(stats.clone()));
        let mut obs = NoopObserver;
        for _ in 0..1000 {
            gen.push(Row::new(5u64, agg.init(Bytes::new())), &mut obs).unwrap();
        }
        assert_eq!(gen.buffered_rows(), 1, "duplicates of the root must fold, not accumulate");
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let runs = cat.runs();
        assert_eq!(runs.len(), 1);
        let rows: Vec<Row<u64>> = cat.open(&runs[0]).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key, 5);
        assert_eq!(decode_count(&rows[0].payload), 1000);
        drop(gen);
        let snap = stats.snapshot();
        assert_eq!(snap.rows_folded, 999);
        assert!(snap.bytes_folded_pre_spill > 0);
    }

    #[test]
    fn random_input_runs_average_about_twice_memory() {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let (_be, cat) = catalog(SortOrder::Ascending);
        let mut keys: Vec<u64> = (0..4000).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(7));
        // Budget ≈ 100 rows.
        let row_bytes = row_footprint(&Row::key_only(0u64));
        let mut gen = ReplacementSelection::new(cat.clone(), 100 * row_bytes);
        let mut obs = NoopObserver;
        for k in keys {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let runs = read_all(&cat);
        let avg = 4000.0 / runs.len() as f64;
        assert!(
            (140.0..260.0).contains(&avg),
            "expected ~2x memory (200) rows per run, got {avg:.0} over {} runs",
            runs.len()
        );
    }

    #[test]
    fn run_limit_caps_physical_runs() {
        let (_be, cat) = catalog(SortOrder::Ascending);
        let mut gen = ReplacementSelection::new(cat.clone(), 10 * 60).with_run_limit(8);
        let mut obs = NoopObserver;
        for k in 0..100u64 {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        for run in read_all(&cat) {
            assert!(run.len() <= 8, "run of {} rows exceeds limit", run.len());
        }
    }

    #[test]
    fn keep_in_memory_returns_sorted_residue() {
        let (_be, cat) = catalog(SortOrder::Ascending);
        // Large budget: nothing spills.
        let mut gen = ReplacementSelection::new(cat.clone(), 1 << 20);
        let mut obs = NoopObserver;
        for k in [5u64, 1, 9, 3, 7] {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        let residue = gen.finish(&mut obs, ResiduePolicy::KeepInMemory).unwrap();
        assert!(cat.is_empty(), "no runs expected");
        assert_eq!(residue.len(), 1);
        assert_eq!(residue[0].iter().map(|r| r.key).collect::<Vec<_>>(), vec![1, 3, 5, 7, 9]);
        assert_eq!(gen.buffered_rows(), 0);
        assert_eq!(gen.buffered_bytes(), 0);
    }

    #[test]
    fn residue_may_span_two_selection_runs() {
        let (_be, cat) = catalog(SortOrder::Ascending);
        let row_bytes = row_footprint(&Row::key_only(0u64));
        let mut gen = ReplacementSelection::new(cat.clone(), 4 * row_bytes);
        let mut obs = NoopObserver;
        // Force some spills, then feed keys below the last written key so
        // next-run entries exist at finish time.
        for k in [10u64, 20, 30, 40, 50, 60, 2, 1] {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        let residue = gen.finish(&mut obs, ResiduePolicy::KeepInMemory).unwrap();
        for seq in &residue {
            let keys: Vec<u64> = seq.iter().map(|r| r.key).collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "residue {keys:?} unsorted");
        }
        // All 8 keys are either in runs or residue, exactly once.
        let mut all: Vec<u64> = read_all(&cat).into_iter().flatten().collect::<Vec<_>>();
        all.extend(residue.iter().flatten().map(|r| r.key));
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn observer_eliminates_rows_at_spill_time() {
        use crate::observer::SpillObserver;
        struct CutAbove(u64, Vec<u64>);
        impl SpillObserver<u64> for CutAbove {
            fn should_eliminate(&mut self, key: &u64) -> bool {
                *key > self.0
            }
            fn row_spilled(&mut self, key: &u64) {
                self.1.push(*key);
            }
        }
        let (_be, cat) = catalog(SortOrder::Ascending);
        let mut gen = ReplacementSelection::new(cat.clone(), 5 * 60);
        let mut obs = CutAbove(49, Vec::new());
        for k in (0..100u64).rev() {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let spilled: Vec<u64> = read_all(&cat).into_iter().flatten().collect();
        assert!(spilled.iter().all(|&k| k <= 49), "eliminated row was spilled");
        assert_eq!(obs.1.len(), spilled.len());
    }

    #[test]
    fn descending_order_runs_descend() {
        let be = MemoryBackend::new();
        let cat: Arc<RunCatalog<u64>> =
            Arc::new(RunCatalog::new(Arc::new(be), "d", SortOrder::Descending, IoStats::new()));
        let mut gen = ReplacementSelection::new(cat.clone(), 5 * 60);
        let mut obs = NoopObserver;
        for k in [3u64, 9, 1, 7, 5, 2, 8, 4, 6, 0, 10, 12, 11] {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        for m in cat.runs() {
            let keys: Vec<u64> = cat.open(&m).unwrap().map(|r| r.unwrap().key).collect();
            assert!(keys.windows(2).all(|w| w[0] >= w[1]), "run {keys:?} not descending");
        }
    }

    #[test]
    fn run_estimate_adapts_to_wide_payload_rows() {
        use crate::observer::SpillObserver;
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

        /// Records every `run_started` estimate and the actual length of
        /// each finished run.
        #[derive(Default)]
        struct RunSizes {
            estimates: Vec<u64>,
            lengths: Vec<u64>,
            current: u64,
        }
        impl SpillObserver<u64> for RunSizes {
            fn run_started(&mut self, estimated_rows: u64) {
                self.estimates.push(estimated_rows);
                self.current = 0;
            }
            fn row_spilled(&mut self, _key: &u64) {
                self.current += 1;
            }
            fn run_finished(&mut self) {
                self.lengths.push(self.current);
            }
        }

        let (_be, cat) = catalog(SortOrder::Ascending);
        let payload = 400usize;
        let row_bytes = row_footprint(&Row::new(0u64, vec![0u8; payload]));
        // Budget for ~50 of these wide rows. A non-adaptive 64-byte
        // estimate would claim ~2 × budget/64 ≈ 14 × the real capacity.
        let mut gen = ReplacementSelection::new(cat.clone(), 50 * row_bytes);
        let mut obs = RunSizes::default();
        let mut keys: Vec<u64> = (0..3_000).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(17));
        for k in keys {
            gen.push(Row::new(k, vec![0u8; payload]), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();

        assert!(obs.lengths.len() >= 5, "expected several runs");
        // Truth: average length of the full runs (the final run is
        // truncated by end-of-input).
        let full = &obs.lengths[..obs.lengths.len() - 1];
        let truth = full.iter().sum::<u64>() as f64 / full.len() as f64;
        for (i, &est) in obs.estimates.iter().enumerate() {
            assert!(
                (est as f64) <= 2.0 * truth && (est as f64) >= truth / 2.0,
                "estimate {est} for run {i} is not within 2x of observed \
                 average run length {truth:.0}",
            );
        }
    }

    #[test]
    fn duplicate_keys_are_all_preserved() {
        let (_be, cat) = catalog(SortOrder::Ascending);
        let mut gen = ReplacementSelection::new(cat.clone(), 5 * 60);
        let mut obs = NoopObserver;
        for _ in 0..50 {
            gen.push(Row::key_only(7u64), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let total: usize = read_all(&cat).iter().map(Vec::len).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn prefix_path_matches_full_comparisons() {
        // Same shuffled input through the prefix fast path and the plain
        // comparator must produce identical runs, for both orders.
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let mut keys: Vec<u64> = (0..500).map(|k| k % 97).collect();
            keys.shuffle(&mut StdRng::seed_from_u64(11));
            let run_one = |ovc: bool| -> Vec<Vec<u64>> {
                let be = MemoryBackend::new();
                let cat: Arc<RunCatalog<u64>> =
                    Arc::new(RunCatalog::new(Arc::new(be), "p", order, IoStats::new()));
                let mut gen = ReplacementSelection::new(cat.clone(), 20 * 60).with_ovc(ovc, None);
                let mut obs = NoopObserver;
                for &k in &keys {
                    gen.push(Row::key_only(k), &mut obs).unwrap();
                }
                gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
                read_all(&cat)
            };
            assert_eq!(run_one(true), run_one(false), "order = {order:?}");
        }
    }

    #[test]
    fn u64_keys_never_need_full_comparisons() {
        // u64 normalizes to exactly 8 bytes, so the prefix is the whole
        // key: the full comparator must never run.
        let stats = CmpStats::new();
        let (_be, cat) = catalog(SortOrder::Ascending);
        let mut gen =
            ReplacementSelection::new(cat.clone(), 10 * 60).with_ovc(true, Some(stats.clone()));
        let mut obs = NoopObserver;
        for k in [5u64, 2, 8, 2, 9, 1, 7, 7, 3, 0, 6, 4] {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let (ovc, full) = gen.cmp_counts();
        assert!(ovc > 0);
        assert_eq!(full, 0, "exact prefixes must never fall back");
        drop(gen);
        let snap = stats.snapshot();
        assert_eq!((snap.ovc_cmps, snap.full_cmps), (ovc, 0));
    }
}
