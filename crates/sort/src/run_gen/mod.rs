//! Run generation: turning an unsorted stream into sorted runs on storage.
//!
//! Three strategies are provided, matching the paper's discussion:
//!
//! * [`ReplacementSelection`] — the production choice (§5.1.2). A selection
//!   heap keeps consuming input while it writes: rows that can still extend
//!   the current run go out immediately; rows that sort before the last
//!   written key are deferred to the next run. Runs average twice the
//!   memory size on random input and can be capped at `k` rows (one of the
//!   optimizations of [Graefe'08] the paper builds on).
//! * [`LoadSortStore`] — fill memory, quicksort, write, repeat. This is what
//!   "vanilla" engines such as PostgreSQL do (§5.2) and what the paper's
//!   §3.2 analysis assumes "for simplicity".
//! * [`BatchSort`] — load-sort-store with a radix sort over the 8-byte
//!   normalized key prefixes and a vectorized cutoff clip; the
//!   bandwidth-oriented choice for narrow keys.
//!
//! All re-check every row against the [`SpillObserver`] at spill time
//! (Algorithm 1 line 11) and report every surviving spilled row to it
//! (line 13), which is where the histogram model is built.

mod batch_sort;
mod load_sort_store;
mod replacement_selection;

pub use batch_sort::BatchSort;
pub use load_sort_store::LoadSortStore;
pub use replacement_selection::ReplacementSelection;

use histok_types::{Result, Row, SortKey};

use crate::fold::FoldSpec;
use crate::observer::SpillObserver;

/// What to do with rows still buffered in memory when input ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResiduePolicy {
    /// Keep the residue in memory and hand it to the final merge directly —
    /// avoids one write+read round trip for up to a memory-full of rows.
    #[default]
    KeepInMemory,
    /// Spill the residue to runs like any other data. This matches the
    /// accounting of the paper's §3.2 analysis, where every surviving input
    /// row is written to a run.
    SpillToRuns,
}

/// A strategy for converting buffered rows into sorted runs under a memory
/// budget.
pub trait RunGenerator<K: SortKey>: Send {
    /// Accepts one input row, spilling as needed to stay within budget.
    fn push(&mut self, row: Row<K>, obs: &mut dyn SpillObserver<K>) -> Result<()>;

    /// Ends the input. Depending on `residue`, the still-buffered rows are
    /// either spilled or returned as sorted in-memory sequences (each inner
    /// `Vec` is sorted in output order).
    fn finish(
        &mut self,
        obs: &mut dyn SpillObserver<K>,
        residue: ResiduePolicy,
    ) -> Result<Vec<Vec<Row<K>>>>;

    /// Rows currently buffered in memory.
    fn buffered_rows(&self) -> usize;

    /// Bytes currently charged against the memory budget.
    fn buffered_bytes(&self) -> usize;

    /// Comparison counts so far as `(ovc_cmps, full_cmps)`. Generators
    /// without normalized-key support report zeros.
    fn cmp_counts(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Enables in-sort duplicate folding: equal keys are combined by the
    /// spec's aggregator before rows reach storage, so runs leave the
    /// generator duplicate-free (or at least duplicate-reduced — see each
    /// generator's notes). Generators without fold support ignore the
    /// call; merge-time folding downstream still guarantees distinct
    /// output, this only saves the spill bandwidth.
    fn set_fold(&mut self, _fold: Option<FoldSpec>) {}
}
