//! Load-sort-store run generation.
//!
//! Fill the workspace, sort it (quicksort via `sort_unstable_by`), write it
//! out as one run, repeat. Runs are exactly memory-sized. This is the
//! strategy the paper's §3.2 analysis assumes ("to create a run we fill our
//! available memory with input rows, sort and write them to disk") and the
//! one PostgreSQL's top-k uses (§5.2).

use std::sync::Arc;

use histok_storage::RunCatalog;
use histok_types::{Result, Row, SortKey, SortOrder};

use crate::budget::{row_footprint, MemoryBudget};
use crate::observer::SpillObserver;
use crate::run_gen::{ResiduePolicy, RunGenerator};

/// Quicksort-based run generation.
pub struct LoadSortStore<K: SortKey> {
    catalog: Arc<RunCatalog<K>>,
    buffer: Vec<Row<K>>,
    budget: MemoryBudget,
    order: SortOrder,
}

impl<K: SortKey> LoadSortStore<K> {
    /// Creates a generator writing runs through `catalog` under a budget of
    /// `budget_bytes`.
    pub fn new(catalog: Arc<RunCatalog<K>>, budget_bytes: usize) -> Self {
        Self::with_budget(catalog, MemoryBudget::new(budget_bytes))
    }

    /// Creates a generator charging its workspace against `budget` — use a
    /// budget forked from a shared [`crate::BudgetHandle`] when an external
    /// lease governs the limit.
    pub fn with_budget(catalog: Arc<RunCatalog<K>>, budget: MemoryBudget) -> Self {
        let order = catalog.order();
        LoadSortStore { catalog, buffer: Vec::new(), budget, order }
    }

    fn sort_buffer(&mut self) {
        let order = self.order;
        // Unstable sort: equal keys may reorder, acceptable for top-k
        // semantics (the paper's queries have no secondary tie-breaker).
        self.buffer.sort_unstable_by(|a, b| order.cmp_keys(&a.key, &b.key));
    }

    /// Sorts and writes the whole buffer as one run, consulting the
    /// observer per row.
    fn flush(&mut self, obs: &mut dyn SpillObserver<K>) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.sort_buffer();
        // The run length is known here: it is the buffer being flushed
        // (minus any spill-time eliminations). Reporting the actual row
        // count — not a fallback-byte guess — keeps histogram bucket widths
        // honest for wide payload rows.
        let estimated_rows = self.buffer.len() as u64;
        let mut writer = None;
        for row in self.buffer.drain(..) {
            let fp = row_footprint(&row);
            self.budget.release(fp);
            if obs.should_eliminate(&row.key) {
                continue;
            }
            let w = match writer.as_mut() {
                Some(w) => w,
                None => {
                    writer = Some(self.catalog.start_run()?);
                    obs.run_started(estimated_rows.max(1));
                    writer.as_mut().expect("writer just set")
                }
            };
            w.append(&row)?;
            obs.row_spilled(&row.key);
        }
        if let Some(w) = writer {
            let meta = w.finish()?;
            self.catalog.register(meta)?;
            obs.run_finished();
        }
        Ok(())
    }
}

impl<K: SortKey> RunGenerator<K> for LoadSortStore<K> {
    fn push(&mut self, row: Row<K>, obs: &mut dyn SpillObserver<K>) -> Result<()> {
        let fp = row_footprint(&row);
        if self.budget.would_exceed(fp) && !self.buffer.is_empty() {
            self.flush(obs)?;
        }
        self.budget.charge(fp);
        self.buffer.push(row);
        Ok(())
    }

    fn finish(
        &mut self,
        obs: &mut dyn SpillObserver<K>,
        residue: ResiduePolicy,
    ) -> Result<Vec<Vec<Row<K>>>> {
        match residue {
            ResiduePolicy::SpillToRuns => {
                self.flush(obs)?;
                Ok(Vec::new())
            }
            ResiduePolicy::KeepInMemory => {
                self.sort_buffer();
                let mut out = Vec::with_capacity(self.buffer.len());
                for row in self.buffer.drain(..) {
                    let fp = row_footprint(&row);
                    self.budget.release(fp);
                    if !obs.should_eliminate(&row.key) {
                        out.push(row);
                    }
                }
                Ok(if out.is_empty() { Vec::new() } else { vec![out] })
            }
        }
    }

    fn buffered_rows(&self) -> usize {
        self.buffer.len()
    }

    fn buffered_bytes(&self) -> usize {
        self.budget.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NoopObserver;
    use histok_storage::{IoStats, MemoryBackend};

    fn catalog() -> Arc<RunCatalog<u64>> {
        Arc::new(RunCatalog::new(
            Arc::new(MemoryBackend::new()),
            "lss",
            SortOrder::Ascending,
            IoStats::new(),
        ))
    }

    fn read_all(cat: &RunCatalog<u64>) -> Vec<Vec<u64>> {
        cat.runs().iter().map(|m| cat.open(m).unwrap().map(|r| r.unwrap().key).collect()).collect()
    }

    #[test]
    fn runs_are_memory_sized_and_sorted() {
        let cat = catalog();
        let row_bytes = row_footprint(&Row::key_only(0u64));
        let mut gen = LoadSortStore::new(cat.clone(), 10 * row_bytes);
        let mut obs = NoopObserver;
        for k in (0..95u64).rev() {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let runs = read_all(&cat);
        assert!(runs.len() >= 9, "expected ~10 runs, got {}", runs.len());
        let mut all = Vec::new();
        for run in &runs {
            assert!(run.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
            assert!(run.len() <= 10);
            all.extend_from_slice(run);
        }
        all.sort_unstable();
        assert_eq!(all, (0..95).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_input_still_produces_memory_sized_runs() {
        // Unlike replacement selection, LSS gains nothing from sorted input.
        let cat = catalog();
        let row_bytes = row_footprint(&Row::key_only(0u64));
        let mut gen = LoadSortStore::new(cat.clone(), 10 * row_bytes);
        let mut obs = NoopObserver;
        for k in 0..100u64 {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        assert!(read_all(&cat).len() >= 9);
    }

    #[test]
    fn residue_kept_in_memory_is_sorted_and_complete() {
        let cat = catalog();
        let mut gen = LoadSortStore::new(cat.clone(), 1 << 20);
        let mut obs = NoopObserver;
        for k in [9u64, 2, 7, 4] {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        let residue = gen.finish(&mut obs, ResiduePolicy::KeepInMemory).unwrap();
        assert!(cat.is_empty());
        assert_eq!(residue.len(), 1);
        assert_eq!(residue[0].iter().map(|r| r.key).collect::<Vec<_>>(), vec![2, 4, 7, 9]);
        assert_eq!(gen.buffered_bytes(), 0);
    }

    #[test]
    fn observer_filters_at_flush() {
        struct CutAbove(u64);
        impl SpillObserver<u64> for CutAbove {
            fn should_eliminate(&mut self, key: &u64) -> bool {
                *key > self.0
            }
        }
        let cat = catalog();
        let row_bytes = row_footprint(&Row::key_only(0u64));
        let mut gen = LoadSortStore::new(cat.clone(), 10 * row_bytes);
        let mut obs = CutAbove(20);
        for k in 0..100u64 {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let spilled: Vec<u64> = read_all(&cat).into_iter().flatten().collect();
        assert!(spilled.iter().all(|&k| k <= 20));
        assert_eq!(spilled.len(), 21);
    }

    #[test]
    fn fully_filtered_buffer_registers_no_run() {
        struct KillAll;
        impl SpillObserver<u64> for KillAll {
            fn should_eliminate(&mut self, _: &u64) -> bool {
                true
            }
        }
        let cat = catalog();
        let mut gen = LoadSortStore::new(cat.clone(), 1 << 20);
        let mut obs = KillAll;
        for k in 0..10u64 {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        let residue = gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        assert!(residue.is_empty());
        assert!(cat.is_empty());
    }

    #[test]
    fn run_estimate_matches_buffer_for_wide_payload_rows() {
        struct Estimates(Vec<u64>, Vec<u64>, u64);
        impl SpillObserver<u64> for Estimates {
            fn run_started(&mut self, estimated_rows: u64) {
                self.0.push(estimated_rows);
                self.2 = 0;
            }
            fn row_spilled(&mut self, _key: &u64) {
                self.2 += 1;
            }
            fn run_finished(&mut self) {
                self.1.push(self.2);
            }
        }
        let cat = catalog();
        let payload = 400usize;
        let row_bytes = row_footprint(&Row::new(0u64, vec![0u8; payload]));
        let mut gen = LoadSortStore::new(cat.clone(), 40 * row_bytes);
        let mut obs = Estimates(Vec::new(), Vec::new(), 0);
        for k in 0..500u64 {
            gen.push(Row::new(k, vec![0u8; payload]), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        assert_eq!(obs.0.len(), obs.1.len());
        for (est, actual) in obs.0.iter().zip(&obs.1) {
            assert!(
                *est <= 2 * actual && *est >= actual / 2,
                "estimate {est} not within 2x of actual run length {actual}"
            );
        }
    }

    #[test]
    fn oversized_single_row_does_not_wedge() {
        let cat = catalog();
        let mut gen = LoadSortStore::new(cat.clone(), 64); // tiny budget
        let mut obs = NoopObserver;
        gen.push(Row::new(1u64, vec![0u8; 1024]), &mut obs).unwrap();
        gen.push(Row::new(2u64, vec![0u8; 1024]), &mut obs).unwrap();
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let total: usize = read_all(&cat).iter().map(Vec::len).sum();
        assert_eq!(total, 2);
    }
}
