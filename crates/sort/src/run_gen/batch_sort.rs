//! Batched (radix) run generation.
//!
//! The bandwidth-oriented alternative to comparison-based load-sort-store:
//! fill the workspace, sort it by an LSB radix pass over the 8-byte
//! normalized key prefixes (one `(prefix, index)` pair per row; digit
//! passes that carry no information are skipped), fall back to comparison
//! sort only inside groups of rows whose prefixes tie, clip the sorted
//! buffer at the observer's cutoff with one scan over the prefix column
//! (per-row `should_eliminate` callbacks only when the observer exposes no
//! plain cutoff), and spill the survivors through batch appends. For keys
//! whose whole normalized form fits the prefix — the integers, `F64Key` —
//! the sort never touches a key byte and never calls a comparator.
//!
//! Same run shape and observer protocol as [`LoadSortStore`]: memory-sized
//! runs, `run_started`/`row_spilled`/`run_finished` per run, every spilled
//! row re-checked against the cutoff at spill time (Algorithm 1 lines
//! 10–13). Like `LoadSortStore`, the sort is unstable across equal keys.
//!
//! [`LoadSortStore`]: crate::run_gen::LoadSortStore

use std::sync::Arc;

use histok_storage::RunCatalog;
use histok_types::{Result, Row, RowBatch, SortKey, SortOrder};

use crate::budget::{row_footprint, MemoryBudget};
use crate::fold::FoldSpec;
use crate::observer::SpillObserver;
use crate::run_gen::{ResiduePolicy, RunGenerator};

/// Sorts `pairs` by their `u64` ascending with a stable LSB radix (8-bit
/// digits, low to high). Digits on which all values agree are skipped, so
/// narrow key domains pay for the passes they need, not all eight.
fn radix_sort_pairs(pairs: &mut Vec<(u64, u32)>, scratch: &mut Vec<(u64, u32)>) {
    let n = pairs.len();
    if n < 2 {
        return;
    }
    // One read pass builds every digit's histogram.
    let mut hist = vec![[0u32; 256]; 8];
    for &(p, _) in pairs.iter() {
        for (d, h) in hist.iter_mut().enumerate() {
            h[((p >> (8 * d)) & 0xFF) as usize] += 1;
        }
    }
    scratch.clear();
    scratch.resize(n, (0, 0));
    for (d, h) in hist.iter().enumerate() {
        if h.iter().any(|&c| c as usize == n) {
            continue; // every value shares this digit
        }
        let mut offsets = [0u32; 256];
        let mut acc = 0u32;
        for (o, &c) in offsets.iter_mut().zip(h.iter()) {
            *o = acc;
            acc += c;
        }
        for &pair in pairs.iter() {
            let digit = ((pair.0 >> (8 * d)) & 0xFF) as usize;
            scratch[offsets[digit] as usize] = pair;
            offsets[digit] += 1;
        }
        std::mem::swap(pairs, scratch);
    }
}

/// Radix-based run generation over the normalized-prefix column.
pub struct BatchSort<K: SortKey> {
    catalog: Arc<RunCatalog<K>>,
    rows: Vec<Row<K>>,
    /// Output-order prefix per buffered row (`norm_prefix() ^ out_mask`),
    /// aligned with `rows`; ascending in this column is output order.
    prefixes: Vec<u64>,
    /// 0 for ascending output, `!0` for descending (see [`RowBatch`]).
    out_mask: u64,
    budget: MemoryBudget,
    order: SortOrder,
    /// Reused radix workspaces, kept across flushes.
    pairs: Vec<(u64, u32)>,
    scratch: Vec<(u64, u32)>,
    fold: Option<FoldSpec>,
    rows_folded: u64,
    bytes_folded: u64,
}

impl<K: SortKey> BatchSort<K> {
    /// Creates a generator writing runs through `catalog` under a budget
    /// of `budget_bytes`.
    pub fn new(catalog: Arc<RunCatalog<K>>, budget_bytes: usize) -> Self {
        Self::with_budget(catalog, MemoryBudget::new(budget_bytes))
    }

    /// Creates a generator charging its workspace against `budget` — use a
    /// budget forked from a shared [`crate::BudgetHandle`] when an external
    /// lease governs the limit.
    pub fn with_budget(catalog: Arc<RunCatalog<K>>, budget: MemoryBudget) -> Self {
        let order = catalog.order();
        let out_mask = match order {
            SortOrder::Ascending => 0,
            SortOrder::Descending => !0u64,
        };
        BatchSort {
            catalog,
            rows: Vec::new(),
            prefixes: Vec::new(),
            out_mask,
            budget,
            order,
            pairs: Vec::new(),
            scratch: Vec::new(),
            fold: None,
            rows_folded: 0,
            bytes_folded: 0,
        }
    }

    /// Enables duplicate folding: after each buffer sort, adjacent equal
    /// keys collapse into one row before the run is written, so runs leave
    /// the generator already duplicate-free. Equality is decided on the
    /// prefix column alone for prefix-exact keys and falls back to a full
    /// key compare when tied prefixes are inconclusive.
    pub fn with_fold(mut self, fold: FoldSpec) -> Self {
        self.fold = Some(fold);
        self
    }

    /// Sorts the buffer into output order: radix over the prefix column,
    /// then a comparison pass inside each prefix-tie group (skipped
    /// entirely for prefix-exact key types, where equal prefixes are
    /// equal keys).
    fn sort_buffer(&mut self) {
        let n = self.rows.len();
        if n < 2 {
            return;
        }
        self.pairs.clear();
        self.pairs.extend(self.prefixes.iter().enumerate().map(|(i, &p)| (p, i as u32)));
        radix_sort_pairs(&mut self.pairs, &mut self.scratch);
        // Apply the permutation to the row column.
        let mut slots: Vec<Option<Row<K>>> = self.rows.drain(..).map(Some).collect();
        self.rows.extend(
            self.pairs.iter().map(|&(_, i)| slots[i as usize].take().expect("radix permutation")),
        );
        for (dst, &(p, _)) in self.prefixes.iter_mut().zip(self.pairs.iter()) {
            *dst = p;
        }
        if K::norm_prefix_is_exact() {
            return;
        }
        // Wide keys: order rows within each group of tied prefixes.
        let order = self.order;
        let mut start = 0;
        while start < n {
            let p = self.prefixes[start];
            let mut end = start + 1;
            while end < n && self.prefixes[end] == p {
                end += 1;
            }
            if end - start > 1 {
                self.rows[start..end].sort_unstable_by(|a, b| order.cmp_keys(&a.key, &b.key));
            }
            start = end;
        }
    }

    /// Collapses adjacent equal keys in the sorted buffer, folding each
    /// duplicate's payload into the group's surviving row and releasing the
    /// duplicate's budget. Runs in place with one swap-compaction pass.
    fn fold_adjacent(&mut self) {
        let Some(spec) = self.fold.clone() else { return };
        let n = self.rows.len();
        if n < 2 {
            return;
        }
        let agg = spec.agg;
        let mut w = 0;
        for r in 1..n {
            let equal = self.prefixes[r] == self.prefixes[w]
                && (K::norm_prefix_is_exact() || self.rows[r].key == self.rows[w].key);
            if equal {
                self.rows_folded += 1;
                self.bytes_folded += self.rows[r].encoded_len() as u64;
                let dup_footprint = row_footprint(&self.rows[r]);
                let dup_payload = self.rows[r].payload.clone();
                let acc = &mut self.rows[w];
                if let Some(folded) = agg.fold(&acc.payload, &dup_payload) {
                    let old_fp = row_footprint(acc);
                    acc.payload = folded;
                    let new_fp = row_footprint(acc);
                    self.budget.resize_row(old_fp, new_fp);
                }
                self.budget.release(dup_footprint);
            } else {
                w += 1;
                self.rows.swap(w, r);
                self.prefixes[w] = self.prefixes[r];
            }
        }
        self.rows.truncate(w + 1);
        self.prefixes.truncate(w + 1);
    }

    /// Index of the first buffered (sorted) row that sorts after `cut`,
    /// found on the prefix column; key bytes are consulted only for wide
    /// keys whose prefix ties the cutoff's.
    fn clip_point(&self, cut: &K) -> usize {
        let cut_out = cut.norm_prefix() ^ self.out_mask;
        if K::norm_prefix_is_exact() {
            self.prefixes.partition_point(|&p| p <= cut_out)
        } else {
            let candidate = self.prefixes.partition_point(|&p| p < cut_out);
            (candidate..self.rows.len())
                .find(|&i| self.order.follows(&self.rows[i].key, cut))
                .unwrap_or(self.rows.len())
        }
    }

    /// Drops the sorted tail that the observer's rule eliminates,
    /// releasing its budget; returns the surviving row count. Uses the
    /// vectorized prefix clip when the observer exposes a plain cutoff,
    /// the per-row callback otherwise.
    fn retain_survivors(&mut self, obs: &mut dyn SpillObserver<K>) -> usize {
        match obs.cutoff_key() {
            Some(cut) => {
                let keep = self.clip_point(&cut);
                let dropped = self.rows.len() - keep;
                for row in self.rows.drain(keep..) {
                    self.budget.release(row_footprint(&row));
                }
                self.prefixes.truncate(keep);
                if dropped > 0 {
                    obs.rows_clipped(dropped as u64);
                }
                keep
            }
            None => {
                // The eliminated set need not be a suffix for arbitrary
                // observers; check every row, keeping order.
                let mut keep = 0;
                for i in 0..self.rows.len() {
                    if obs.should_eliminate(&self.rows[i].key) {
                        self.budget.release(row_footprint(&self.rows[i]));
                        continue;
                    }
                    self.rows.swap(i, keep);
                    self.prefixes.swap(i, keep);
                    keep += 1;
                }
                self.rows.truncate(keep);
                self.prefixes.truncate(keep);
                keep
            }
        }
    }

    /// Sorts and writes the whole buffer as one run.
    fn flush(&mut self, obs: &mut dyn SpillObserver<K>) -> Result<()> {
        if self.rows.is_empty() {
            return Ok(());
        }
        self.sort_buffer();
        self.fold_adjacent();
        // As in load-sort-store, the run estimate is the buffer being
        // flushed — known exactly, before spill-time elimination.
        let estimated_rows = self.rows.len() as u64;
        if self.retain_survivors(obs) == 0 {
            return Ok(());
        }
        let mut writer = self.catalog.start_run()?;
        obs.run_started(estimated_rows.max(1));
        // Hand the writer rows plus their raw prefixes in one call; no
        // key is re-encoded on the way out.
        let rows = std::mem::take(&mut self.rows);
        let mut prefixes = std::mem::take(&mut self.prefixes);
        for p in prefixes.iter_mut() {
            *p ^= self.out_mask;
        }
        let batch = RowBatch { rows, prefixes };
        writer.append_batch(&batch)?;
        for row in &batch.rows {
            self.budget.release(row_footprint(row));
            obs.row_spilled(&row.key);
        }
        let meta = writer.finish()?;
        self.catalog.register(meta)?;
        obs.run_finished();
        // Reclaim the allocations for the next fill.
        let RowBatch { mut rows, mut prefixes } = batch;
        rows.clear();
        prefixes.clear();
        self.rows = rows;
        self.prefixes = prefixes;
        Ok(())
    }
}

impl<K: SortKey> RunGenerator<K> for BatchSort<K> {
    fn push(&mut self, row: Row<K>, obs: &mut dyn SpillObserver<K>) -> Result<()> {
        let fp = row_footprint(&row);
        if self.budget.would_exceed(fp) && !self.rows.is_empty() {
            self.flush(obs)?;
        }
        self.budget.charge(fp);
        self.prefixes.push(row.key.norm_prefix() ^ self.out_mask);
        self.rows.push(row);
        Ok(())
    }

    fn finish(
        &mut self,
        obs: &mut dyn SpillObserver<K>,
        residue: ResiduePolicy,
    ) -> Result<Vec<Vec<Row<K>>>> {
        match residue {
            ResiduePolicy::SpillToRuns => {
                self.flush(obs)?;
                Ok(Vec::new())
            }
            ResiduePolicy::KeepInMemory => {
                self.sort_buffer();
                self.fold_adjacent();
                let kept = self.retain_survivors(obs);
                for row in &self.rows {
                    self.budget.release(row_footprint(row));
                }
                self.prefixes.clear();
                let out = std::mem::take(&mut self.rows);
                Ok(if kept == 0 { Vec::new() } else { vec![out] })
            }
        }
    }

    fn buffered_rows(&self) -> usize {
        self.rows.len()
    }

    fn buffered_bytes(&self) -> usize {
        self.budget.used()
    }

    fn set_fold(&mut self, fold: Option<FoldSpec>) {
        self.fold = fold;
    }
}

impl<K: SortKey> Drop for BatchSort<K> {
    fn drop(&mut self) {
        if let Some(spec) = &self.fold {
            spec.flush_pre_spill(self.rows_folded, self.bytes_folded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NoopObserver;
    use histok_storage::{IoStats, MemoryBackend};
    use histok_types::BytesKey;

    fn catalog(order: SortOrder) -> Arc<RunCatalog<u64>> {
        Arc::new(RunCatalog::new(Arc::new(MemoryBackend::new()), "bs", order, IoStats::new()))
    }

    fn read_all(cat: &RunCatalog<u64>) -> Vec<Vec<u64>> {
        cat.runs().iter().map(|m| cat.open(m).unwrap().map(|r| r.unwrap().key).collect()).collect()
    }

    #[test]
    fn radix_pairs_sort_and_stay_stable() {
        let mut pairs: Vec<(u64, u32)> =
            vec![(5, 0), (1, 1), (5, 2), (0, 3), (u64::MAX, 4), (1, 5), (5, 6)];
        let mut scratch = Vec::new();
        radix_sort_pairs(&mut pairs, &mut scratch);
        assert_eq!(pairs, vec![(0, 3), (1, 1), (1, 5), (5, 0), (5, 2), (5, 6), (u64::MAX, 4)]);
    }

    #[test]
    fn runs_are_memory_sized_and_sorted_both_orders() {
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let cat = catalog(order);
            let row_bytes = row_footprint(&Row::key_only(0u64));
            let mut gen = BatchSort::new(cat.clone(), 10 * row_bytes);
            let mut obs = NoopObserver;
            for k in [77u64, 3, 41, 9, 100, 2, 55, 13, 8, 99, 1, 64, 30, 5, 88, 21, 7, 45, 6, 92] {
                gen.push(Row::key_only(k), &mut obs).unwrap();
            }
            gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
            let runs = read_all(&cat);
            assert!(runs.len() >= 2, "order {order:?}: expected 2+ runs, got {}", runs.len());
            let mut all = Vec::new();
            for run in &runs {
                let sorted = match order {
                    SortOrder::Ascending => run.windows(2).all(|w| w[0] <= w[1]),
                    SortOrder::Descending => run.windows(2).all(|w| w[0] >= w[1]),
                };
                assert!(sorted, "run not sorted for {order:?}: {run:?}");
                assert!(run.len() <= 10);
                all.extend_from_slice(run);
            }
            all.sort_unstable();
            let mut expected =
                vec![77u64, 3, 41, 9, 100, 2, 55, 13, 8, 99, 1, 64, 30, 5, 88, 21, 7, 45, 6, 92];
            expected.sort_unstable();
            assert_eq!(all, expected);
        }
    }

    #[test]
    fn matches_load_sort_store_output_on_wide_keys() {
        // Same inputs through BatchSort and LoadSortStore must produce the
        // same multiset of spilled keys, each run sorted — including byte
        // keys that exercise the prefix-tie fallback.
        use crate::run_gen::LoadSortStore;
        let words: Vec<String> =
            (0..200).map(|i| format!("commonprefix-{:03}-{}", i % 50, i)).collect();
        let collect = |spill: &dyn Fn() -> Vec<Vec<BytesKey>>| -> Vec<BytesKey> {
            let mut all: Vec<BytesKey> = spill().into_iter().flatten().collect();
            all.sort();
            all
        };
        let run = |use_batch: bool| -> Vec<Vec<BytesKey>> {
            let cat = Arc::new(RunCatalog::<BytesKey>::new(
                Arc::new(MemoryBackend::new()),
                "w",
                SortOrder::Ascending,
                IoStats::new(),
            ));
            let budget = 40 * row_footprint(&Row::key_only(BytesKey::from(words[0].as_str())));
            let mut obs = NoopObserver;
            let mut push_all = |g: &mut dyn RunGenerator<BytesKey>| {
                for w in &words {
                    g.push(Row::key_only(BytesKey::from(w.as_str())), &mut obs).unwrap();
                }
                g.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
            };
            if use_batch {
                push_all(&mut BatchSort::new(cat.clone(), budget));
            } else {
                push_all(&mut LoadSortStore::new(cat.clone(), budget));
            }
            cat.runs()
                .iter()
                .map(|m| {
                    let run: Vec<BytesKey> = cat.open(m).unwrap().map(|r| r.unwrap().key).collect();
                    assert!(run.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
                    run
                })
                .collect()
        };
        assert_eq!(collect(&|| run(true)), collect(&|| run(false)));
    }

    #[test]
    fn cutoff_key_clips_vectorized() {
        struct CutAt(u64);
        impl SpillObserver<u64> for CutAt {
            fn should_eliminate(&mut self, key: &u64) -> bool {
                *key > self.0
            }
            fn cutoff_key(&mut self) -> Option<u64> {
                Some(self.0)
            }
        }
        let cat = catalog(SortOrder::Ascending);
        let mut gen = BatchSort::new(cat.clone(), 1 << 20);
        let mut obs = CutAt(20);
        for k in (0..100u64).rev() {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let spilled: Vec<u64> = read_all(&cat).into_iter().flatten().collect();
        assert_eq!(spilled, (0..=20).collect::<Vec<_>>());
        assert_eq!(gen.buffered_bytes(), 0);
    }

    #[test]
    fn per_row_observer_still_filters_without_cutoff_key() {
        struct OddKiller;
        impl SpillObserver<u64> for OddKiller {
            fn should_eliminate(&mut self, key: &u64) -> bool {
                key % 2 == 1 // not a suffix of the sorted buffer
            }
        }
        let cat = catalog(SortOrder::Ascending);
        let mut gen = BatchSort::new(cat.clone(), 1 << 20);
        let mut obs = OddKiller;
        for k in 0..50u64 {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let spilled: Vec<u64> = read_all(&cat).into_iter().flatten().collect();
        assert_eq!(spilled, (0..50).filter(|k| k % 2 == 0).collect::<Vec<_>>());
        assert_eq!(gen.buffered_bytes(), 0);
    }

    #[test]
    fn residue_kept_in_memory_is_sorted_filtered_and_released() {
        struct CutAt(u64);
        impl SpillObserver<u64> for CutAt {
            fn should_eliminate(&mut self, key: &u64) -> bool {
                *key > self.0
            }
            fn cutoff_key(&mut self) -> Option<u64> {
                Some(self.0)
            }
        }
        let cat = catalog(SortOrder::Ascending);
        let mut gen = BatchSort::new(cat.clone(), 1 << 20);
        let mut obs = CutAt(7);
        for k in [9u64, 2, 7, 4, 11] {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        let residue = gen.finish(&mut obs, ResiduePolicy::KeepInMemory).unwrap();
        assert!(cat.is_empty());
        assert_eq!(residue.len(), 1);
        assert_eq!(residue[0].iter().map(|r| r.key).collect::<Vec<_>>(), vec![2, 4, 7]);
        assert_eq!(gen.buffered_bytes(), 0);
    }

    #[test]
    fn fully_clipped_buffer_registers_no_run() {
        struct KillAll;
        impl SpillObserver<u64> for KillAll {
            fn should_eliminate(&mut self, _: &u64) -> bool {
                true
            }
        }
        let cat = catalog(SortOrder::Ascending);
        let mut gen = BatchSort::new(cat.clone(), 1 << 20);
        let mut obs = KillAll;
        for k in 0..10u64 {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        let residue = gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        assert!(residue.is_empty());
        assert!(cat.is_empty());
    }

    #[test]
    fn observer_protocol_fires_per_run() {
        struct Protocol {
            started: Vec<u64>,
            spilled: u64,
            finished: usize,
        }
        impl SpillObserver<u64> for Protocol {
            fn run_started(&mut self, est: u64) {
                self.started.push(est);
            }
            fn row_spilled(&mut self, _k: &u64) {
                self.spilled += 1;
            }
            fn run_finished(&mut self) {
                self.finished += 1;
            }
        }
        let cat = catalog(SortOrder::Ascending);
        let row_bytes = row_footprint(&Row::key_only(0u64));
        let mut gen = BatchSort::new(cat.clone(), 10 * row_bytes);
        let mut obs = Protocol { started: Vec::new(), spilled: 0, finished: 0 };
        for k in 0..35u64 {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        assert_eq!(obs.started.len(), obs.finished);
        assert_eq!(obs.spilled, 35);
        assert!(obs.started.iter().all(|&e| e > 0 && e <= 10));
    }

    #[test]
    fn fold_collapses_adjacent_duplicates_per_run() {
        use crate::fold::{FoldSpec, FoldStats};
        use histok_types::{decode_count, AggregateOp, Bytes};
        let agg = AggregateOp::Count.aggregator();
        let stats = FoldStats::new();
        let cat = catalog(SortOrder::Ascending);
        let row_bytes = row_footprint(&Row::new(0u64, agg.init(Bytes::new())));
        let mut gen = BatchSort::new(cat.clone(), 20 * row_bytes)
            .with_fold(FoldSpec::new(agg.clone()).with_stats(stats.clone()));
        let mut obs = NoopObserver;
        // 60 rows over 5 distinct keys, scattered so each memory load holds
        // many duplicates of each key.
        for i in 0..60u64 {
            gen.push(Row::new(i % 5, agg.init(Bytes::new())), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let mut total = [0u64; 5];
        for meta in cat.runs().iter() {
            let rows: Vec<Row<u64>> = cat.open(meta).unwrap().map(|r| r.unwrap()).collect();
            // Each run is duplicate-free: distinct, sorted keys.
            assert!(rows.windows(2).all(|w| w[0].key < w[1].key), "run keys must be distinct");
            for row in rows {
                total[row.key as usize] += decode_count(&row.payload);
            }
        }
        assert_eq!(total, [12; 5], "folded counts must cover every input row");
        assert_eq!(gen.buffered_bytes(), 0);
        drop(gen);
        let snap = stats.snapshot();
        assert_eq!(snap.rows_folded + 5 * cat.runs().len() as u64, 60);
        assert!(snap.bytes_folded_pre_spill > 0);
    }

    #[test]
    fn fold_wide_keys_with_tied_prefixes_only_merges_true_equals() {
        use crate::fold::FoldSpec;
        use histok_types::AggregateOp;
        let cat = Arc::new(RunCatalog::<BytesKey>::new(
            Arc::new(MemoryBackend::new()),
            "wf",
            SortOrder::Ascending,
            IoStats::new(),
        ));
        let mut gen = BatchSort::new(cat.clone(), 1 << 20)
            .with_fold(FoldSpec::new(AggregateOp::First.aggregator()));
        let mut obs = NoopObserver;
        // Same 8-byte prefix, three distinct tails, with duplicates.
        for s in ["prefix-0001-a", "prefix-0001-b", "prefix-0001-a", "prefix-0001-c"] {
            gen.push(Row::key_only(BytesKey::from(s)), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let runs = cat.runs();
        assert_eq!(runs.len(), 1);
        let got: Vec<BytesKey> = cat.open(&runs[0]).unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(
            got,
            vec![
                BytesKey::from("prefix-0001-a"),
                BytesKey::from("prefix-0001-b"),
                BytesKey::from("prefix-0001-c"),
            ]
        );
    }

    #[test]
    fn descending_f64_keys_sort_by_prefix_only() {
        use histok_types::F64Key;
        let cat = Arc::new(RunCatalog::<F64Key>::new(
            Arc::new(MemoryBackend::new()),
            "f",
            SortOrder::Descending,
            IoStats::new(),
        ));
        let mut gen = BatchSort::new(cat.clone(), 1 << 20);
        let mut obs = NoopObserver;
        let vals = [1.5f64, -2.25, 0.0, -0.0, 100.0, -1e300, 3.5e-10, -7.0];
        for v in vals {
            gen.push(Row::key_only(F64Key(v)), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let runs = cat.runs();
        assert_eq!(runs.len(), 1);
        let got: Vec<f64> = cat.open(&runs[0]).unwrap().map(|r| r.unwrap().key.0).collect();
        let mut expected = vals.to_vec();
        expected.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(got, expected);
    }
}
