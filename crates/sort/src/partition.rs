//! Range-partitioned parallel merge (§4.4 adjacent; Polyntsov et al.).
//!
//! The per-block `last_key` index every run already persists is a concise
//! model of the key distribution: treating each block boundary as a
//! candidate splitter weighted by its block's row count lets a planner cut
//! the key domain into `P` disjoint half-open ranges with near-equal
//! estimated row counts. Each range is merged by its own worker thread
//! over range-scoped readers ([`RunCatalog::open_range`]), and because the
//! ranges partition the domain, concatenating the partition outputs in
//! range order reproduces the single-threaded merge byte for byte:
//!
//! * every key — including every duplicate of a splitter key — falls in
//!   exactly one half-open range, so no row is emitted twice or dropped;
//! * within a partition the loser tree breaks ties toward the lower source
//!   index, and sources are opened in the same run order as the serial
//!   merge, so duplicate runs of rows appear in the same relative order;
//! * each worker builds a fresh tree, so offset-value codes are derived
//!   from intra-partition comparisons only and never leak across a seam
//!   (Do & Graefe: codes are relative to the prior row *in that merge*).
//!
//! Error and cancellation discipline mirrors `SpillPipeline`: workers send
//! errors in-band and exit; dropping the consumer closes the channels,
//! which unblocks the workers, and `Drop` joins them all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use histok_storage::{KeyRange, RunCatalog, RunMeta};
use histok_types::{Result, Row, RowBatch, SortKey, SortOrder};

use crate::loser_tree::LoserTree;
use crate::merge::{MergeSource, MergeTuning};

/// Batches a worker may run ahead of the consumer (per partition). The
/// consumer drains partitions strictly in range order, so this bound is
/// what lets later partitions keep their I/O in flight while earlier
/// ones stream out; too shallow and the merge degrades toward serial on
/// latency-dominated storage (a worker stalls on `send` with its range
/// readers idle). 32 batches × `tuning.batch_rows` rows ≈ a few MiB of
/// payload per partition at typical row sizes and the default batch.
const CHANNEL_DEPTH: usize = 32;

/// Picks up to `threads − 1` splitter keys from the runs' block-boundary
/// index, equalizing estimated rows per partition, and returns the
/// half-open ranges `[lo, hi)` they induce (in output order).
///
/// With a `cutoff`, boundaries sorting after it are ignored (their rows
/// can never reach the output), and the final range is clipped at the
/// cutoff inclusively — partitions wholly past the cutoff are never
/// created. Callers should fall back to a serial merge when fewer than
/// two ranges come back (tiny inputs, single-block runs, or an extreme
/// key skew that leaves no distinct boundary to split on).
pub fn plan_partitions<K: SortKey>(
    runs: &[RunMeta<K>],
    order: SortOrder,
    threads: usize,
    cutoff: Option<&K>,
) -> Vec<KeyRange<K>> {
    let full_tail =
        |lo: Option<K>| KeyRange { lo, hi: cutoff.cloned(), hi_inclusive: cutoff.is_some() };
    if threads < 2 {
        return vec![full_tail(None)];
    }
    // Candidate splitters: every block boundary still inside the cutoff,
    // weighted by its block's rows.
    let mut candidates: Vec<(&K, u64)> = Vec::new();
    for run in runs {
        for b in &run.blocks {
            if cutoff.is_some_and(|c| order.follows(&b.last_key, c)) {
                continue;
            }
            candidates.push((&b.last_key, u64::from(b.rows)));
        }
    }
    candidates.sort_by(|a, b| order.cmp_keys(a.0, b.0));
    let mut prefix = Vec::with_capacity(candidates.len());
    let mut acc = 0u64;
    for c in &candidates {
        acc += c.1;
        prefix.push(acc);
    }
    let total = acc;
    if total == 0 {
        return vec![full_tail(None)];
    }
    // The greatest boundary key is the runs' overall last key: splitting
    // there would only isolate duplicates of the maximum into a tail
    // partition, so it is never an eligible splitter.
    let max_key = candidates.last().map(|c| c.0).expect("total > 0 implies candidates");
    let mut splitters: Vec<K> = Vec::new();
    for i in 1..threads as u64 {
        let target = ((total as u128 * i as u128) / threads as u128) as u64;
        let idx = prefix.partition_point(|&s| s < target.max(1));
        let Some((key, _)) = candidates.get(idx) else { break };
        // A splitter must strictly advance past the previous one (dropping
        // duplicates merges the would-be-empty partition into its
        // neighbour) and must strictly precede the cutoff (otherwise the
        // clipped tail range covers it already).
        if splitters.last().is_some_and(|s| !order.precedes(s, key)) {
            continue;
        }
        if cutoff.is_some_and(|c| !order.precedes(*key, c)) {
            continue;
        }
        if !order.precedes(*key, max_key) {
            continue;
        }
        splitters.push((*key).clone());
    }
    let mut ranges = Vec::with_capacity(splitters.len() + 1);
    let mut lo: Option<K> = None;
    for s in splitters {
        ranges.push(KeyRange::half_open(lo, Some(s.clone())));
        lo = Some(s);
    }
    ranges.push(full_tail(lo));
    ranges
}

/// Splits rows already sorted in output order into per-range vectors
/// (the run generator's in-memory residue joins its partition's merge).
/// Rows past a final inclusive bound (the cutoff clip) are dropped.
pub fn split_sorted_rows<K: SortKey>(
    rows: Vec<Row<K>>,
    ranges: &[KeyRange<K>],
    order: SortOrder,
) -> Vec<Vec<Row<K>>> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut rest = rows;
    for range in ranges {
        match &range.hi {
            None => out.push(std::mem::take(&mut rest)),
            Some(hi) => {
                let end = if range.hi_inclusive {
                    rest.partition_point(|r| !order.follows(&r.key, hi))
                } else {
                    rest.partition_point(|r| order.precedes(&r.key, hi))
                };
                let tail = rest.split_off(end);
                out.push(std::mem::replace(&mut rest, tail));
            }
        }
    }
    out
}

/// Shared per-partition output row counters, kept alive by the operator
/// for metrics after the stream is gone.
#[derive(Clone)]
pub struct PartitionCounters(Arc<Vec<AtomicU64>>);

impl PartitionCounters {
    fn new(partitions: usize) -> Self {
        PartitionCounters(Arc::new((0..partitions).map(|_| AtomicU64::new(0)).collect()))
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no partitions were created.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Rows emitted per partition so far, in partition (key) order.
    pub fn snapshot(&self) -> Vec<u64> {
        self.0.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    fn add(&self, partition: usize, rows: u64) {
        self.0[partition].fetch_add(rows, Ordering::Relaxed);
    }
}

/// True if `meta`'s key span intersects `range` — non-overlapping runs
/// are never opened for that partition.
pub fn run_overlaps<K: SortKey>(meta: &RunMeta<K>, range: &KeyRange<K>, order: SortOrder) -> bool {
    let (Some(first), Some(last)) = (&meta.first_key, &meta.last_key) else {
        return false;
    };
    if let Some(lo) = &range.lo {
        if order.precedes(last, lo) {
            return false;
        }
    }
    match &range.hi {
        Some(hi) if range.hi_inclusive => !order.follows(first, hi),
        Some(hi) => order.precedes(first, hi),
        None => true,
    }
}

/// What [`merge_runs_partitioned`] decided: a running parallel merge, or
/// the untouched residue handed back because partitioning cannot help
/// (fewer than two usable ranges, or `threads < 2`) — the caller then
/// merges serially, guaranteeing identical output either way.
pub enum PartitionAttempt<K: SortKey> {
    /// Workers are running; drain the stream.
    Partitioned(PartitionedMerge<K>),
    /// Fall back to the serial merge; the residue comes back untouched.
    Serial(Vec<Vec<Row<K>>>),
}

impl<K: SortKey> PartitionAttempt<K> {
    /// The running merge, if the attempt partitioned.
    pub fn partitioned(self) -> Option<PartitionedMerge<K>> {
        match self {
            PartitionAttempt::Partitioned(m) => Some(m),
            PartitionAttempt::Serial(_) => None,
        }
    }
}

/// Plans partitions over `runs`, opens range-scoped (prefetched) readers
/// per partition, folds the sorted in-memory `residue` sequences into
/// their ranges, and launches the parallel merge. See
/// [`PartitionAttempt`] for the serial fallback contract.
pub fn merge_runs_partitioned<K: SortKey>(
    catalog: &RunCatalog<K>,
    runs: &[RunMeta<K>],
    residue: Vec<Vec<Row<K>>>,
    threads: usize,
    cutoff: Option<&K>,
    tuning: &MergeTuning,
) -> Result<PartitionAttempt<K>> {
    if threads < 2 {
        return Ok(PartitionAttempt::Serial(residue));
    }
    let order = catalog.order();
    let ranges = plan_partitions(runs, order, threads, cutoff);
    if ranges.len() < 2 {
        return Ok(PartitionAttempt::Serial(residue));
    }
    // Each residue sequence is sorted on its own; split each across the
    // ranges and give every non-empty slice its own in-memory source.
    let mut residue_parts: Vec<Vec<Vec<Row<K>>>> = (0..ranges.len()).map(|_| Vec::new()).collect();
    for seq in residue {
        for (i, part) in split_sorted_rows(seq, &ranges, order).into_iter().enumerate() {
            if !part.is_empty() {
                residue_parts[i].push(part);
            }
        }
    }
    let scheduler = tuning.io_scheduler.as_ref().map(|s| s.for_backend(catalog.backend()));
    let mut partitions = Vec::with_capacity(ranges.len());
    for (range, seqs) in ranges.iter().zip(residue_parts) {
        let mut sources = Vec::new();
        for meta in runs {
            if !run_overlaps(meta, range, order) {
                continue;
            }
            let reader = catalog.open_range(meta, range.clone())?;
            sources.push(MergeSource::from_reader_scheduled(
                reader,
                tuning.readahead_blocks,
                scheduler.clone(),
            ));
        }
        for seq in seqs {
            sources.push(MergeSource::Memory(seq.into_iter()));
        }
        partitions.push(sources);
    }
    merge_sources_partitioned(partitions, order, tuning).map(PartitionAttempt::Partitioned)
}

/// Spawns one merge worker per source list (one per key range, in output
/// order) and returns the re-sequenced stream. Each worker runs its own
/// loser tree — comparison counters flush into the shared `tuning.stats`
/// handle when the tree drops, and the range-scoped readers book their
/// I/O into the catalog's shared [`IoStats`](histok_storage::IoStats).
pub fn merge_sources_partitioned<K: SortKey>(
    partitions: Vec<Vec<MergeSource<K>>>,
    order: SortOrder,
    tuning: &MergeTuning,
) -> Result<PartitionedMerge<K>> {
    let counters = PartitionCounters::new(partitions.len());
    let mut receivers = Vec::with_capacity(partitions.len());
    let mut workers: Vec<Option<JoinHandle<()>>> = Vec::with_capacity(partitions.len());
    for (i, sources) in partitions.into_iter().enumerate() {
        let (tx, rx) = std::sync::mpsc::sync_channel(CHANNEL_DEPTH);
        let ovc = tuning.ovc;
        let stats = tuning.stats.clone();
        let batch_rows = tuning.batch_rows.max(1);
        // Partition ranges are half-open on keys, so every duplicate of a
        // key lands in exactly one partition and per-partition folding is
        // byte-identical to a serial folded merge.
        let fold = tuning.fold.clone();
        let counters = counters.clone();
        let spawned = std::thread::Builder::new().name(format!("pmerge-{i}")).spawn(move || {
            merge_worker(sources, order, ovc, stats, fold, batch_rows, tx, counters, i)
        });
        match spawned {
            Ok(handle) => {
                receivers.push(Some(rx));
                workers.push(Some(handle));
            }
            Err(e) => {
                // Unblock and reap the workers already launched before
                // surfacing the spawn failure.
                drop(rx);
                receivers.clear();
                for h in workers.iter_mut().filter_map(Option::take) {
                    let _ = h.join();
                }
                return Err(histok_types::Error::Io(e));
            }
        }
    }
    Ok(PartitionedMerge {
        receivers,
        workers,
        current: 0,
        buffer: Vec::new().into_iter(),
        counters,
        failed: false,
    })
}

/// One partition's merge loop: drain the loser tree through its batched
/// [`LoserTree::merge_into`] interface, shipping whole [`RowBatch`]es
/// (prefix column included) through the channel; errors go in-band and
/// end the partition; a closed channel (consumer gone) ends it quietly.
#[allow(clippy::too_many_arguments)]
fn merge_worker<K: SortKey>(
    sources: Vec<MergeSource<K>>,
    order: SortOrder,
    ovc: bool,
    stats: Option<crate::cmp_stats::CmpStats>,
    fold: Option<crate::fold::FoldSpec>,
    batch_rows: usize,
    tx: SyncSender<Result<RowBatch<K>>>,
    counters: PartitionCounters,
    partition: usize,
) {
    let mut tree = match LoserTree::with_ovc(sources, order, ovc, stats) {
        Ok(t) => t,
        Err(e) => {
            let _ = tx.send(Err(e));
            return;
        }
    };
    tree.set_batch_target(batch_rows);
    tree.set_fold(fold);
    loop {
        let mut batch = RowBatch::with_capacity(batch_rows);
        match tree.merge_into(&mut batch, batch_rows) {
            Ok(()) => {
                if batch.is_empty() {
                    return;
                }
                counters.add(partition, batch.len() as u64);
                if tx.send(Ok(batch)).is_err() {
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

/// Channel endpoint over which a worker ships row batches (or an error).
type BatchReceiver<K> = Receiver<Result<RowBatch<K>>>;

/// The re-sequenced output of a partitioned merge: partitions drain in
/// key-range order, so the stream is globally sorted. After an error the
/// iterator is fused. Dropping it mid-stream closes every channel and
/// joins every worker.
pub struct PartitionedMerge<K: SortKey> {
    receivers: Vec<Option<BatchReceiver<K>>>,
    workers: Vec<Option<JoinHandle<()>>>,
    current: usize,
    buffer: std::vec::IntoIter<Row<K>>,
    counters: PartitionCounters,
    failed: bool,
}

impl<K: SortKey> PartitionedMerge<K> {
    /// Number of partitions (worker threads) in this merge.
    pub fn partitions(&self) -> usize {
        self.workers.len()
    }

    /// Handle on the per-partition row counters; stays valid after the
    /// stream is dropped.
    pub fn counters(&self) -> PartitionCounters {
        self.counters.clone()
    }

    /// Disconnects every worker and joins them (idempotent).
    fn shut_down(&mut self) {
        self.receivers.clear();
        for h in self.workers.iter_mut().filter_map(Option::take) {
            let _ = h.join();
        }
    }
}

impl<K: SortKey> Iterator for PartitionedMerge<K> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(row) = self.buffer.next() {
                return Some(Ok(row));
            }
            let slot = self.receivers.get_mut(self.current)?;
            let Some(rx) = slot.as_ref() else {
                self.current += 1;
                continue;
            };
            match rx.recv() {
                Ok(Ok(batch)) => self.buffer = batch.rows.into_iter(),
                Ok(Err(e)) => {
                    self.failed = true;
                    self.shut_down();
                    return Some(Err(e));
                }
                Err(_) => {
                    // Worker finished its range and hung up.
                    *slot = None;
                    if let Some(h) = self.workers[self.current].take() {
                        let _ = h.join();
                    }
                    self.current += 1;
                }
            }
        }
    }
}

impl<K: SortKey> Drop for PartitionedMerge<K> {
    fn drop(&mut self) {
        self.shut_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::{IoStats, MemoryBackend};
    use std::sync::Arc;

    fn catalog(order: SortOrder) -> Arc<RunCatalog<u64>> {
        // Small blocks so multi-block runs (and thus splitter candidates)
        // appear at test sizes.
        Arc::new(
            RunCatalog::new(Arc::new(MemoryBackend::new()), "p", order, IoStats::new())
                .with_block_bytes(256),
        )
    }

    fn write_run(cat: &RunCatalog<u64>, keys: impl IntoIterator<Item = u64>) {
        let mut w = cat.start_run().unwrap();
        for k in keys {
            w.append(&Row::key_only(k)).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
    }

    fn drain(m: PartitionedMerge<u64>) -> Vec<u64> {
        m.map(|r| r.unwrap().key).collect()
    }

    #[test]
    fn partitioned_equals_serial_over_interleaved_runs() {
        let cat = catalog(SortOrder::Ascending);
        for i in 0..4u64 {
            write_run(&cat, (0..400).map(|j| j * 4 + i));
        }
        let runs = cat.runs();
        let m = merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default())
            .unwrap()
            .partitioned()
            .expect("enough blocks to partition");
        assert!(m.partitions() >= 2);
        let counters = m.counters();
        let keys = drain(m);
        assert_eq!(keys, (0..1600).collect::<Vec<_>>());
        assert_eq!(counters.snapshot().iter().sum::<u64>(), 1600);
    }

    #[test]
    fn splitter_duplicates_straddle_exactly_once() {
        // A heavy duplicate key sits right where splitters land; the
        // half-open ranges must emit every copy exactly once.
        let cat = catalog(SortOrder::Ascending);
        write_run(&cat, (0..300).map(|_| 500u64));
        write_run(&cat, 0..300);
        write_run(&cat, 400..700);
        let runs = cat.runs();
        let m = merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default())
            .unwrap()
            .partitioned()
            .expect("partitionable");
        let keys = drain(m);
        let mut expected: Vec<u64> =
            (0..300).chain(400..700).chain((0..300).map(|_| 500)).collect();
        expected.sort_unstable();
        assert_eq!(keys, expected);
    }

    #[test]
    fn cutoff_clips_final_partition_and_drops_tail_ranges() {
        let cat = catalog(SortOrder::Ascending);
        write_run(&cat, 0..1000);
        write_run(&cat, 0..1000);
        let runs = cat.runs();
        let cutoff = 99u64;
        let m =
            merge_runs_partitioned(&cat, &runs, vec![], 4, Some(&cutoff), &MergeTuning::default())
                .unwrap()
                .partitioned()
                .expect("partitionable");
        let keys = drain(m);
        // Nothing past the cutoff; ties at the cutoff survive.
        let expected: Vec<u64> = (0..=99).flat_map(|k| [k, k]).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn residue_rows_join_their_partitions() {
        let cat = catalog(SortOrder::Ascending);
        write_run(&cat, (0..500).map(|j| j * 2));
        let runs = cat.runs();
        let residue: Vec<Row<u64>> = (0..500).map(|j| Row::key_only(j * 2 + 1)).collect();
        let m =
            merge_runs_partitioned(&cat, &runs, vec![residue], 4, None, &MergeTuning::default())
                .unwrap()
                .partitioned()
                .expect("partitionable");
        assert_eq!(drain(m), (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn descending_order_partitions() {
        let cat = catalog(SortOrder::Descending);
        for i in 0..2u64 {
            write_run(&cat, (0..600).rev().map(|j| j * 2 + i));
        }
        let runs = cat.runs();
        let m = merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default())
            .unwrap()
            .partitioned()
            .expect("partitionable");
        assert_eq!(drain(m), (0..1200).rev().collect::<Vec<_>>());
    }

    #[test]
    fn single_block_runs_fall_back_to_serial() {
        let cat = Arc::new(RunCatalog::new(
            Arc::new(MemoryBackend::new()),
            "p",
            SortOrder::Ascending,
            IoStats::new(),
        ));
        write_run(&cat, 0..10);
        let runs = cat.runs();
        let m =
            merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default()).unwrap();
        assert!(m.partitioned().is_none(), "one boundary key cannot split into two ranges");
    }

    #[test]
    fn plan_balances_rows_across_partitions() {
        let cat = catalog(SortOrder::Ascending);
        for _ in 0..3 {
            write_run(&cat, 0..1000);
        }
        let runs = cat.runs();
        let ranges = plan_partitions(&runs, SortOrder::Ascending, 4, None);
        assert_eq!(ranges.len(), 4);
        let m = merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default())
            .unwrap()
            .partitioned()
            .expect("partitionable");
        let counters = m.counters();
        let keys = drain(m);
        assert_eq!(keys.len(), 3000);
        let per = counters.snapshot();
        let max = *per.iter().max().unwrap();
        let min = *per.iter().min().unwrap();
        // Identical runs: boundary-weighted planning should land near 750
        // rows per partition; allow generous block-granularity slack.
        assert!(max <= 2 * min.max(1), "unbalanced partitions: {per:?}");
    }
}
