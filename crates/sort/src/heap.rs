//! A binary heap ordered by a runtime comparator.
//!
//! `std::collections::BinaryHeap` requires `Ord` on the element type, which
//! cannot capture a runtime [`histok_types::SortOrder`] without wrapping
//! every element. `BinaryHeapBy` stores the comparator once.

/// A binary min-heap by `before`: `pop` returns the element for which
/// `before(x, y)` holds against every other element `y`.
///
/// To get max-heap behaviour, invert the comparator.
pub struct BinaryHeapBy<T, F> {
    items: Vec<T>,
    before: F,
}

impl<T, F: FnMut(&T, &T) -> bool> BinaryHeapBy<T, F> {
    /// Creates an empty heap with comparator `before`.
    pub fn new(before: F) -> Self {
        BinaryHeapBy { items: Vec::new(), before }
    }

    /// Creates an empty heap with space for `cap` elements.
    pub fn with_capacity(cap: usize, before: F) -> Self {
        BinaryHeapBy { items: Vec::with_capacity(cap), before }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the heap has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The top element (the minimum under `before`), if any.
    pub fn peek(&self) -> Option<&T> {
        self.items.first()
    }

    /// Inserts an element; O(log n).
    pub fn push(&mut self, item: T) {
        self.items.push(item);
        self.sift_up(self.items.len() - 1);
    }

    /// Removes and returns the top element; O(log n).
    pub fn pop(&mut self) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let top = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        top
    }

    /// Pops the top and pushes `item` in one rebalance; O(log n) and never
    /// allocates. Returns the popped top.
    pub fn replace_top(&mut self, item: T) -> Option<T> {
        if self.items.is_empty() {
            self.items.push(item);
            return None;
        }
        let old = std::mem::replace(&mut self.items[0], item);
        self.sift_down(0);
        Some(old)
    }

    /// Drains the heap in heap order (top first).
    pub fn drain_sorted(mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.items.len());
        while let Some(x) = self.pop() {
            out.push(x);
        }
        out
    }

    /// Removes all elements, in unspecified order.
    pub fn drain_unordered(&mut self) -> std::vec::Drain<'_, T> {
        self.items.drain(..)
    }

    /// Iterates the elements in unspecified order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if (self.before)(&self.items[i], &self.items[parent]) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.items.len() && (self.before)(&self.items[l], &self.items[best]) {
                best = l;
            }
            if r < self.items.len() && (self.before)(&self.items[r], &self.items[best]) {
                best = r;
            }
            if best == i {
                return;
            }
            self.items.swap(i, best);
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn min_heap_pops_ascending() {
        let mut h = BinaryHeapBy::new(|a: &i32, b: &i32| a < b);
        for x in [5, 3, 8, 1, 9, 2] {
            h.push(x);
        }
        assert_eq!(h.peek(), Some(&1));
        let sorted = h.drain_sorted();
        assert_eq!(sorted, vec![1, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn max_heap_via_inverted_comparator() {
        let mut h = BinaryHeapBy::new(|a: &i32, b: &i32| a > b);
        for x in [5, 3, 8] {
            h.push(x);
        }
        assert_eq!(h.pop(), Some(8));
        assert_eq!(h.pop(), Some(5));
        assert_eq!(h.pop(), Some(3));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn replace_top_keeps_invariant() {
        let mut h = BinaryHeapBy::new(|a: &i32, b: &i32| a < b);
        for x in [10, 20, 30] {
            h.push(x);
        }
        assert_eq!(h.replace_top(25), Some(10));
        assert_eq!(h.peek(), Some(&20));
        assert_eq!(h.replace_top(5), Some(20));
        assert_eq!(h.peek(), Some(&5));
        // Empty-heap replace behaves like push.
        let mut e = BinaryHeapBy::new(|a: &i32, b: &i32| a < b);
        assert_eq!(e.replace_top(1), None);
        assert_eq!(e.peek(), Some(&1));
    }

    #[test]
    fn drain_unordered_empties_the_heap() {
        let mut h = BinaryHeapBy::new(|a: &i32, b: &i32| a < b);
        for x in 0..10 {
            h.push(x);
        }
        let mut drained: Vec<i32> = h.drain_unordered().collect();
        drained.sort_unstable();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(h.is_empty());
    }

    proptest! {
        #[test]
        fn prop_heap_sorts_anything(mut xs in proptest::collection::vec(any::<i64>(), 0..200)) {
            let mut h = BinaryHeapBy::with_capacity(xs.len(), |a: &i64, b: &i64| a < b);
            for &x in &xs {
                h.push(x);
            }
            let got = h.drain_sorted();
            xs.sort_unstable();
            prop_assert_eq!(got, xs);
        }

        #[test]
        fn prop_replace_top_equals_pop_then_push(
            xs in proptest::collection::vec(any::<i32>(), 1..50),
            y in any::<i32>(),
        ) {
            let mut a = BinaryHeapBy::new(|p: &i32, q: &i32| p < q);
            let mut b = BinaryHeapBy::new(|p: &i32, q: &i32| p < q);
            for &x in &xs {
                a.push(x);
                b.push(x);
            }
            let ra = a.replace_top(y);
            let rb = b.pop();
            b.push(y);
            prop_assert_eq!(ra, rb);
            prop_assert_eq!(a.drain_sorted(), b.drain_sorted());
        }
    }
}
