//! Memory budget for an operator's in-memory workspace.
//!
//! The paper's setting gives each operator a fixed allocation ("the default
//! memory allocation for a top-k operator is 1 GB", §5.1.2). [`MemoryBudget`]
//! tracks bytes charged against that allocation and answers the only
//! question run generation asks: *is there room for one more row?*

use histok_types::{HeapSize, Row, SortKey};

/// Estimated bookkeeping overhead per buffered row (heap entry, indices).
const PER_ROW_OVERHEAD: usize = 16;

/// Bytes one buffered row is charged against the budget: its inline size,
/// its owned heap bytes, and a fixed bookkeeping overhead.
pub fn row_footprint<K: SortKey>(row: &Row<K>) -> usize {
    std::mem::size_of::<Row<K>>() + row.heap_size() + PER_ROW_OVERHEAD
}

/// A simple charge/release byte counter with a hard limit.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    limit: usize,
    used: usize,
    peak: usize,
    rows: usize,
    total_charged: u64,
    lifetime_rows: u64,
}

impl MemoryBudget {
    /// Creates a budget of `limit` bytes.
    pub fn new(limit: usize) -> Self {
        MemoryBudget { limit, used: 0, peak: 0, rows: 0, total_charged: 0, lifetime_rows: 0 }
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Rows currently charged.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True if charging `bytes` more would exceed the limit.
    pub fn would_exceed(&self, bytes: usize) -> bool {
        self.used.saturating_add(bytes) > self.limit
    }

    /// Charges one row of `bytes`. The caller decides whether to spill
    /// first; the budget allows a single row to exceed the limit so that
    /// rows larger than the whole budget can still flow through (the
    /// robustness concern of §2.3: "if individual rows are unexpectedly
    /// large ... this algorithm may unexpectedly fail" — ours must not).
    pub fn charge(&mut self, bytes: usize) {
        self.used = self.used.saturating_add(bytes);
        self.rows += 1;
        self.peak = self.peak.max(self.used);
        self.total_charged += bytes as u64;
        self.lifetime_rows += 1;
    }

    /// Releases one row of `bytes`.
    pub fn release(&mut self, bytes: usize) {
        debug_assert!(self.used >= bytes, "releasing more than charged");
        debug_assert!(self.rows > 0, "releasing a row when none are charged");
        self.used = self.used.saturating_sub(bytes);
        self.rows = self.rows.saturating_sub(1);
    }

    /// Average bytes per charged row over the budget's lifetime; `fallback`
    /// before any row was seen. Used to estimate memory capacity in rows.
    pub fn avg_row_bytes(&self, fallback: usize) -> usize {
        match self.total_charged.checked_div(self.lifetime_rows) {
            Some(avg) if self.lifetime_rows > 0 => (avg as usize).max(1),
            _ => fallback.max(1),
        }
    }

    /// Estimated capacity of the budget in rows, given what has been
    /// observed so far.
    pub fn capacity_rows(&self, fallback_row_bytes: usize) -> u64 {
        (self.limit / self.avg_row_bytes(fallback_row_bytes)).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_roundtrip() {
        let mut b = MemoryBudget::new(100);
        b.charge(40);
        b.charge(40);
        assert_eq!(b.used(), 80);
        assert_eq!(b.rows(), 2);
        assert!(!b.would_exceed(20));
        assert!(b.would_exceed(21));
        b.release(40);
        assert_eq!(b.used(), 40);
        assert_eq!(b.rows(), 1);
        assert_eq!(b.peak(), 80);
    }

    #[test]
    fn single_oversized_row_is_allowed() {
        let mut b = MemoryBudget::new(10);
        assert!(b.would_exceed(1000));
        b.charge(1000); // must not panic — robustness over strictness
        assert_eq!(b.used(), 1000);
        b.release(1000);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn capacity_rows_adapts_to_observed_sizes() {
        let mut b = MemoryBudget::new(1000);
        assert_eq!(b.capacity_rows(100), 10); // fallback: 1000/100
        for _ in 0..4 {
            b.charge(50);
        }
        // Average observed row is 50 bytes → capacity 20 rows.
        assert_eq!(b.capacity_rows(100), 20);
    }

    #[test]
    fn row_footprint_includes_payload_and_overhead() {
        let row = histok_types::Row::new(1u64, vec![0u8; 100]);
        let fp = row_footprint(&row);
        assert!(fp >= 100 + PER_ROW_OVERHEAD);
        let empty = histok_types::Row::key_only(1u64);
        assert!(row_footprint(&empty) >= PER_ROW_OVERHEAD);
        assert!(fp > row_footprint(&empty));
    }
}
