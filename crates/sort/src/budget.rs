//! Memory budget for an operator's in-memory workspace.
//!
//! The paper's setting gives each operator a fixed allocation ("the default
//! memory allocation for a top-k operator is 1 GB", §5.1.2). [`MemoryBudget`]
//! tracks bytes charged against that allocation and answers the only
//! question run generation asks: *is there room for one more row?*

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use histok_types::{HeapSize, Row, SortKey};

/// Estimated bookkeeping overhead per buffered row (heap entry, indices).
const PER_ROW_OVERHEAD: usize = 16;

/// A shared, revocable byte limit.
///
/// Every [`MemoryBudget`] reads its limit through one of these. Budgets
/// created with [`MemoryBudget::new`] get a private handle; budgets created
/// with [`MemoryBudget::with_handle`] share one, so an external owner (a
/// server granting per-query leases) can grow or shrink the limit of a
/// *running* sort without restarting it. A grow takes effect at the next
/// `would_exceed` check — the operator simply buffers more rows before its
/// next spill. A shrink below the current `used` does not panic or evict:
/// `charge` tolerates overage by design, and the next `would_exceed` check
/// returns true, so the workspace drains to the new limit at the next
/// natural spill/release point.
#[derive(Debug, Clone)]
pub struct BudgetHandle {
    limit: Arc<AtomicUsize>,
}

impl BudgetHandle {
    /// Creates a handle with the given initial limit.
    pub fn new(limit: usize) -> Self {
        BudgetHandle { limit: Arc::new(AtomicUsize::new(limit)) }
    }

    /// The current limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit.load(Ordering::Acquire)
    }

    /// Replaces the limit; all budgets sharing this handle observe the new
    /// value on their next check.
    pub fn set_limit(&self, limit: usize) {
        self.limit.store(limit, Ordering::Release);
    }

    /// True if `other` shares this handle's limit cell.
    pub fn same_as(&self, other: &BudgetHandle) -> bool {
        Arc::ptr_eq(&self.limit, &other.limit)
    }
}

/// Bytes one buffered row is charged against the budget: its inline size,
/// its owned heap bytes, and a fixed bookkeeping overhead.
pub fn row_footprint<K: SortKey>(row: &Row<K>) -> usize {
    std::mem::size_of::<Row<K>>() + row.heap_size() + PER_ROW_OVERHEAD
}

/// A simple charge/release byte counter with a hard limit.
///
/// The limit lives behind a [`BudgetHandle`]; cloning a budget shares the
/// handle (and resets nothing else), so components of one operator observe
/// a lease resize together while keeping independent usage counters.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    limit: BudgetHandle,
    used: usize,
    peak: usize,
    rows: usize,
    total_charged: u64,
    lifetime_rows: u64,
}

impl MemoryBudget {
    /// Creates a budget of `limit` bytes with a private limit handle.
    pub fn new(limit: usize) -> Self {
        MemoryBudget::with_handle(BudgetHandle::new(limit))
    }

    /// Creates a budget whose limit is read through `handle`, shared with
    /// whoever else holds it.
    pub fn with_handle(handle: BudgetHandle) -> Self {
        MemoryBudget {
            limit: handle,
            used: 0,
            peak: 0,
            rows: 0,
            total_charged: 0,
            lifetime_rows: 0,
        }
    }

    /// The current limit (re-read on every call — it may have been resized
    /// through a shared [`BudgetHandle`]).
    pub fn limit(&self) -> usize {
        self.limit.limit()
    }

    /// The handle through which this budget reads its limit.
    pub fn handle(&self) -> &BudgetHandle {
        &self.limit
    }

    /// A fresh budget sharing this one's limit handle with zeroed usage
    /// counters — the template for sibling components of the same lease.
    pub fn fork(&self) -> Self {
        MemoryBudget::with_handle(self.limit.clone())
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Rows currently charged.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True if charging `bytes` more would exceed the limit.
    pub fn would_exceed(&self, bytes: usize) -> bool {
        self.used.saturating_add(bytes) > self.limit.limit()
    }

    /// Charges one row of `bytes`. The caller decides whether to spill
    /// first; the budget allows a single row to exceed the limit so that
    /// rows larger than the whole budget can still flow through (the
    /// robustness concern of §2.3: "if individual rows are unexpectedly
    /// large ... this algorithm may unexpectedly fail" — ours must not).
    pub fn charge(&mut self, bytes: usize) {
        self.used = self.used.saturating_add(bytes);
        self.rows += 1;
        self.peak = self.peak.max(self.used);
        self.total_charged += bytes as u64;
        self.lifetime_rows += 1;
    }

    /// Releases one row of `bytes`.
    pub fn release(&mut self, bytes: usize) {
        debug_assert!(self.used >= bytes, "releasing more than charged");
        debug_assert!(self.rows > 0, "releasing a row when none are charged");
        self.used = self.used.saturating_sub(bytes);
        self.rows = self.rows.saturating_sub(1);
    }

    /// Adjusts the charge of an already-charged row whose size changed in
    /// place (a payload grown or shrunk by folding a duplicate into it).
    /// Does not affect the row count.
    pub fn resize_row(&mut self, old_bytes: usize, new_bytes: usize) {
        if new_bytes >= old_bytes {
            let delta = new_bytes - old_bytes;
            self.used = self.used.saturating_add(delta);
            self.peak = self.peak.max(self.used);
            self.total_charged += delta as u64;
        } else {
            self.used = self.used.saturating_sub(old_bytes - new_bytes);
        }
    }

    /// Average bytes per charged row over the budget's lifetime; `fallback`
    /// before any row was seen. Used to estimate memory capacity in rows.
    pub fn avg_row_bytes(&self, fallback: usize) -> usize {
        match self.total_charged.checked_div(self.lifetime_rows) {
            Some(avg) if self.lifetime_rows > 0 => (avg as usize).max(1),
            _ => fallback.max(1),
        }
    }

    /// Estimated capacity of the budget in rows, given what has been
    /// observed so far.
    pub fn capacity_rows(&self, fallback_row_bytes: usize) -> u64 {
        (self.limit.limit() / self.avg_row_bytes(fallback_row_bytes)).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_roundtrip() {
        let mut b = MemoryBudget::new(100);
        b.charge(40);
        b.charge(40);
        assert_eq!(b.used(), 80);
        assert_eq!(b.rows(), 2);
        assert!(!b.would_exceed(20));
        assert!(b.would_exceed(21));
        b.release(40);
        assert_eq!(b.used(), 40);
        assert_eq!(b.rows(), 1);
        assert_eq!(b.peak(), 80);
    }

    #[test]
    fn single_oversized_row_is_allowed() {
        let mut b = MemoryBudget::new(10);
        assert!(b.would_exceed(1000));
        b.charge(1000); // must not panic — robustness over strictness
        assert_eq!(b.used(), 1000);
        b.release(1000);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn capacity_rows_adapts_to_observed_sizes() {
        let mut b = MemoryBudget::new(1000);
        assert_eq!(b.capacity_rows(100), 10); // fallback: 1000/100
        for _ in 0..4 {
            b.charge(50);
        }
        // Average observed row is 50 bytes → capacity 20 rows.
        assert_eq!(b.capacity_rows(100), 20);
    }

    #[test]
    fn lease_grow_is_visible_at_the_next_check() {
        let mut b = MemoryBudget::new(100);
        b.charge(90);
        assert!(b.would_exceed(20));
        b.handle().set_limit(200);
        assert_eq!(b.limit(), 200);
        assert!(!b.would_exceed(20), "grown lease must admit more rows without a restart");
        b.charge(20);
        assert_eq!(b.used(), 110);
        assert_eq!(b.peak(), 110);
    }

    #[test]
    fn shrink_below_used_defers_until_release() {
        let mut b = MemoryBudget::new(100);
        b.charge(40);
        b.charge(40);
        // Revoke most of the lease while 80 bytes are still buffered.
        b.handle().set_limit(50);
        // No panic, no eviction: usage stays, but any further charge is
        // flagged so the operator spills at its next natural boundary.
        assert_eq!(b.used(), 80);
        assert!(b.would_exceed(1));
        b.release(40);
        assert!(b.would_exceed(11));
        b.release(40);
        assert_eq!(b.used(), 0);
        assert!(!b.would_exceed(50));
        b.charge(50); // back under the shrunk limit
        assert_eq!(b.peak(), 80, "peak reflects the pre-shrink high-water mark");
    }

    #[test]
    fn clones_and_forks_share_the_resized_limit() {
        let a = MemoryBudget::new(64);
        let mut b = a.clone();
        let c = a.fork();
        b.charge(10);
        assert_eq!(a.used(), 0, "usage counters are per-clone");
        a.handle().set_limit(1024);
        assert_eq!(b.limit(), 1024);
        assert_eq!(c.limit(), 1024);
        assert!(a.handle().same_as(b.handle()) && a.handle().same_as(c.handle()));
        let private = MemoryBudget::new(64);
        assert!(!private.handle().same_as(a.handle()));
        assert_eq!(private.limit(), 64);
    }

    #[test]
    fn concurrent_resize_preserves_accounting_invariants() {
        // A lease owner grows and shrinks the limit from another thread
        // while the sort charges and releases. The usage/peak accounting
        // must stay exact (it is single-writer); the limit is allowed to
        // change between a `would_exceed` check and the charge — the
        // budget's tolerated-overage contract absorbs that race.
        let budget = MemoryBudget::new(1_000);
        let handle = budget.handle().clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let resizer = {
            let stop = stop.clone();
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut limit = 1_000usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    limit = if limit == 1_000 { 10 } else { 1_000 };
                    handle.set_limit(limit);
                    std::thread::yield_now();
                }
            })
        };
        let mut b = budget;
        for round in 0..2_000 {
            let bytes = 1 + round % 7;
            if !b.would_exceed(bytes) || b.rows() == 0 {
                b.charge(bytes);
                assert!(b.peak() >= b.used());
                b.release(bytes);
            }
            assert_eq!(b.rows(), 0);
            assert_eq!(b.used(), 0);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        resizer.join().unwrap();
        let final_limit = handle.limit();
        assert!(final_limit == 10 || final_limit == 1_000);
    }

    #[test]
    fn row_footprint_includes_payload_and_overhead() {
        let row = histok_types::Row::new(1u64, vec![0u8; 100]);
        let fp = row_footprint(&row);
        assert!(fp >= 100 + PER_ROW_OVERHEAD);
        let empty = histok_types::Row::key_only(1u64);
        assert!(row_footprint(&empty) >= PER_ROW_OVERHEAD);
        assert!(fp > row_footprint(&empty));
    }
}
