//! Comparison accounting for the offset-value-coding hot path.
//!
//! Offset-value codes replace most full key comparisons in the tournament
//! structures with a single `u64` compare. To make that win observable —
//! and to catch regressions where the fallback fires more often than it
//! should — every OVC-aware component counts how many duels it resolved on
//! codes alone (`ovc_cmps`) versus how many had to decode and compare full
//! keys (`full_cmps`). The counters follow the [`histok-storage` `IoStats`]
//! idiom: a cheaply cloneable shared handle, all clones observing the same
//! atomics, read through an immutable snapshot.
//!
//! Hot loops do not touch the atomics per duel; they keep plain `u64`
//! locals and flush them into the shared handle when the structure drains
//! or drops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe comparison counters for one operator or experiment.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same counters.
#[derive(Debug, Clone, Default)]
pub struct CmpStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    ovc_cmps: AtomicU64,
    full_cmps: AtomicU64,
    merge_batches: AtomicU64,
}

/// A point-in-time copy of the comparison counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmpSnapshot {
    /// Duels decided by comparing two offset-value codes (or normalized
    /// key prefixes) — one integer compare, no key decoding.
    pub ovc_cmps: u64,
    /// Duels that fell back to a full key comparison because the codes
    /// tied (equal keys, or keys equal through the coded prefix).
    pub full_cmps: u64,
    /// Row batches emitted by `LoserTree::merge_into` drain loops — how
    /// often the merge amortized its refill/error checks over a batch
    /// instead of paying them per row.
    pub merge_batches: u64,
}

impl CmpStats {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a batch of locally-accumulated counts. Hot loops call this
    /// once per drain/drop, not per comparison.
    pub fn record(&self, ovc_cmps: u64, full_cmps: u64) {
        if ovc_cmps > 0 {
            self.inner.ovc_cmps.fetch_add(ovc_cmps, Ordering::Relaxed);
        }
        if full_cmps > 0 {
            self.inner.full_cmps.fetch_add(full_cmps, Ordering::Relaxed);
        }
    }

    /// Adds locally-counted batch emissions (see
    /// [`CmpSnapshot::merge_batches`]); flushed with the same
    /// once-per-drop discipline as [`CmpStats::record`].
    pub fn record_batches(&self, batches: u64) {
        if batches > 0 {
            self.inner.merge_batches.fetch_add(batches, Ordering::Relaxed);
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> CmpSnapshot {
        CmpSnapshot {
            ovc_cmps: self.inner.ovc_cmps.load(Ordering::Relaxed),
            full_cmps: self.inner.full_cmps.load(Ordering::Relaxed),
            merge_batches: self.inner.merge_batches.load(Ordering::Relaxed),
        }
    }
}

impl CmpSnapshot {
    /// Counter-wise sum with `other`, for aggregating sub-operators that
    /// each own their stats.
    pub fn merged(&self, other: &CmpSnapshot) -> CmpSnapshot {
        CmpSnapshot {
            ovc_cmps: self.ovc_cmps.saturating_add(other.ovc_cmps),
            full_cmps: self.full_cmps.saturating_add(other.full_cmps),
            merge_batches: self.merge_batches.saturating_add(other.merge_batches),
        }
    }

    /// Total duels, regardless of how they were decided.
    pub fn total(&self) -> u64 {
        self.ovc_cmps.saturating_add(self.full_cmps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_clones_share() {
        let a = CmpStats::new();
        let b = a.clone();
        a.record(10, 2);
        b.record(5, 1);
        let snap = a.snapshot();
        assert_eq!(snap.ovc_cmps, 15);
        assert_eq!(snap.full_cmps, 3);
        assert_eq!(snap.total(), 18);
    }

    #[test]
    fn merged_sums_counterwise() {
        let a = CmpSnapshot { ovc_cmps: 3, full_cmps: 1, merge_batches: 2 };
        let b = CmpSnapshot { ovc_cmps: 4, full_cmps: 2, merge_batches: 1 };
        let m = a.merged(&b);
        assert_eq!(m, CmpSnapshot { ovc_cmps: 7, full_cmps: 3, merge_batches: 3 });
    }
}
