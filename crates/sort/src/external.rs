//! A complete external merge sort assembled from the substrate pieces.
//!
//! This is the engine behind the *traditional* top-k baseline (§2.4): every
//! input row is written to sorted runs, the runs are (multi-level) merged,
//! and the caller takes however many rows it wants from the final merge.
//! No filtering, no run-size limit — exactly the behaviour whose
//! "performance cliff" the paper sets out to remove.

use std::sync::Arc;

use histok_storage::{IoScheduler, IoStats, RunCatalog, StorageBackend};
use histok_types::{Result, Row, SortKey, SortOrder};

use crate::budget::MemoryBudget;
use crate::cascade::{plan_merges_cascade, CascadeStats};
use crate::fold::FoldSpec;
use crate::merge::{
    merge_sources_tuned, open_source, BatchedMerge, MergeConfig, MergePolicy, MergeSource,
    MergeTuning,
};
use crate::observer::NoopObserver;
use crate::partition::{merge_runs_partitioned, PartitionCounters, PartitionedMerge};
use crate::run_gen::{BatchSort, LoadSortStore, ResiduePolicy, RunGenerator};

/// A full external merge sort: push rows, then stream them back sorted.
///
/// ```
/// use std::sync::Arc;
/// use histok_sort::ExternalSorter;
/// use histok_storage::{IoStats, MemoryBackend};
/// use histok_types::{Row, SortOrder};
///
/// let mut sorter: ExternalSorter<u64> = ExternalSorter::new(
///     Arc::new(MemoryBackend::new()),
///     SortOrder::Ascending,
///     64 * 60, // workspace for ~64 rows
///     IoStats::new(),
/// );
/// for key in (0..1_000u64).rev() {
///     sorter.push(Row::key_only(key))?;
/// }
/// let sorted: Vec<u64> =
///     sorter.finish()?.map(|r| r.map(|row| row.key)).collect::<Result<_, _>>()?;
/// assert_eq!(sorted, (0..1_000).collect::<Vec<_>>());
/// # Ok::<(), histok_types::Error>(())
/// ```
pub struct ExternalSorter<K: SortKey> {
    catalog: Arc<RunCatalog<K>>,
    generator: Box<dyn RunGenerator<K>>,
    budget: MemoryBudget,
    merge: MergeConfig,
    tuning: MergeTuning,
    order: SortOrder,
    rows_in: u64,
    merge_threads: usize,
    partition_min_rows: u64,
    cascade_threads: usize,
    fold: Option<FoldSpec>,
}

impl<K: SortKey> ExternalSorter<K> {
    /// Creates a sorter spilling through `backend` under `budget_bytes` of
    /// workspace.
    pub fn new(
        backend: Arc<dyn StorageBackend>,
        order: SortOrder,
        budget_bytes: usize,
        stats: IoStats,
    ) -> Self {
        Self::with_memory_budget(backend, order, MemoryBudget::new(budget_bytes), stats)
    }

    /// Creates a sorter whose workspace is governed by `budget` — fork it
    /// from a shared [`crate::BudgetHandle`] when an external lease owner
    /// may resize the limit while the sort runs.
    pub fn with_memory_budget(
        backend: Arc<dyn StorageBackend>,
        order: SortOrder,
        budget: MemoryBudget,
        stats: IoStats,
    ) -> Self {
        let catalog = Arc::new(RunCatalog::new(
            backend,
            RunCatalog::<K>::unique_prefix("xsort"),
            order,
            stats,
        ));
        // Load-sort-store run generation either way; keys whose normalized
        // prefix is exact take the radix batch sort (same flush points and
        // run contents, no comparator on the hot path).
        let generator: Box<dyn RunGenerator<K>> = if K::norm_prefix_is_exact() {
            Box::new(BatchSort::with_budget(catalog.clone(), budget.fork()))
        } else {
            Box::new(LoadSortStore::with_budget(catalog.clone(), budget.fork()))
        };
        ExternalSorter {
            catalog,
            generator,
            budget,
            merge: MergeConfig { fan_in: 512, policy: MergePolicy::SmallestFirst },
            tuning: MergeTuning::default(),
            order,
            rows_in: 0,
            merge_threads: 1,
            partition_min_rows: 0,
            cascade_threads: 1,
            fold: None,
        }
    }

    /// Enables in-sort duplicate folding: equal keys are combined by
    /// `fold`'s aggregator during run generation and again at every merge
    /// duel, so the sorted stream yields each distinct key exactly once
    /// with its fully merged payload.
    pub fn with_fold(mut self, fold: FoldSpec) -> Self {
        self.generator.set_fold(Some(fold.clone()));
        self.fold = Some(fold);
        self
    }

    /// Overrides the merge fan-in.
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        self.merge.fan_in = fan_in;
        self
    }

    /// Forces batched (radix) or comparison (quicksort) run generation,
    /// overriding the by-key-width default. Call before the first `push`;
    /// rows already buffered would be dropped.
    pub fn with_batch_run_gen(mut self, batched: bool) -> Self {
        debug_assert_eq!(self.generator.buffered_rows(), 0, "switch run generation before pushing");
        self.generator = if batched {
            Box::new(BatchSort::with_budget(self.catalog.clone(), self.budget.fork()))
        } else {
            Box::new(LoadSortStore::with_budget(self.catalog.clone(), self.budget.fork()))
        };
        self.generator.set_fold(self.fold.clone());
        self
    }

    /// Overrides the merge tuning (offset-value coding switch, comparison
    /// counters, read-ahead depth).
    pub fn with_tuning(mut self, tuning: MergeTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Overrides the block payload target for spilled runs.
    pub fn with_block_bytes(self, bytes: usize) -> Self {
        self.catalog.set_block_bytes(bytes);
        self
    }

    /// Enables or disables the background spill pipeline (on by default).
    pub fn with_spill_pipeline(self, enabled: bool) -> Self {
        self.catalog.set_spill_pipeline(enabled);
        self
    }

    /// Routes spill writes and merge read-ahead through `scheduler`'s
    /// shared worker pool instead of one thread per open run / merge
    /// source (`None`, the default, keeps the legacy dedicated threads).
    pub fn with_io_scheduler(mut self, scheduler: Option<IoScheduler>) -> Self {
        self.catalog.set_io_scheduler(scheduler.clone());
        self.tuning.io_scheduler = scheduler;
        self
    }

    /// Worker threads for the final merge (default 1 = serial). With two
    /// or more, the final merge is range-partitioned across them when the
    /// input is large enough (see [`with_partition_min_rows`]).
    ///
    /// [`with_partition_min_rows`]: ExternalSorter::with_partition_min_rows
    pub fn with_merge_threads(mut self, threads: usize) -> Self {
        self.merge_threads = threads.max(1);
        self
    }

    /// Minimum spilled rows before the final merge goes parallel; smaller
    /// inputs merge serially regardless of [`with_merge_threads`].
    ///
    /// [`with_merge_threads`]: ExternalSorter::with_merge_threads
    pub fn with_partition_min_rows(mut self, rows: u64) -> Self {
        self.partition_min_rows = rows;
        self
    }

    /// Worker threads for the intermediate cascade merge passes (default
    /// 1 = serial): the independent merges of each pass run concurrently,
    /// sharing the sorter's I/O scheduler.
    pub fn with_cascade_threads(mut self, threads: usize) -> Self {
        self.cascade_threads = threads.max(1);
        self
    }

    /// Adds one input row.
    pub fn push(&mut self, row: Row<K>) -> Result<()> {
        self.rows_in += 1;
        self.generator.push(row, &mut NoopObserver)
    }

    /// Rows pushed so far.
    pub fn rows_in(&self) -> u64 {
        self.rows_in
    }

    /// Ends the input and returns the fully sorted stream.
    ///
    /// The traditional algorithm spills *everything* — including the last
    /// partial memory load — so the I/O accounting matches the paper's
    /// baseline.
    pub fn finish(mut self) -> Result<SortedStream<K>> {
        if self.fold.is_some() {
            // Ordering-proof: with_tuning after with_fold must not lose it.
            self.tuning.fold = self.fold.clone();
        }
        self.generator.finish(&mut NoopObserver, ResiduePolicy::SpillToRuns)?;
        let (final_runs, cascade) = plan_merges_cascade(
            &self.catalog,
            &self.merge,
            None,
            None,
            &self.tuning,
            self.cascade_threads,
        )?;
        let spilled: u64 = final_runs.iter().map(|m| m.rows).sum();
        if self.merge_threads >= 2 && spilled >= self.partition_min_rows.max(1) {
            if let Some(merge) = merge_runs_partitioned(
                &self.catalog,
                &final_runs,
                vec![],
                self.merge_threads,
                None,
                &self.tuning,
            )?
            .partitioned()
            {
                return Ok(SortedStream {
                    _catalog: self.catalog,
                    inner: SortedInner::Partitioned(merge),
                    cascade,
                });
            }
        }
        let mut sources = Vec::with_capacity(final_runs.len());
        for meta in &final_runs {
            sources.push(open_source(&self.catalog, meta, &self.tuning)?);
        }
        let tree = merge_sources_tuned(sources, self.order, &self.tuning)?;
        let merge = BatchedMerge::new(tree, self.tuning.batch_rows);
        Ok(SortedStream { _catalog: self.catalog, inner: SortedInner::Serial(merge), cascade })
    }
}

/// The sorted output stream; holds the run catalog alive until dropped.
pub struct SortedStream<K: SortKey> {
    _catalog: Arc<RunCatalog<K>>,
    inner: SortedInner<K>,
    cascade: CascadeStats,
}

// One stream per sort: the variant size gap is irrelevant at this
// allocation rate, and boxing would cost an indirection per batch.
#[allow(clippy::large_enum_variant)]
enum SortedInner<K: SortKey> {
    Serial(BatchedMerge<K, MergeSource<K>>),
    Partitioned(PartitionedMerge<K>),
}

impl<K: SortKey> SortedStream<K> {
    /// Partitions the final merge runs across (1 when serial).
    pub fn merge_partitions(&self) -> usize {
        match &self.inner {
            SortedInner::Serial(_) => 1,
            SortedInner::Partitioned(m) => m.partitions(),
        }
    }

    /// Per-partition row counters when the merge went parallel.
    pub fn partition_counters(&self) -> Option<PartitionCounters> {
        match &self.inner {
            SortedInner::Serial(_) => None,
            SortedInner::Partitioned(m) => Some(m.counters()),
        }
    }

    /// Pass counters of the intermediate cascade merges that reduced the
    /// run count to the fan-in (all zero when no reduction was needed).
    pub fn cascade_stats(&self) -> CascadeStats {
        self.cascade
    }
}

impl<K: SortKey> Iterator for SortedStream<K> {
    type Item = Result<Row<K>>;
    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            SortedInner::Serial(tree) => tree.next(),
            SortedInner::Partitioned(merge) => merge.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    fn sort_keys(keys: Vec<u64>, budget: usize, fan_in: usize) -> Vec<u64> {
        let stats = IoStats::new();
        let mut sorter = ExternalSorter::new(
            Arc::new(MemoryBackend::new()),
            SortOrder::Ascending,
            budget,
            stats,
        )
        .with_fan_in(fan_in);
        for k in keys {
            sorter.push(Row::key_only(k)).unwrap();
        }
        sorter.finish().unwrap().map(|r| r.unwrap().key).collect()
    }

    #[test]
    fn sorts_shuffled_input_with_tiny_memory() {
        let mut keys: Vec<u64> = (0..5000).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(1));
        let sorted = sort_keys(keys, 100 * 60, 4);
        assert_eq!(sorted, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_with_duplicates() {
        let mut keys: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(2));
        let sorted = sort_keys(keys, 50 * 60, 8);
        let mut expected: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn everything_in_memory_still_works() {
        let sorted = sort_keys(vec![3, 1, 2], 1 << 20, 16);
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_yields_empty_stream() {
        let sorted = sort_keys(vec![], 1024, 16);
        assert!(sorted.is_empty());
    }

    #[test]
    fn traditional_baseline_spills_entire_input() {
        let stats = IoStats::new();
        let mut sorter = ExternalSorter::new(
            Arc::new(MemoryBackend::new()),
            SortOrder::Ascending,
            50 * 60,
            stats.clone(),
        );
        let mut keys: Vec<u64> = (0..2000).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(3));
        for k in keys {
            sorter.push(Row::key_only(k)).unwrap();
        }
        let stream = sorter.finish().unwrap();
        // The defining property of the traditional algorithm: every input
        // row hits secondary storage at least once.
        assert!(stats.snapshot().rows_written >= 2000);
        drop(stream);
    }

    #[test]
    fn fold_dedups_and_aggregates_end_to_end() {
        use crate::fold::{FoldSpec, FoldStats};
        use histok_types::{decode_count, AggregateOp, Bytes};
        let mut keys: Vec<u64> = (0..2000).map(|i| i % 10).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(11));
        let agg = AggregateOp::Count.aggregator();
        let stats = FoldStats::new();
        let mut sorter = ExternalSorter::new(
            Arc::new(MemoryBackend::new()),
            SortOrder::Ascending,
            50 * 80,
            IoStats::new(),
        )
        .with_fan_in(4)
        .with_fold(FoldSpec::new(agg.clone()).with_stats(stats.clone()));
        for k in keys {
            sorter.push(Row::new(k, agg.init(Bytes::new()))).unwrap();
        }
        let got: Vec<(u64, u64)> = sorter
            .finish()
            .unwrap()
            .map(|r| r.unwrap())
            .map(|r| (r.key, decode_count(&r.payload)))
            .collect();
        // Ten distinct keys, each with its total multiplicity: folding at
        // run generation, cascade merges and the final merge never loses a
        // row and never emits a key twice.
        assert_eq!(got, (0..10).map(|k| (k, 200)).collect::<Vec<_>>());
        let snap = stats.snapshot();
        assert_eq!(snap.rows_folded, 1990, "2000 rows fold down to 10 groups");
    }

    #[test]
    fn fold_spills_fewer_bytes_than_unfolded_sort() {
        use crate::fold::FoldSpec;
        use histok_types::AggregateOp;
        let run = |fold: bool| -> u64 {
            let stats = IoStats::new();
            let mut sorter = ExternalSorter::new(
                Arc::new(MemoryBackend::new()),
                SortOrder::Ascending,
                50 * 60,
                stats.clone(),
            );
            if fold {
                sorter = sorter.with_fold(FoldSpec::new(AggregateOp::First.aggregator()));
            }
            let mut keys: Vec<u64> = (0..3000).map(|i| i % 5).collect();
            keys.shuffle(&mut StdRng::seed_from_u64(13));
            for k in keys {
                sorter.push(Row::key_only(k)).unwrap();
            }
            let n = sorter.finish().unwrap().fold(0u64, |n, r| {
                r.unwrap();
                n + 1
            });
            assert_eq!(n, if fold { 5 } else { 3000 });
            stats.snapshot().bytes_written
        };
        let (folded, unfolded) = (run(true), run(false));
        // Each ~50-row memory load folds to 5 distinct rows, so spill
        // traffic drops by roughly the duplication factor.
        assert!(
            folded * 5 <= unfolded,
            "early folding should slash spill bytes: folded {folded}, unfolded {unfolded}"
        );
    }

    #[test]
    fn payloads_survive_the_full_pipeline() {
        let stats = IoStats::new();
        let mut sorter = ExternalSorter::new(
            Arc::new(MemoryBackend::new()),
            SortOrder::Ascending,
            20 * 80,
            stats,
        )
        .with_fan_in(3);
        for k in (0..300u64).rev() {
            sorter.push(Row::new(k, format!("p{k}").into_bytes())).unwrap();
        }
        for (i, row) in sorter.finish().unwrap().enumerate() {
            let row = row.unwrap();
            assert_eq!(row.key, i as u64);
            assert_eq!(row.payload, format!("p{i}").as_bytes());
        }
    }
}
