//! The spill-time hook connecting run generation to the cutoff filter.
//!
//! Algorithm 1 of the paper re-checks every row against the cutoff filter
//! at spill time (lines 10–13): the filter may have sharpened since the row
//! was admitted, and each surviving spilled row feeds the histogram
//! (`rowSpilled`). [`SpillObserver`] is that interface, kept in this crate
//! so the run generators do not depend on `histok-core`.

/// Watches (and may veto) rows as they are written to sorted runs.
///
/// All methods have no-op defaults so simple observers only implement what
/// they need. Methods are called from the thread driving run generation.
pub trait SpillObserver<K>: Send {
    /// A new run is starting; `estimated_rows` is the generator's guess at
    /// its length (used by histogram sizing policies to pick bucket widths).
    fn run_started(&mut self, estimated_rows: u64) {
        let _ = estimated_rows;
    }

    /// Called immediately before a row would be written. Returning `true`
    /// eliminates the row (Algorithm 1 line 11: the cutoff may have
    /// sharpened after the row was admitted to the sort workspace).
    fn should_eliminate(&mut self, key: &K) -> bool {
        let _ = key;
        false
    }

    /// Called after a row was written to the current run (Algorithm 1 line
    /// 13, `rowSpilled`): the histogram logic creates buckets here.
    fn row_spilled(&mut self, key: &K) {
        let _ = key;
    }

    /// The current run was sealed.
    fn run_finished(&mut self) {}

    /// The observer's elimination rule as a plain cutoff key, if it has
    /// one. Returning `Some(cut)` promises that, right now,
    /// `should_eliminate(k)` is side-effect-free and equivalent to
    /// `order.follows(k, cut)` — which lets batched run generation clip a
    /// whole sorted buffer with one scan over its prefix column instead of
    /// a per-row callback. Observers whose `should_eliminate` has side
    /// effects or richer logic keep the `None` default and stay on the
    /// per-row path.
    fn cutoff_key(&mut self) -> Option<K> {
        None
    }

    /// `n` rows were eliminated by one batched clip against the
    /// [`cutoff_key`](SpillObserver::cutoff_key) cutoff, in place of `n`
    /// individual `should_eliminate` calls. Observers that count
    /// eliminations add `n` here.
    fn rows_clipped(&mut self, n: u64) {
        let _ = n;
    }
}

/// An observer that does nothing — plain external sorting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl<K> SpillObserver<K> for NoopObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recording observer used by the run-generation tests.
    #[derive(Default)]
    pub(crate) struct Recorder {
        pub runs_started: usize,
        pub runs_finished: usize,
        pub spilled: Vec<u64>,
        pub eliminate_above: Option<u64>,
    }

    impl SpillObserver<u64> for Recorder {
        fn run_started(&mut self, _est: u64) {
            self.runs_started += 1;
        }
        fn should_eliminate(&mut self, key: &u64) -> bool {
            self.eliminate_above.is_some_and(|cut| *key > cut)
        }
        fn row_spilled(&mut self, key: &u64) {
            self.spilled.push(*key);
        }
        fn run_finished(&mut self) {
            self.runs_finished += 1;
        }
    }

    #[test]
    fn noop_observer_never_eliminates() {
        let mut o = NoopObserver;
        assert!(!SpillObserver::<u64>::should_eliminate(&mut o, &42));
        SpillObserver::<u64>::row_spilled(&mut o, &42);
        SpillObserver::<u64>::run_started(&mut o, 10);
        SpillObserver::<u64>::run_finished(&mut o);
    }

    #[test]
    fn recorder_applies_threshold() {
        let mut r = Recorder { eliminate_above: Some(10), ..Default::default() };
        assert!(!r.should_eliminate(&10));
        assert!(r.should_eliminate(&11));
    }
}
