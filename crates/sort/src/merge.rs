//! Merge planning for top-k external sorts.
//!
//! When more runs exist than the merge fan-in allows, intermediate merge
//! steps reduce the run count. Two facts specific to top operations
//! (paper §4.1) shape the planner:
//!
//! * any merge step may stop after `k` rows — a row ranked worse than `k`
//!   within *any* subset of runs is ranked worse than `k` globally;
//! * a merge step may stop as soon as the merged key passes the cutoff key;
//! * for a top operation the best runs to merge first are the ones with the
//!   lowest keys (the most recently produced), not the traditional smallest
//!   runs.

use histok_storage::{
    IoScheduler, IoSchedulerHandle, PrefetchingRunReader, RunCatalog, RunMeta, RunReader,
};
use histok_types::{Error, Result, Row, RowBatch, SortKey, SortOrder};

use crate::cascade::SharedCutoff;
use crate::cmp_stats::CmpStats;
use crate::fold::FoldSpec;
use crate::loser_tree::LoserTree;
use crate::source::{RowSource, DEFAULT_BATCH_ROWS};

/// Knobs an operator threads into every merge step it triggers: whether
/// the loser tree uses offset-value coding, an optional shared
/// comparison-counter sink the trees flush into, how many blocks each run
/// input prefetches in the background, which I/O pool (if any) that
/// prefetching runs on, and how many rows each merge drain batches.
#[derive(Debug, Clone)]
pub struct MergeTuning {
    /// Resolve tournament duels on offset-value codes (default on).
    pub ovc: bool,
    /// Shared comparison counters; `None` skips the accounting.
    pub stats: Option<CmpStats>,
    /// Blocks of background read-ahead per run input (default 2); `0`
    /// reads synchronously on the merge thread.
    pub readahead_blocks: usize,
    /// Shared worker pool the read-ahead jobs run on; `None` spawns the
    /// legacy dedicated thread per merge source.
    pub io_scheduler: Option<IoScheduler>,
    /// Rows per merge output batch (and the refill hint passed to batched
    /// sources). `1` degenerates to row-at-a-time — the differential
    /// baseline.
    pub batch_rows: usize,
    /// Fold equal-key rows at every merge step (duplicate removal /
    /// grouped aggregation); `None` emits duplicates verbatim.
    pub fold: Option<FoldSpec>,
}

impl Default for MergeTuning {
    fn default() -> Self {
        MergeTuning {
            ovc: true,
            stats: None,
            readahead_blocks: 2,
            io_scheduler: None,
            batch_rows: DEFAULT_BATCH_ROWS,
            fold: None,
        }
    }
}

impl MergeTuning {
    /// Tuning with offset-value coding switched off (full comparisons
    /// everywhere) — the differential-testing baseline.
    pub fn without_ovc() -> Self {
        MergeTuning { ovc: false, ..MergeTuning::default() }
    }

    /// Overrides the per-input read-ahead depth.
    pub fn with_readahead(mut self, blocks: usize) -> Self {
        self.readahead_blocks = blocks;
        self
    }

    /// Routes read-ahead through `scheduler`'s shared worker pool.
    pub fn with_io_scheduler(mut self, scheduler: Option<IoScheduler>) -> Self {
        self.io_scheduler = scheduler;
        self
    }

    /// Overrides the merge batch size (clamped to at least 1).
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows.max(1);
        self
    }

    /// Enables (or disables) equal-key folding in every merge this tuning
    /// reaches — serial, cascade and partitioned.
    pub fn with_fold(mut self, fold: Option<FoldSpec>) -> Self {
        self.fold = fold;
        self
    }
}

/// A merge input: a spilled run, an in-memory sorted sequence (the run
/// generator's residue), or a buffered head chained onto a run reader
/// (produced by offset fast-skipping, which may over-read a block
/// boundary and must put the extra rows back in front).
pub enum MergeSource<K: SortKey> {
    /// Rows streamed from a spilled run, read synchronously.
    Run(RunReader<K>),
    /// Rows streamed from a spilled run through a background read-ahead
    /// thread (see [`PrefetchingRunReader`]).
    Prefetched(PrefetchingRunReader<K>),
    /// Rows already in memory, sorted in output order.
    Memory(std::vec::IntoIter<Row<K>>),
    /// Buffered rows followed by the rest of a source.
    Chained {
        /// Rows to emit before resuming the tail (already sorted).
        head: std::vec::IntoIter<Row<K>>,
        /// The remainder of the source.
        tail: Box<MergeSource<K>>,
    },
}

impl<K: SortKey> MergeSource<K> {
    /// Wraps an (optionally mid-run) reader, prefetching `readahead_blocks`
    /// blocks on a dedicated background thread when non-zero.
    pub fn from_reader(reader: RunReader<K>, readahead_blocks: usize) -> Self {
        MergeSource::from_reader_scheduled(reader, readahead_blocks, None)
    }

    /// As [`MergeSource::from_reader`], but when `scheduler` is set the
    /// read-ahead runs as jobs on its shared pool (starting at prefetch
    /// priority, escalated once the merge actually drains this source)
    /// instead of a dedicated thread.
    pub fn from_reader_scheduled(
        reader: RunReader<K>,
        readahead_blocks: usize,
        scheduler: Option<IoSchedulerHandle>,
    ) -> Self {
        if readahead_blocks == 0 {
            return MergeSource::Run(reader);
        }
        match scheduler {
            Some(handle) => MergeSource::Prefetched(PrefetchingRunReader::spawn_scheduled(
                reader,
                readahead_blocks,
                handle,
            )),
            None => MergeSource::Prefetched(PrefetchingRunReader::spawn(reader, readahead_blocks)),
        }
    }
}

impl<K: SortKey> Iterator for MergeSource<K> {
    type Item = Result<Row<K>>;
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            MergeSource::Run(r) => r.next(),
            MergeSource::Prefetched(r) => r.next(),
            MergeSource::Memory(m) => m.next().map(Ok),
            MergeSource::Chained { head, tail } => match head.next() {
                Some(row) => Some(Ok(row)),
                None => tail.next(),
            },
        }
    }
}

impl<K: SortKey> RowSource<K> for MergeSource<K> {
    fn next_batch(&mut self, target: usize) -> Result<Option<RowBatch<K>>> {
        match self {
            // Readers hand over whole decoded blocks with the prefix
            // column already built at decode time; the hint is moot.
            MergeSource::Run(r) => r.next_batch(),
            MergeSource::Prefetched(r) => r.next_batch(),
            MergeSource::Memory(m) => {
                let take = m.len().min(target.max(1));
                if take == 0 {
                    return Ok(None);
                }
                let mut batch = RowBatch::with_capacity(take);
                for row in m.by_ref().take(take) {
                    batch.push(row);
                }
                Ok(Some(batch))
            }
            MergeSource::Chained { head, tail } => {
                let take = head.len().min(target.max(1));
                if take == 0 {
                    return tail.next_batch(target);
                }
                let mut batch = RowBatch::with_capacity(take);
                for row in head.by_ref().take(take) {
                    batch.push(row);
                }
                Ok(Some(batch))
            }
        }
    }
}

/// Row-at-a-time facade over a batched [`LoserTree`] drain: refills an
/// internal buffer through [`LoserTree::merge_into`] so the per-row cost
/// is a buffer pop, with the tree's done/error bookkeeping paid once per
/// batch. Operators wrap their final serial merges in this.
pub struct BatchedMerge<K: SortKey, S: RowSource<K>> {
    tree: LoserTree<K, S>,
    buffer: std::vec::IntoIter<Row<K>>,
    batch_rows: usize,
    done: bool,
}

impl<K: SortKey, S: RowSource<K>> BatchedMerge<K, S> {
    /// Wraps `tree`, draining `batch_rows` rows per refill.
    pub fn new(tree: LoserTree<K, S>, batch_rows: usize) -> Self {
        BatchedMerge {
            tree,
            buffer: Vec::new().into_iter(),
            batch_rows: batch_rows.max(1),
            done: false,
        }
    }

    /// Peeks at the key that would be produced next (buffered rows
    /// first, then the tree head).
    pub fn peek_key(&self) -> Option<&K> {
        self.buffer.as_slice().first().map(|r| &r.key).or_else(|| self.tree.peek_key())
    }

    /// Comparison counts of the underlying tree.
    pub fn cmp_counts(&self) -> (u64, u64) {
        self.tree.cmp_counts()
    }
}

impl<K: SortKey, S: RowSource<K>> Iterator for BatchedMerge<K, S> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(row) = self.buffer.next() {
            return Some(Ok(row));
        }
        if self.done {
            return None;
        }
        let mut out = RowBatch::with_capacity(self.batch_rows);
        match self.tree.merge_into(&mut out, self.batch_rows) {
            Ok(()) => {
                if out.is_empty() {
                    self.done = true;
                    return None;
                }
                self.buffer = out.rows.into_iter();
                self.buffer.next().map(Ok)
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Opens a registered run as a merge source, honoring the tuning's
/// read-ahead depth and I/O scheduler (jobs gated on the catalog's
/// backend).
pub fn open_source<K: SortKey>(
    catalog: &RunCatalog<K>,
    meta: &RunMeta<K>,
    tuning: &MergeTuning,
) -> Result<MergeSource<K>> {
    let scheduler = tuning.io_scheduler.as_ref().map(|s| s.for_backend(catalog.backend()));
    Ok(MergeSource::from_reader_scheduled(catalog.open(meta)?, tuning.readahead_blocks, scheduler))
}

/// Builds a merging iterator over heterogeneous sources with default
/// tuning (offset-value coding on, no counter sink).
pub fn merge_sources<K: SortKey>(
    sources: Vec<MergeSource<K>>,
    order: SortOrder,
) -> Result<LoserTree<K, MergeSource<K>>> {
    merge_sources_tuned(sources, order, &MergeTuning::default())
}

/// Builds a merging iterator over heterogeneous sources with explicit
/// [`MergeTuning`].
pub fn merge_sources_tuned<K: SortKey>(
    sources: Vec<MergeSource<K>>,
    order: SortOrder,
    tuning: &MergeTuning,
) -> Result<LoserTree<K, MergeSource<K>>> {
    let mut tree = LoserTree::with_ovc(sources, order, tuning.ovc, tuning.stats.clone())?;
    tree.set_batch_target(tuning.batch_rows);
    tree.set_fold(tuning.fold.clone());
    Ok(tree)
}

/// Which runs an intermediate merge step should pick first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Traditional policy: the smallest runs (fewest rows) — minimizes
    /// re-read volume for full sorts.
    SmallestFirst,
    /// Top-k policy (§4.1): the runs whose first keys sort best — usually
    /// the most recently generated ones.
    #[default]
    LowestKeyFirst,
}

/// Fan-in and policy for multi-level merging.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// Maximum simultaneous merge inputs.
    pub fan_in: usize,
    /// Run-selection policy for intermediate steps.
    pub policy: MergePolicy,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig { fan_in: 16, policy: MergePolicy::default() }
    }
}

impl MergeConfig {
    /// Validates the fan-in.
    pub fn validate(&self) -> Result<()> {
        if self.fan_in < 2 {
            return Err(Error::InvalidConfig("merge fan-in must be at least 2".into()));
        }
        Ok(())
    }
}

/// Merges the given runs into one new run, truncating at `limit` rows
/// and/or at the first key that sorts after `cutoff`. The source runs are
/// deleted; the new run is registered and returned. Default tuning.
///
/// A refined cutoff can truncate the whole step to zero rows: the empty
/// output is deleted instead of registered (the returned meta has
/// `rows == 0` and refers to no object). On a mid-merge error the
/// half-written output object is removed from the backend and the input
/// runs stay registered untouched.
pub fn merge_runs_to_new<K: SortKey>(
    catalog: &RunCatalog<K>,
    runs: &[RunMeta<K>],
    limit: Option<u64>,
    cutoff: Option<&K>,
) -> Result<RunMeta<K>> {
    merge_runs_to_new_tuned(catalog, runs, limit, cutoff, &MergeTuning::default())
}

/// As [`merge_runs_to_new`], with explicit [`MergeTuning`]. The cutoff
/// is fixed for the whole merge.
pub fn merge_runs_to_new_tuned<K: SortKey>(
    catalog: &RunCatalog<K>,
    runs: &[RunMeta<K>],
    limit: Option<u64>,
    cutoff: Option<&K>,
    tuning: &MergeTuning,
) -> Result<RunMeta<K>> {
    let fixed = SharedCutoff::new(catalog.order(), cutoff.cloned());
    merge_runs_to_new_shared(catalog, runs, limit, &fixed, tuning)
}

/// As [`merge_runs_to_new_tuned`], but the cutoff lives in a
/// [`SharedCutoff`] cell that concurrent merges of the same cascade may
/// tighten while this one is in flight: the drain polls the cell's
/// generation between output batches (one relaxed load) and re-reads
/// the key only when it moved, truncating the rest of the merge at the
/// tighter key.
pub fn merge_runs_to_new_shared<K: SortKey>(
    catalog: &RunCatalog<K>,
    runs: &[RunMeta<K>],
    limit: Option<u64>,
    shared: &SharedCutoff<K>,
    tuning: &MergeTuning,
) -> Result<RunMeta<K>> {
    let order = catalog.order();
    let mut sources = Vec::with_capacity(runs.len());
    for meta in runs {
        sources.push(open_source(catalog, meta, tuning)?);
    }
    let mut tree = merge_sources_tuned(sources, order, tuning)?;
    let mut writer = catalog.start_run()?;
    let out_name = writer.name().to_string();
    let merged: Result<RunMeta<K>> = (|| {
        // Batched drain: pull a batch, clip it at the cutoff by scanning
        // the prefix column (one integer compare per row; key bytes are
        // touched only for wide keys whose prefix ties the cutoff's), and
        // append the survivors in one call.
        let out_mask = match order {
            SortOrder::Ascending => 0,
            SortOrder::Descending => !0u64,
        };
        let mut seen_gen = shared.generation();
        let mut cutoff = shared.get();
        let mut cut_prefix = cutoff.as_ref().map(|c| c.norm_prefix() ^ out_mask);
        let mut produced = 0u64;
        let mut out = RowBatch::with_capacity(tuning.batch_rows);
        loop {
            let gen = shared.generation();
            if gen != seen_gen {
                // Another merge of the cascade tightened the cutoff.
                seen_gen = gen;
                cutoff = shared.get();
                cut_prefix = cutoff.as_ref().map(|c| c.norm_prefix() ^ out_mask);
            }
            let want = match limit {
                Some(l) => {
                    let remaining = l.saturating_sub(produced);
                    if remaining == 0 {
                        break;
                    }
                    usize::try_from(remaining).unwrap_or(usize::MAX).min(tuning.batch_rows)
                }
                None => tuning.batch_rows,
            };
            tree.merge_into(&mut out, want)?;
            if out.is_empty() {
                break;
            }
            let mut clipped = false;
            if let (Some(cut), Some(cp)) = (cutoff.as_ref(), cut_prefix) {
                let first_past = if K::norm_prefix_is_exact() {
                    // Exact prefixes: prefix order IS key order.
                    out.prefixes.iter().position(|&p| (p ^ out_mask) > cp)
                } else {
                    // A row can only follow the cutoff if its prefix is at
                    // or past the cutoff's; confirm on the key from there.
                    out.prefixes.iter().position(|&p| (p ^ out_mask) >= cp).and_then(|i| {
                        (i..out.len()).find(|&j| order.follows(&out.rows[j].key, cut))
                    })
                };
                if let Some(i) = first_past {
                    out.truncate(i);
                    clipped = true;
                }
            }
            writer.append_batch(&out)?;
            produced += out.len() as u64;
            if clipped {
                break;
            }
        }
        writer.finish()
    })();
    drop(tree); // release readers before deleting their objects
    let meta = match merged {
        Ok(meta) => meta,
        Err(e) => {
            // The output object is half-written (or was abandoned by the
            // writer's drop); remove it so a failed merge leaves the
            // backend holding exactly the registered runs. Best-effort: the
            // merge error is what the caller must see.
            let _ = catalog.backend().delete(&out_name);
            return Err(e);
        }
    };
    for old in runs {
        catalog.remove(&old.name)?;
    }
    if meta.is_empty() {
        // The cutoff eliminated every row: registering a zero-row run would
        // cost a storage open and a prefetch source in every later merge
        // pass. Delete the empty object and register nothing.
        catalog.backend().delete(&meta.name)?;
    } else {
        catalog.register(meta.clone())?;
    }
    Ok(meta)
}

/// Sorts run metas so the best merge candidates (per `policy`) come first.
pub(crate) fn rank_candidates<K: SortKey>(
    runs: &mut [RunMeta<K>],
    policy: MergePolicy,
    order: SortOrder,
) {
    match policy {
        MergePolicy::SmallestFirst => runs.sort_by_key(|m| m.rows),
        MergePolicy::LowestKeyFirst => runs.sort_by(|a, b| match (&a.first_key, &b.first_key) {
            (Some(ka), Some(kb)) => order.cmp_keys(ka, kb).then(a.rows.cmp(&b.rows)),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        }),
    }
}

/// Runs intermediate merge steps until at most `config.fan_in` runs remain;
/// returns the final run set (in no particular order).
///
/// `limit`/`cutoff` truncate intermediate outputs — always safe for a top-k
/// (see module docs), never used for a full sort. Per §4.1, "each merge
/// step can also reduce the cutoff key": whenever an intermediate merge
/// produces a full `limit`-row run, its last key proves `limit` rows at or
/// before it, so later merge steps truncate at that (tighter) key.
pub fn plan_merges<K: SortKey>(
    catalog: &RunCatalog<K>,
    config: &MergeConfig,
    limit: Option<u64>,
    cutoff: Option<&K>,
) -> Result<Vec<RunMeta<K>>> {
    plan_merges_tuned(catalog, config, limit, cutoff, &MergeTuning::default())
}

/// As [`plan_merges`], with explicit [`MergeTuning`] applied to every
/// intermediate merge step. Delegates to the cascade planner
/// ([`plan_merges_cascade`](crate::cascade::plan_merges_cascade)) running
/// inline on the calling thread, discarding the pass counters.
pub fn plan_merges_tuned<K: SortKey>(
    catalog: &RunCatalog<K>,
    config: &MergeConfig,
    limit: Option<u64>,
    cutoff: Option<&K>,
    tuning: &MergeTuning,
) -> Result<Vec<RunMeta<K>>> {
    crate::cascade::plan_merges_cascade(catalog, config, limit, cutoff, tuning, 1)
        .map(|(runs, _)| runs)
}

/// The pre-cascade greedy planner: one (F − 1)-sized step at a time on
/// the calling thread, re-ranking the whole run list every iteration and
/// tightening the cutoff only between steps. Kept as the serial baseline
/// the `bench_smoke` cascade gate compares against; new code should call
/// [`plan_merges_tuned`] or the cascade planner directly.
pub fn plan_merges_legacy<K: SortKey>(
    catalog: &RunCatalog<K>,
    config: &MergeConfig,
    limit: Option<u64>,
    cutoff: Option<&K>,
    tuning: &MergeTuning,
) -> Result<Vec<RunMeta<K>>> {
    config.validate()?;
    let order = catalog.order();
    let mut cutoff: Option<K> = cutoff.cloned();
    loop {
        let mut runs = catalog.runs();
        if runs.len() <= config.fan_in {
            return Ok(runs);
        }
        rank_candidates(&mut runs, config.policy, order);
        // Merge just enough runs that the final step can take everything:
        // classic (F - 1)-sized steps, but never fewer than 2 inputs.
        let excess = runs.len() - config.fan_in;
        let step = (excess + 1).clamp(2, config.fan_in).min(runs.len());
        let merged =
            merge_runs_to_new_tuned(catalog, &runs[..step], limit, cutoff.as_ref(), tuning)?;
        if let (Some(lim), Some(last)) = (limit, &merged.last_key) {
            if merged.rows >= lim {
                let tighter = cutoff.as_ref().is_none_or(|c| order.precedes(last, c));
                if tighter {
                    cutoff = Some(last.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::{FaultBackend, FaultPlan, FileBackend, IoStats, MemoryBackend};
    use histok_types::Row;
    use std::sync::Arc;

    fn catalog() -> Arc<RunCatalog<u64>> {
        Arc::new(RunCatalog::new(
            Arc::new(MemoryBackend::new()),
            "m",
            SortOrder::Ascending,
            IoStats::new(),
        ))
    }

    fn write_run(cat: &RunCatalog<u64>, keys: &[u64]) {
        let mut w = cat.start_run().unwrap();
        for &k in keys {
            w.append(&Row::key_only(k)).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
    }

    fn read_run(cat: &RunCatalog<u64>, meta: &RunMeta<u64>) -> Vec<u64> {
        cat.open(meta).unwrap().map(|r| r.unwrap().key).collect()
    }

    #[test]
    fn merge_sources_combines_runs_and_memory() {
        let cat = catalog();
        write_run(&cat, &[2, 4, 6]);
        let run = cat.runs()[0].clone();
        let mem: Vec<Row<u64>> = vec![Row::key_only(1), Row::key_only(5)];
        let sources =
            vec![MergeSource::Run(cat.open(&run).unwrap()), MergeSource::Memory(mem.into_iter())];
        let keys: Vec<u64> =
            merge_sources(sources, SortOrder::Ascending).unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(keys, vec![1, 2, 4, 5, 6]);
    }

    #[test]
    fn merge_runs_to_new_replaces_inputs() {
        let cat = catalog();
        write_run(&cat, &[1, 4, 7]);
        write_run(&cat, &[2, 5, 8]);
        write_run(&cat, &[3, 6, 9]);
        let runs = cat.runs();
        let merged = merge_runs_to_new(&cat, &runs[..2], None, None).unwrap();
        assert_eq!(read_run(&cat, &merged), vec![1, 2, 4, 5, 7, 8]);
        assert_eq!(cat.len(), 2); // merged + untouched third run
    }

    #[test]
    fn limit_truncates_merge_output() {
        let cat = catalog();
        write_run(&cat, &[1, 3, 5, 7, 9]);
        write_run(&cat, &[2, 4, 6, 8, 10]);
        let runs = cat.runs();
        let merged = merge_runs_to_new(&cat, &runs, Some(4), None).unwrap();
        assert_eq!(read_run(&cat, &merged), vec![1, 2, 3, 4]);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn cutoff_truncates_merge_output() {
        let cat = catalog();
        write_run(&cat, &[1, 3, 5, 7, 9]);
        write_run(&cat, &[2, 4, 6, 8, 10]);
        let runs = cat.runs();
        // Keys strictly above 6 must not be written (ties survive).
        let merged = merge_runs_to_new(&cat, &runs, None, Some(&6)).unwrap();
        assert_eq!(read_run(&cat, &merged), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn plan_merges_reduces_to_fan_in() {
        let cat = catalog();
        for i in 0..10u64 {
            write_run(&cat, &[i, i + 10, i + 20]);
        }
        let cfg = MergeConfig { fan_in: 4, policy: MergePolicy::SmallestFirst };
        let final_runs = plan_merges(&cat, &cfg, None, None).unwrap();
        assert!(final_runs.len() <= 4);
        // Contents preserved exactly.
        let mut all: Vec<u64> = final_runs.iter().flat_map(|m| read_run(&cat, m)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn plan_merges_noop_when_under_fan_in() {
        let cat = catalog();
        write_run(&cat, &[1]);
        write_run(&cat, &[2]);
        let cfg = MergeConfig::default();
        let runs = plan_merges(&cat, &cfg, None, None).unwrap();
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn lowest_key_policy_merges_best_runs_first() {
        let cat = catalog();
        write_run(&cat, &[100, 101, 102]); // early, high keys
        write_run(&cat, &[50, 51, 52]);
        write_run(&cat, &[1, 2, 3]); // recent, low keys
        write_run(&cat, &[60, 61, 62]);
        let mut runs = cat.runs();
        rank_candidates(&mut runs, MergePolicy::LowestKeyFirst, SortOrder::Ascending);
        assert_eq!(runs[0].first_key, Some(1));
        assert_eq!(runs[1].first_key, Some(50));
        assert_eq!(runs[3].first_key, Some(100));
    }

    #[test]
    fn invalid_fan_in_rejected() {
        let cfg = MergeConfig { fan_in: 1, policy: MergePolicy::SmallestFirst };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn plan_merges_refines_the_cutoff_between_steps() {
        // §4.1: once an intermediate merge produces `limit` rows, its last
        // key truncates every later merge. Under SmallestFirst, the two
        // low-key runs merge first (they are smallest) and establish a
        // cutoff ≈ key 59; the high-key merges that follow contain no row
        // at or before it and must write NOTHING.
        let cat = catalog();
        write_run(&cat, &(0..100).step_by(2).collect::<Vec<_>>()); // 50 even low keys
        write_run(&cat, &(1..100).step_by(2).collect::<Vec<_>>()); // 50 odd low keys
        for base in 0..4u64 {
            let keys: Vec<u64> = (0..60).map(|j| 10_000 + j * 4 + base).collect();
            write_run(&cat, &keys);
        }
        let before = cat.stats().snapshot();
        let cfg = MergeConfig { fan_in: 2, policy: MergePolicy::SmallestFirst };
        let k = 60;
        let final_runs = plan_merges(&cat, &cfg, Some(k), None).unwrap();
        assert!(final_runs.len() <= 2);
        // Correctness: the global top 60 is exactly 0..59.
        let mut sources = Vec::new();
        for m in &final_runs {
            sources.push(MergeSource::Run(cat.open(m).unwrap()));
        }
        let top: Vec<u64> = merge_sources(sources, SortOrder::Ascending)
            .unwrap()
            .take(k as usize)
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(top, (0..k).collect::<Vec<_>>());
        // Savings: only the low-key merge wrote rows; without refinement
        // each high-key pair merge would have written `limit` rows too.
        let rewritten = cat.stats().snapshot().since(&before).rows_written;
        assert!(
            rewritten <= 70,
            "high-key merges were not truncated by the refined cutoff: {rewritten} rows"
        );
    }

    #[test]
    fn cascading_refinement_never_leaves_empty_runs_or_objects() {
        // Same shape as the refinement test above, but driven further: the
        // low-key merge establishes a cutoff that truncates EVERY later
        // high-key merge to zero rows. Those empty outputs must not be
        // registered (each would cost a storage open and a prefetch source
        // per later pass) and must not leak objects in the backend.
        let be = MemoryBackend::new();
        let cat = RunCatalog::<u64>::new(
            Arc::new(be.clone()),
            "cascade",
            SortOrder::Ascending,
            IoStats::new(),
        );
        write_run(&cat, &(0..100).step_by(2).collect::<Vec<_>>());
        write_run(&cat, &(1..100).step_by(2).collect::<Vec<_>>());
        for base in 0..6u64 {
            let keys: Vec<u64> = (0..60).map(|j| 10_000 + j * 6 + base).collect();
            write_run(&cat, &keys);
        }
        let cfg = MergeConfig { fan_in: 2, policy: MergePolicy::SmallestFirst };
        let final_runs = plan_merges(&cat, &cfg, Some(60), None).unwrap();
        assert!(final_runs.len() <= 2);
        assert!(
            final_runs.iter().all(|m| m.rows > 0),
            "zero-row runs survived into the final run set: {final_runs:?}"
        );
        // Backend and catalog agree: exactly one object per registered run.
        assert_eq!(be.object_count(), cat.len());
        // And the answer is still exact.
        let mut sources = Vec::new();
        for m in &final_runs {
            sources.push(MergeSource::Run(cat.open(m).unwrap()));
        }
        let top: Vec<u64> = merge_sources(sources, SortOrder::Ascending)
            .unwrap()
            .take(60)
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(top, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn failed_merge_cleans_up_its_output_and_keeps_inputs() {
        // Dry run on an unfaulted backend to learn how many bytes the two
        // input runs cost; the fault budget then trips partway through the
        // merge output.
        let keys_a: Vec<u64> = (0..200).map(|i| i * 2).collect();
        let keys_b: Vec<u64> = (0..200).map(|i| i * 2 + 1).collect();
        let input_bytes = {
            let probe = RunCatalog::<u64>::new(
                Arc::new(MemoryBackend::new()),
                "probe",
                SortOrder::Ascending,
                IoStats::new(),
            );
            write_run(&probe, &keys_a);
            write_run(&probe, &keys_b);
            probe.stats().snapshot().bytes_written
        };
        // A file-backed store makes the leak observable: `create` puts the
        // file on disk immediately, so a dropped unfinished writer leaves
        // it behind unless the error path deletes it.
        let files = FileBackend::temp().unwrap();
        let dir = files.dir().to_path_buf();
        let be = FaultBackend::new(
            files,
            FaultPlan { fail_write_after_bytes: Some(input_bytes + 64), ..FaultPlan::none() },
        );
        let cat = RunCatalog::<u64>::new(
            Arc::new(be.clone()),
            "probe", // same prefix/order ⇒ identical byte layout as the dry run
            SortOrder::Ascending,
            IoStats::new(),
        );
        write_run(&cat, &keys_a);
        write_run(&cat, &keys_b);
        let runs = cat.runs();
        let err = merge_runs_to_new(&cat, &runs, None, None);
        assert!(err.is_err(), "the fault budget must fail the merge");
        assert!(be.fault_fired());
        // Inputs stay registered and readable; the half-written output is
        // gone from the backend.
        assert_eq!(cat.len(), 2);
        for meta in &cat.runs() {
            assert_eq!(cat.open(meta).unwrap().count(), 200);
        }
        let on_disk = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(on_disk, 2, "failed merge leaked its half-written output object");
    }

    #[test]
    fn multi_level_merge_preserves_order_with_limit() {
        // Truncating intermediate merges at k must still produce the exact
        // global top-k at the end.
        let cat = catalog();
        for i in 0..12u64 {
            let keys: Vec<u64> = (0..50).map(|j| j * 12 + i).collect();
            write_run(&cat, &keys);
        }
        let k = 25;
        let cfg = MergeConfig { fan_in: 3, policy: MergePolicy::LowestKeyFirst };
        let final_runs = plan_merges(&cat, &cfg, Some(k), None).unwrap();
        assert!(final_runs.len() <= 3);
        let mut sources = Vec::new();
        for m in &final_runs {
            sources.push(MergeSource::Run(cat.open(m).unwrap()));
        }
        let top: Vec<u64> = merge_sources(sources, SortOrder::Ascending)
            .unwrap()
            .take(k as usize)
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(top, (0..k).collect::<Vec<_>>());
    }
}
