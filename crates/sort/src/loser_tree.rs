//! Tournament (loser-tree) k-way merge with offset-value coding.
//!
//! The standard structure for merging many sorted runs: each `next()` costs
//! one leaf-to-root path of ⌈log₂ n⌉ comparisons, independent of how many
//! sources are exhausted. Sources yield `Result<Row>`; errors propagate and
//! fuse the tree.
//!
//! With offset-value coding enabled (the default), each source's head row
//! carries its normalized key bytes plus an [`Ovc`] relative to the key it
//! last lost a duel to. The invariant that makes single-integer duels
//! sound: along the winner's leaf-to-root path, every parked loser's code
//! is relative to the departing winner — exactly the base the refilled
//! head's fresh code is taken against. When two codes differ, the smaller
//! sorts earlier and the loser's existing code is already correct relative
//! to the new winner (the classic OVC theorem); only equal codes fall back
//! to comparing the normalized suffixes beyond the shared offset. Duels
//! decided on codes alone count into `ovc_cmps`; fallbacks and refill code
//! derivations count into `full_cmps`.

use histok_types::{norm_cmp, ovc_resolve, Ovc, Result, Row, SortKey, SortOrder};

use crate::cmp_stats::CmpStats;

/// A k-way merging iterator over sorted sources.
///
/// Ties between sources break toward the lower source index, making the
/// merge stable with respect to source order.
///
/// ```
/// use histok_sort::LoserTree;
/// use histok_types::{Result, Row, SortOrder};
///
/// let runs: Vec<Vec<u64>> = vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]];
/// let sources: Vec<_> = runs
///     .into_iter()
///     .map(|r| r.into_iter().map(|k| Ok(Row::key_only(k))).collect::<Vec<Result<_>>>())
///     .map(Vec::into_iter)
///     .collect();
/// let merged: Vec<u64> = LoserTree::new(sources, SortOrder::Ascending)?
///     .map(|r| r.map(|row| row.key))
///     .collect::<Result<_>>()?;
/// assert_eq!(merged, (1..=9).collect::<Vec<_>>());
/// # Ok::<(), histok_types::Error>(())
/// ```
pub struct LoserTree<K: SortKey, S: Iterator<Item = Result<Row<K>>>> {
    sources: Vec<S>,
    /// `tree[t]` = loser (source index) parked at internal node `t`;
    /// nodes `1..n`, node 0 unused.
    tree: Vec<usize>,
    /// Head row of each source (`None` = exhausted).
    heads: Vec<Option<Row<K>>>,
    /// Normalized bytes of each source's head (stale when head is `None`).
    norms: Vec<Vec<u8>>,
    /// Each head's code relative to the key it last lost to.
    ovcs: Vec<Ovc>,
    /// Scratch for encoding a refilled head before swapping into `norms`.
    scratch: Vec<u8>,
    winner: usize,
    order: SortOrder,
    ovc_enabled: bool,
    /// Duels decided by comparing two codes (one integer compare).
    ovc_cmps: u64,
    /// Full key comparisons: duel fallbacks plus refill code derivations.
    full_cmps: u64,
    /// Shared sink the local counters flush into on drop.
    stats: Option<CmpStats>,
    /// First error from any source; returned once, then the tree is done.
    pending_error: Option<histok_types::Error>,
    done: bool,
}

impl<K: SortKey, S: Iterator<Item = Result<Row<K>>>> LoserTree<K, S> {
    /// Builds a merge over `sources`, each already sorted in `order`, with
    /// offset-value coding enabled and no stats sink.
    pub fn new(sources: Vec<S>, order: SortOrder) -> Result<Self> {
        Self::with_ovc(sources, order, true, None)
    }

    /// Builds a merge with explicit control over offset-value coding and
    /// an optional shared comparison-counter sink (flushed on drop).
    pub fn with_ovc(
        mut sources: Vec<S>,
        order: SortOrder,
        ovc_enabled: bool,
        stats: Option<CmpStats>,
    ) -> Result<Self> {
        let n = sources.len();
        let mut heads = Vec::with_capacity(n);
        let mut pending_error = None;
        for s in sources.iter_mut() {
            heads.push(match s.next() {
                Some(Ok(row)) => Some(row),
                Some(Err(e)) => {
                    if pending_error.is_none() {
                        pending_error = Some(e);
                    }
                    None
                }
                None => None,
            });
        }
        let mut norms = vec![Vec::new(); n];
        if ovc_enabled {
            for (i, head) in heads.iter().enumerate() {
                if let Some(row) = head {
                    row.key.norm_encode(&mut norms[i]);
                }
            }
        }
        let mut lt = LoserTree {
            sources,
            tree: vec![usize::MAX; n.max(1)],
            heads,
            norms,
            ovcs: vec![Ovc::EQUAL; n],
            scratch: Vec::new(),
            winner: 0,
            order,
            ovc_enabled,
            ovc_cmps: 0,
            full_cmps: 0,
            stats,
            pending_error,
            done: n == 0,
        };
        if n > 0 {
            lt.rebuild();
        }
        Ok(lt)
    }

    /// Comparison counts so far as `(ovc_cmps, full_cmps)`.
    pub fn cmp_counts(&self) -> (u64, u64) {
        (self.ovc_cmps, self.full_cmps)
    }

    /// Decides a duel between sources `a` and `b`, returning the winner
    /// (the source whose head is emitted first) and reseating the loser's
    /// code relative to the winner when a full comparison was needed.
    ///
    /// `fresh` requests an unconditional full resolution — used while
    /// (re)building the tournament, when the two heads' codes are not yet
    /// relative to a common base.
    fn duel(&mut self, a: usize, b: usize, fresh: bool) -> usize {
        match (&self.heads[a], &self.heads[b]) {
            (Some(ra), Some(rb)) => {
                if !self.ovc_enabled {
                    self.full_cmps += 1;
                    return match self.order.cmp_keys(&ra.key, &rb.key) {
                        std::cmp::Ordering::Less => a,
                        std::cmp::Ordering::Greater => b,
                        std::cmp::Ordering::Equal => a.min(b),
                    };
                }
                if !fresh {
                    let (ca, cb) = (self.ovcs[a], self.ovcs[b]);
                    if ca != cb {
                        // Codes against a common base differ: the smaller
                        // sorts earlier, and the loser's code is already
                        // correct relative to the new winner.
                        self.ovc_cmps += 1;
                        return if ca < cb { a } else { b };
                    }
                    if ca == Ovc::EQUAL {
                        // Both heads equal the common base, hence each
                        // other: stable tie-break, codes stay EQUAL.
                        self.ovc_cmps += 1;
                        return a.min(b);
                    }
                    // Tied non-trivial codes: the heads agree through the
                    // coded offset; resolve on the suffixes.
                    let from = self.ovcs[a].offset().map_or(0, |o| o + 1);
                    return self.duel_resolve(a, b, from);
                }
                self.duel_resolve(a, b, 0)
            }
            (Some(_), None) => a,
            (None, Some(_)) => b,
            (None, None) => a.min(b),
        }
    }

    /// Full comparison of `a`'s and `b`'s normalized heads from byte
    /// `from`, reseating the loser's code relative to the winner.
    fn duel_resolve(&mut self, a: usize, b: usize, from: usize) -> usize {
        self.full_cmps += 1;
        let res = ovc_resolve(&self.norms[a], &self.norms[b], from, self.order);
        match res.ordering {
            std::cmp::Ordering::Less => {
                self.ovcs[b] = res.loser_ovc;
                a
            }
            std::cmp::Ordering::Greater => {
                self.ovcs[a] = res.loser_ovc;
                b
            }
            std::cmp::Ordering::Equal => {
                // Equal keys: the loser is byte-identical to the winner,
                // so its code against the winner is EQUAL. The winner
                // keeps its code (still relative to its previous base) —
                // overwriting it would make it claim equality with that
                // base and win duels it should lose.
                let (w, l) = if a < b { (a, b) } else { (b, a) };
                self.ovcs[l] = Ovc::EQUAL;
                w
            }
        }
    }

    /// Full bottom-up tournament; O(n). Every duel resolves fully so each
    /// parked loser's code ends up relative to the winner it lost to.
    fn rebuild(&mut self) {
        let n = self.sources.len();
        if n == 1 {
            self.winner = 0;
            return;
        }
        // winner_at[t] for internal nodes 1..n; leaves are n..2n.
        let mut winner_at = vec![usize::MAX; 2 * n];
        for (i, slot) in winner_at.iter_mut().enumerate().take(2 * n).skip(n) {
            *slot = i - n;
        }
        for t in (1..n).rev() {
            let a = winner_at[2 * t];
            let b = winner_at[2 * t + 1];
            let w = self.duel(a, b, true);
            winner_at[t] = w;
            self.tree[t] = if w == a { b } else { a };
        }
        self.winner = winner_at[1];
    }

    /// Replays the tournament along the winner's path after its head
    /// changed; O(log n). Parked losers along this path last lost to the
    /// departed winner — the same base the climber's code was derived
    /// against — so code-only duels are sound.
    fn adjust(&mut self) {
        let n = self.sources.len();
        if n == 1 {
            return;
        }
        let mut s = self.winner;
        let mut t = (s + n) / 2;
        while t > 0 {
            let w = self.duel(self.tree[t], s, false);
            if w == self.tree[t] {
                std::mem::swap(&mut s, &mut self.tree[t]);
            }
            t /= 2;
        }
        self.winner = s;
    }

    /// Refills the winner's head from its source, deriving the new head's
    /// code against the just-departed row (its run predecessor).
    fn refill_winner(&mut self) {
        let i = self.winner;
        self.heads[i] = match self.sources[i].next() {
            Some(Ok(row)) => Some(row),
            Some(Err(e)) => {
                if self.pending_error.is_none() {
                    self.pending_error = Some(e);
                }
                None
            }
            None => None,
        };
        if self.ovc_enabled {
            if let Some(row) = &self.heads[i] {
                self.scratch.clear();
                row.key.norm_encode(&mut self.scratch);
                debug_assert!(
                    norm_cmp(&self.norms[i], &self.scratch, self.order)
                        != std::cmp::Ordering::Greater,
                    "source not sorted in the requested order"
                );
                // One full pass over the shared prefix per refill — the
                // price that buys code-only duels on the whole path up.
                self.full_cmps += 1;
                self.ovcs[i] = ovc_resolve(&self.norms[i], &self.scratch, 0, self.order).loser_ovc;
                std::mem::swap(&mut self.norms[i], &mut self.scratch);
            }
        }
        self.adjust();
    }

    /// Peeks at the key that would be produced next.
    pub fn peek_key(&self) -> Option<&K> {
        if self.done {
            return None;
        }
        self.heads[self.winner].as_ref().map(|r| &r.key)
    }
}

impl<K: SortKey, S: Iterator<Item = Result<Row<K>>>> Drop for LoserTree<K, S> {
    fn drop(&mut self) {
        if let Some(stats) = &self.stats {
            stats.record(self.ovc_cmps, self.full_cmps);
        }
    }
}

impl<K: SortKey, S: Iterator<Item = Result<Row<K>>>> Iterator for LoserTree<K, S> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        // Deferred-error protocol: an error parked by construction or by a
        // previous call's refill surfaces here, before any further rows,
        // and fuses the tree.
        if let Some(e) = self.pending_error.take() {
            self.done = true;
            return Some(Err(e));
        }
        match self.heads[self.winner].take() {
            Some(row) => {
                // A source error hit during this refill is parked in
                // `pending_error`, not returned: the row in hand is valid
                // and must not be lost. The next call emits the error (or
                // drops it if the caller stops early — standard iterator
                // semantics).
                self.refill_winner();
                Some(Ok(row))
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_types::{BytesKey, Error};

    type VecSource = std::vec::IntoIter<Result<Row<u64>>>;

    fn src(keys: &[u64]) -> VecSource {
        keys.iter().map(|&k| Ok(Row::key_only(k))).collect::<Vec<_>>().into_iter()
    }

    fn merge_keys(sources: Vec<VecSource>, order: SortOrder) -> Vec<u64> {
        LoserTree::new(sources, order).unwrap().map(|r| r.unwrap().key).collect()
    }

    #[test]
    fn merges_two_sources() {
        let got = merge_keys(vec![src(&[1, 3, 5]), src(&[2, 4, 6])], SortOrder::Ascending);
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn single_source_passthrough() {
        let got = merge_keys(vec![src(&[1, 2, 3])], SortOrder::Ascending);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_everything() {
        let got = merge_keys(vec![], SortOrder::Ascending);
        assert!(got.is_empty());
        let got = merge_keys(vec![src(&[]), src(&[])], SortOrder::Ascending);
        assert!(got.is_empty());
    }

    #[test]
    fn uneven_sources_and_empties() {
        let got = merge_keys(
            vec![src(&[]), src(&[10]), src(&[1, 2, 3, 4, 5, 6, 7]), src(&[]), src(&[4, 8])],
            SortOrder::Ascending,
        );
        assert_eq!(got, vec![1, 2, 3, 4, 4, 5, 6, 7, 8, 10]);
    }

    #[test]
    fn descending_merge() {
        let got = merge_keys(vec![src(&[9, 5, 1]), src(&[8, 4])], SortOrder::Descending);
        assert_eq!(got, vec![9, 8, 5, 4, 1]);
    }

    #[test]
    fn many_sources_power_of_two_and_odd() {
        for n in [2usize, 3, 4, 5, 7, 8, 15, 16, 17, 33] {
            let sources: Vec<VecSource> = (0..n)
                .map(|i| {
                    let keys: Vec<u64> = (0..20).map(|j| (j * n + i) as u64).collect();
                    src(&keys)
                })
                .collect();
            let got = merge_keys(sources, SortOrder::Ascending);
            let expected: Vec<u64> = (0..(20 * n) as u64).collect();
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn ovc_disabled_merges_identically() {
        for n in [2usize, 3, 7, 16] {
            for order in [SortOrder::Ascending, SortOrder::Descending] {
                let make = || -> Vec<VecSource> {
                    (0..n)
                        .map(|i| {
                            let mut keys: Vec<u64> =
                                (0..30).map(|j| ((j * n + i) as u64 * 7) % 50).collect();
                            keys.sort_unstable();
                            if order == SortOrder::Descending {
                                keys.reverse();
                            }
                            src(&keys)
                        })
                        .collect()
                };
                let on: Vec<u64> = LoserTree::with_ovc(make(), order, true, None)
                    .unwrap()
                    .map(|r| r.unwrap().key)
                    .collect();
                let off: Vec<u64> = LoserTree::with_ovc(make(), order, false, None)
                    .unwrap()
                    .map(|r| r.unwrap().key)
                    .collect();
                assert_eq!(on, off, "n = {n}, order = {order:?}");
            }
        }
    }

    #[test]
    fn ovc_duels_dominate_on_disjoint_ranges() {
        // Interleaved unique keys: every adjust-path duel should resolve
        // on codes after the first refill derivation.
        let n = 8usize;
        let sources: Vec<VecSource> = (0..n)
            .map(|i| {
                let keys: Vec<u64> = (0..100).map(|j| (j * n + i) as u64).collect();
                src(&keys)
            })
            .collect();
        let stats = CmpStats::new();
        let mut lt =
            LoserTree::with_ovc(sources, SortOrder::Ascending, true, Some(stats.clone())).unwrap();
        let mut count = 0u64;
        for r in &mut lt {
            r.unwrap();
            count += 1;
        }
        let (ovc, full) = lt.cmp_counts();
        assert_eq!(count, 800);
        // log2(8) = 3 duels per output; roughly 1 full per output (the
        // refill derivation, plus rare code-tie resolves), so code-only
        // duels must be the clear majority.
        assert!(ovc > full, "ovc = {ovc}, full = {full}");
        assert!(full <= count + count / 10 + n as u64, "full = {full}");
        drop(lt);
        let snap = stats.snapshot();
        assert_eq!((snap.ovc_cmps, snap.full_cmps), (ovc, full));
    }

    #[test]
    fn duplicate_heavy_all_equal_keys_stay_stable() {
        // Many sources, every key identical: output must drain sources in
        // index order (ties break toward the lower source), with each
        // source's payloads in their original sequence.
        for ovc in [true, false] {
            let n = 6usize;
            let rows_per = 5usize;
            let sources: Vec<_> = (0..n)
                .map(|i| {
                    (0..rows_per)
                        .map(|j| Ok(Row::new(42u64, format!("s{i}r{j}").into_bytes())))
                        .collect::<Vec<Result<Row<u64>>>>()
                        .into_iter()
                })
                .collect();
            let got: Vec<String> = LoserTree::with_ovc(sources, SortOrder::Ascending, ovc, None)
                .unwrap()
                .map(|r| String::from_utf8(r.unwrap().payload.to_vec()).unwrap())
                .collect();
            let expected: Vec<String> =
                (0..n).flat_map(|i| (0..rows_per).map(move |j| format!("s{i}r{j}"))).collect();
            assert_eq!(got, expected, "ovc = {ovc}");
        }
    }

    #[test]
    fn duplicate_runs_interleave_stably() {
        // Duplicates spanning sources: each tie group must list source 0's
        // rows before source 1's.
        for ovc in [true, false] {
            let a: Vec<Result<Row<u64>>> = vec![
                Ok(Row::new(1u64, &b"a0"[..])),
                Ok(Row::new(1u64, &b"a1"[..])),
                Ok(Row::new(2u64, &b"a2"[..])),
            ];
            let b: Vec<Result<Row<u64>>> = vec![
                Ok(Row::new(1u64, &b"b0"[..])),
                Ok(Row::new(2u64, &b"b1"[..])),
                Ok(Row::new(2u64, &b"b2"[..])),
            ];
            let got: Vec<(u64, Vec<u8>)> = LoserTree::with_ovc(
                vec![a.into_iter(), b.into_iter()],
                SortOrder::Ascending,
                ovc,
                None,
            )
            .unwrap()
            .map(|r| r.map(|row| (row.key, row.payload.to_vec())).unwrap())
            .collect();
            let expected: Vec<(u64, Vec<u8>)> = vec![
                (1, b"a0".to_vec()),
                (1, b"a1".to_vec()),
                (1, b"b0".to_vec()),
                (2, b"a2".to_vec()),
                (2, b"b1".to_vec()),
                (2, b"b2".to_vec()),
            ];
            assert_eq!(got, expected, "ovc = {ovc}");
        }
    }

    #[test]
    fn byte_keys_with_shared_prefixes_merge_correctly() {
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let make = |words: &[&str]| -> std::vec::IntoIter<Result<Row<BytesKey>>> {
                let mut keys: Vec<BytesKey> = words.iter().map(|w| BytesKey::from(*w)).collect();
                keys.sort();
                if order == SortOrder::Descending {
                    keys.reverse();
                }
                keys.into_iter().map(|k| Ok(Row::key_only(k))).collect::<Vec<_>>().into_iter()
            };
            let sources = vec![
                make(&["aaa", "aab", "aba", "abc"]),
                make(&["aab", "aac", "ab", "b"]),
                make(&["", "a", "aa", "aaa"]),
            ];
            let got: Vec<BytesKey> =
                LoserTree::new(sources, order).unwrap().map(|r| r.unwrap().key).collect();
            let mut expected = got.clone();
            expected.sort();
            if order == SortOrder::Descending {
                expected.reverse();
            }
            assert_eq!(got, expected, "order = {order:?}");
            assert_eq!(got.len(), 12);
        }
    }

    #[test]
    fn peek_key_matches_next() {
        let mut lt = LoserTree::new(vec![src(&[5, 7]), src(&[6])], SortOrder::Ascending).unwrap();
        assert_eq!(lt.peek_key(), Some(&5));
        assert_eq!(lt.next().unwrap().unwrap().key, 5);
        assert_eq!(lt.peek_key(), Some(&6));
    }

    #[test]
    fn ties_break_toward_lower_source_index() {
        let a: Vec<Result<Row<u64>>> = vec![Ok(Row::new(5u64, &b"from-a"[..]))];
        let b: Vec<Result<Row<u64>>> = vec![Ok(Row::new(5u64, &b"from-b"[..]))];
        let mut lt =
            LoserTree::new(vec![a.into_iter(), b.into_iter()], SortOrder::Ascending).unwrap();
        assert_eq!(lt.next().unwrap().unwrap().payload.as_ref(), b"from-a");
        assert_eq!(lt.next().unwrap().unwrap().payload.as_ref(), b"from-b");
    }

    #[test]
    fn source_error_is_surfaced_and_fuses() {
        let bad: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(1)), Err(Error::Corrupt("boom".into()))];
        let mut lt = LoserTree::new(
            vec![bad.into_iter(), src(&[100]).collect::<Vec<_>>().into_iter()],
            SortOrder::Ascending,
        )
        .unwrap();
        assert_eq!(lt.next().unwrap().unwrap().key, 1);
        // The error surfaces before any further rows.
        assert!(matches!(lt.next(), Some(Err(Error::Corrupt(_)))));
        assert!(lt.next().is_none());
    }

    #[test]
    fn immediate_error_in_first_rows() {
        let bad: Vec<Result<Row<u64>>> = vec![Err(Error::Corrupt("early".into()))];
        let mut lt = LoserTree::new(
            vec![bad.into_iter(), src(&[1]).collect::<Vec<_>>().into_iter()],
            SortOrder::Ascending,
        )
        .unwrap();
        assert!(matches!(lt.next(), Some(Err(_))));
        assert!(lt.next().is_none());
    }

    #[test]
    fn error_after_final_good_row_is_not_lost() {
        // The error arrives from the refill triggered by the last good
        // row: that row must still be emitted, the error next, then fused.
        let bad: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(7)), Err(Error::Corrupt("tail".into()))];
        let mut lt = LoserTree::new(vec![bad.into_iter()], SortOrder::Ascending).unwrap();
        assert_eq!(lt.next().unwrap().unwrap().key, 7);
        assert!(matches!(lt.next(), Some(Err(Error::Corrupt(_)))));
        assert!(lt.next().is_none());
        assert!(lt.next().is_none());

        // Same, but the erroring source outlives every other source.
        let bad: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(9)), Err(Error::Corrupt("tail".into()))];
        let mut lt = LoserTree::new(
            vec![src(&[1, 2]).collect::<Vec<_>>().into_iter(), bad.into_iter()],
            SortOrder::Ascending,
        )
        .unwrap();
        assert_eq!(lt.next().unwrap().unwrap().key, 1);
        assert_eq!(lt.next().unwrap().unwrap().key, 2);
        assert_eq!(lt.next().unwrap().unwrap().key, 9);
        assert!(matches!(lt.next(), Some(Err(Error::Corrupt(_)))));
        assert!(lt.next().is_none());
    }
}
